#!/usr/bin/env python3
"""Consolidate dual-node training onto one node with ZeRO-Offload/Infinity.

The paper's Section V story: a model that needs two nodes under
Megatron-LM (11.4 B parameters) fits on ONE node once optimizer states
move to CPU DRAM — at *higher* throughput — and a 6x larger model fits
once they move to NVMe.  This example walks the whole ladder and shows
where the bytes and the time go at each step.

Run:  python examples/consolidate_to_one_node.py
"""

from repro import max_model_size, model_for_billions, paper_model
from repro.core import run_training
from repro.hardware import Cluster, ClusterSpec, dual_node_cluster, single_node_cluster
from repro.parallel import (
    MegatronStrategy,
    PLACEMENTS,
    zero2_cpu_offload,
    zero3_nvme_optimizer_params,
)
from repro.telemetry.report import format_table


def describe(label, metrics):
    mem = metrics.memory
    return [
        label,
        f"{metrics.billions_of_parameters:.1f}",
        f"{metrics.num_nodes}",
        f"{metrics.tflops:.1f}",
        f"{mem.gpu_used / 1e9:.0f}",
        f"{mem.cpu_used / 1e9:.0f}",
        f"{mem.nvme_used / 1e9:.0f}",
    ]


def main() -> None:
    rows = []

    # Step 0: the dual-node Megatron-LM reference at its maximum size.
    dual = dual_node_cluster()
    megatron = MegatronStrategy()
    search = max_model_size(dual, megatron)
    reference = run_training(dual, megatron, paper_model(search.max_layers),
                             iterations=3)
    rows.append(describe("Megatron-LM, 2 nodes", reference))
    model = model_for_billions(reference.billions_of_parameters)

    # Step 1: the same model on ONE node with CPU optimizer offload.
    single = single_node_cluster()
    offload = run_training(single, zero2_cpu_offload(), model, iterations=3)
    rows.append(describe("ZeRO-2 + CPU offload, 1 node", offload))

    # Step 2: six-times-larger model on one node with NVMe offload.
    placement = PLACEMENTS["B"]  # 2x NVMe RAID0 on socket 1
    nvme_cluster = Cluster(ClusterSpec(num_nodes=1,
                                       node=placement.node_spec()))
    big = model_for_billions(33.3)
    infinity = run_training(nvme_cluster, zero3_nvme_optimizer_params(),
                            big, iterations=2, warmup_iterations=1,
                            placement=placement)
    rows.append(describe("ZeRO-Infinity (2x NVMe), 1 node", infinity))

    print(format_table(
        ["configuration", "model (B)", "nodes", "TFLOP/s",
         "GPU GB", "CPU GB", "NVMe GB"],
        rows,
        title="Consolidating multi-node training into a single node",
    ))
    speedup = offload.tflops / reference.tflops
    print()
    print(f"ZeRO-Offload on one node vs Megatron-LM on two: "
          f"{speedup:.2f}x throughput (paper: 1.58x)")
    print(f"ZeRO-Infinity model vs dual-node Megatron-LM model: "
          f"{infinity.billions_of_parameters / reference.billions_of_parameters:.1f}x size")
    print()
    print("Where the time goes under NVMe offload (rank 0):")
    timeline = infinity.execution.timeline
    start = infinity.measurement_window[0]
    print(timeline.render(0, width=100,
                          window=(start, start + infinity.iteration_time)))
    print("  (N = NVMe swap traffic, C = CPU Adam, . = idle GPU)")


if __name__ == "__main__":
    main()
