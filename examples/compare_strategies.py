#!/usr/bin/env python3
"""Compare DDP, Megatron-LM, and ZeRO-1/2/3 on one and two nodes.

Reproduces the paper's Section IV story interactively: for each strategy,
find the largest model it can train (Fig. 6), measure throughput at that
size (Fig. 7), and show the trade-off (Fig. 8).

Run:  python examples/compare_strategies.py [--nodes 1|2]
"""

import argparse

from repro import max_model_size, paper_model
from repro.core import run_training
from repro.hardware import dual_node_cluster, single_node_cluster
from repro.parallel import DdpStrategy, MegatronStrategy, zero1, zero2, zero3
from repro.telemetry.report import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=1, choices=(1, 2))
    parser.add_argument("--iterations", type=int, default=4)
    args = parser.parse_args()

    make_cluster = (single_node_cluster if args.nodes == 1
                    else dual_node_cluster)
    strategies = [DdpStrategy(), MegatronStrategy(), zero1(), zero2(),
                  zero3()]

    rows = []
    for strategy in strategies:
        cluster = make_cluster()
        search = max_model_size(cluster, strategy)
        metrics = run_training(cluster, strategy,
                               paper_model(search.max_layers),
                               iterations=args.iterations)
        rows.append([
            strategy.display_name,
            f"{search.billions:.2f}",
            f"{metrics.tflops:.0f}",
            f"{metrics.iteration_time:.2f}",
            f"{metrics.tflops / cluster.num_gpus:.0f}",
        ])
        print(f"  measured {strategy.display_name:14s} "
              f"({search.billions:5.2f} B) ...")

    print()
    print(format_table(
        ["strategy", "max model (B)", "TFLOP/s", "iter (s)", "per-GPU"],
        rows,
        title=f"Throughput at maximum model size, {args.nodes} node(s)",
    ))
    if args.nodes == 2:
        print()
        print("Note the paper's headline: Megatron-LM collapses across")
        print("nodes (excessive inter-node TP all-reduce over contended")
        print("RoCE) while DeepSpeed ZeRO keeps its throughput.")


if __name__ == "__main__":
    main()
