#!/usr/bin/env python3
"""Tune NVMe data placement for ZeRO-Infinity (paper Fig. 14 / Table VI).

Sweeps the seven drive wiring/grouping/rank-mapping configurations the
paper studies for a 33.3 B-parameter model, demonstrating its placement
rules: more drives help, and RAID0 stripes must never span sockets
(the xGMI crossing penalty eats the gain).

Run:  python examples/nvme_placement_tuning.py [--size 33.3]
"""

import argparse

from repro import model_for_billions
from repro.core import run_training
from repro.hardware import Cluster, ClusterSpec
from repro.hardware.link import LinkClass
from repro.parallel import PLACEMENTS, zero3_nvme_optimizer_params
from repro.telemetry.report import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=float, default=33.3,
                        help="model size in billions of parameters")
    args = parser.parse_args()
    model = model_for_billions(args.size)

    rows = []
    for key in "ABCDEFG":
        placement = PLACEMENTS[key]
        cluster = Cluster(ClusterSpec(num_nodes=1,
                                      node=placement.node_spec()))
        metrics = run_training(cluster, zero3_nvme_optimizer_params(),
                               model, iterations=2, warmup_iterations=1,
                               placement=placement)
        rows.append([
            key,
            placement.description,
            f"{metrics.tflops:.1f}",
            f"{metrics.bandwidth[LinkClass.PCIE_NVME].average_gbps:.2f}",
            f"{metrics.bandwidth[LinkClass.XGMI].average_gbps:.2f}",
        ])
        print(f"  measured configuration {key} ...")

    print()
    print(format_table(
        ["cfg", "description", "TFLOP/s", "PCIe-NVME avg", "xGMI avg"],
        rows,
        title=f"NVMe placement sweep at {args.size} B parameters",
    ))
    print()
    print("Reading the table like the paper does:")
    print(" * A -> B: a second drive nearly doubles throughput.")
    print(" * C vs D: the same two drives, but a socket-spanning RAID0")
    print("   stripe (C) wastes xGMI bandwidth; socket-local mapping (D)")
    print("   wins with zero xGMI traffic.")
    print(" * E vs F/G: same four drives; one big stripe across sockets")
    print("   (E) loses to per-socket volumes (F) or per-rank drives (G).")


if __name__ == "__main__":
    main()
