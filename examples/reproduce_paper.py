#!/usr/bin/env python3
"""Reproduce every table and figure of the paper in one run.

Drives the experiment registry in paper order and prints each
reproduction table/plot.  ``--full`` uses the paper's iteration counts
(slower); the default quick mode is what CI runs.

Run:  python examples/reproduce_paper.py [--full] [--only fig7,table5]
"""

import argparse
import time

from repro.experiments import PAPER_EXPERIMENTS, run_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="paper-length measurement windows")
    parser.add_argument("--only", type=str, default="",
                        help="comma-separated experiment ids")
    parser.add_argument("--ablations", action="store_true",
                        help="also run the design-choice ablations")
    args = parser.parse_args()

    ids = ([x.strip() for x in args.only.split(",") if x.strip()]
           or list(PAPER_EXPERIMENTS))
    if args.ablations and not args.only:
        ids += ["ablation_serdes", "ablation_overlap", "ablation_nvme",
                "ablation_buffers"]

    started = time.time()
    for experiment_id in ids:
        t0 = time.time()
        result = run_experiment(experiment_id, quick=not args.full)
        print()
        print("=" * 78)
        print(result.rendered)
        print(f"[{experiment_id}: {time.time() - t0:.1f} s]")
    print()
    print(f"reproduced {len(ids)} artifacts in "
          f"{time.time() - started:.1f} s wall time")


if __name__ == "__main__":
    main()
