#!/usr/bin/env python3
"""Reproduce every table and figure of the paper in one run.

Expands the paper's experiments into a campaign, executes it across a
worker pool, and prints each reproduction table/plot in paper order.
Results go through the content-addressed cache, so a second invocation
(same code version) replays from disk instead of resimulating; pass
``--no-cache`` to force recomputation.  ``--full`` uses the paper's
iteration counts (slower); the default quick mode is what CI runs.

Run:  python examples/reproduce_paper.py [--full] [--only fig7,table5]
          [--workers 4] [--cache-dir .repro-cache] [--no-cache]
"""

import argparse
import multiprocessing
import sys
import time

from repro.campaign import CampaignSpec, ResultCache, run_campaign
from repro.experiments import PAPER_EXPERIMENTS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="paper-length measurement windows")
    parser.add_argument("--only", type=str, default="",
                        help="comma-separated experiment ids")
    parser.add_argument("--ablations", action="store_true",
                        help="also run the design-choice ablations")
    parser.add_argument("--workers", type=int,
                        default=min(4, multiprocessing.cpu_count()),
                        help="worker processes (1 = serial)")
    parser.add_argument("--cache-dir", default=".repro-cache",
                        help="content-addressed result cache directory")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute everything; don't touch the cache")
    args = parser.parse_args()

    ids = ([x.strip() for x in args.only.split(",") if x.strip()]
           or list(PAPER_EXPERIMENTS))
    if args.ablations and not args.only:
        ids += ["ablation_serdes", "ablation_overlap", "ablation_nvme",
                "ablation_buffers"]

    campaign = CampaignSpec(name="reproduce-paper",
                            experiments=tuple(ids), full=args.full)
    cache = None if args.no_cache else ResultCache(args.cache_dir)

    started = time.time()
    report = run_campaign(campaign, workers=args.workers, cache=cache,
                          progress=lambda m: print(m, file=sys.stderr))
    for job in report.jobs:
        print()
        print("=" * 78)
        print(job.payload["rendered"])
        source = "cache" if job.cached else f"{job.elapsed_s:.1f} s"
        print(f"[{job.payload['experiment_id']}: {source}]")
    print()
    print(f"reproduced {len(report.jobs)} artifacts in "
          f"{time.time() - started:.1f} s wall time "
          f"({report.workers} workers, {report.hits} from cache)")


if __name__ == "__main__":
    main()
