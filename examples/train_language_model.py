#!/usr/bin/env python3
"""End-to-end training pipeline: corpus -> tokenizer -> loader -> cluster.

Exercises the full public API the way the paper's training scripts do:
extract a (synthetic) Wikipedia-like corpus, train a tokenizer, pack the
tokens into fixed-length samples, shard them across data-parallel ranks,
and drive the simulated cluster epoch by epoch, reporting token
throughput alongside TFLOP/s.

Run:  python examples/train_language_model.py [--articles 200]
"""

import argparse

from repro import model_for_billions
from repro.core import run_training
from repro.hardware import single_node_cluster
from repro.parallel import zero2
from repro.workloads import (
    DistributedBatchLoader,
    LmDataset,
    SyntheticCorpus,
    Tokenizer,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--articles", type=int, default=200)
    parser.add_argument("--epochs", type=int, default=2)
    args = parser.parse_args()

    # 1. Corpus + tokenizer (the WikiExtractor + BPE stage).
    corpus = SyntheticCorpus(lexicon_size=4000, seed=42)
    print(f"corpus   : {args.articles} articles, "
          f"{len(corpus.lexicon)} word lexicon")
    tokenizer = Tokenizer.train([corpus.text(args.articles)],
                                vocab_size=8192)
    print(f"tokenizer: {tokenizer.vocab_size} entries")

    # 2. Pack into seq-256 samples and shard across the 4 GPUs.
    cluster = single_node_cluster()
    model = model_for_billions(1.4)
    dataset = LmDataset.from_corpus(corpus, tokenizer,
                                    num_articles=args.articles,
                                    seq_length=model.seq_length)
    loaders = [
        DistributedBatchLoader(dataset, micro_batch=16, rank=rank,
                               world_size=cluster.num_gpus, seed=42)
        for rank in range(cluster.num_gpus)
    ]
    print(f"dataset  : {len(dataset)} samples "
          f"({dataset.total_tokens / 1e6:.2f} M tokens), "
          f"{loaders[0].batches_per_epoch} steps/epoch/rank")

    # 3. Simulate the optimizer steps each epoch's batches correspond to.
    strategy = zero2()
    total_tokens = 0
    total_seconds = 0.0
    for epoch in range(args.epochs):
        for loader in loaders:
            loader.set_epoch(epoch)
        steps = loaders[0].batches_per_epoch
        if steps == 0:
            raise SystemExit("corpus too small for one batch per rank; "
                             "raise --articles")
        metrics = run_training(cluster, strategy, model,
                               iterations=min(steps, 4) + 1)
        epoch_seconds = metrics.iteration_time * steps
        epoch_tokens = (16 * model.seq_length * cluster.num_gpus * steps)
        total_tokens += epoch_tokens
        total_seconds += epoch_seconds
        print(f"epoch {epoch}: {steps} steps, "
              f"{epoch_seconds:6.1f} s simulated, "
              f"{epoch_tokens / epoch_seconds / 1e3:7.1f} k tokens/s, "
              f"{metrics.tflops:5.0f} TFLOP/s")

    print()
    print(f"total    : {total_tokens / 1e6:.2f} M tokens in "
          f"{total_seconds:.1f} simulated seconds "
          f"({total_tokens / total_seconds / 1e3:.1f} k tokens/s)")


if __name__ == "__main__":
    main()
