#!/usr/bin/env python3
"""Quickstart: simulate DeepSpeed ZeRO-2 training on one XE8545 node.

Builds the paper's single-node cluster (4x A100 40 GB, dual EPYC 7763),
trains a 1.4 B-parameter GPT-2-like model for a few iterations, and
prints the measurements the paper reports: throughput, iteration time,
memory usage, and per-interconnect bandwidth.

Run:  python examples/quickstart.py
"""

from repro import model_for_billions
from repro.core import run_training
from repro.hardware import single_node_cluster
from repro.parallel import zero2


def main() -> None:
    cluster = single_node_cluster()
    model = model_for_billions(1.4)
    strategy = zero2()

    print(f"cluster : {cluster.num_nodes} node(s), {cluster.num_gpus} GPUs")
    print(f"model   : {model.num_layers} layers "
          f"({model.hidden_size} hidden, {model.num_heads} heads)")
    print(f"strategy: {strategy.display_name}")
    print()

    metrics = run_training(cluster, strategy, model, iterations=5)

    print(f"throughput      : {metrics.tflops:8.1f} TFLOP/s "
          f"(paper measures 472 at this size)")
    print(f"iteration time  : {metrics.iteration_time * 1e3:8.1f} ms")
    print(f"GPU memory used : {metrics.memory.gpu_used / 1e9:8.1f} GB")
    print(f"CPU memory used : {metrics.memory.cpu_used / 1e9:8.1f} GB")
    print()
    print("aggregate bidirectional bandwidth per node (avg / peak GB/s):")
    for link_class, stats in metrics.bandwidth.items():
        if stats.peak > 0:
            print(f"  {str(link_class):10s} {stats.average_gbps:8.2f} / "
                  f"{stats.peak_gbps:8.2f}")
    print()
    print("one iteration, rank 0 (G=GEMM R=all-reduce A=all-gather "
          "O=optimizer .=idle):")
    timeline = metrics.execution.timeline
    start = metrics.measurement_window[0]
    print(timeline.render(0, width=100,
                          window=(start, start + metrics.iteration_time)))


if __name__ == "__main__":
    main()
