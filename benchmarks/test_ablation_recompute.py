"""Bench (ablation): activation recomputation on/off."""


def test_ablation_recompute(run_reproduction):
    result = run_reproduction("ablation_recompute")

    def cell(recompute, strategy):
        return next(r for r in result.rows
                    if r["recompute"] is recompute
                    and r["strategy"] == strategy)

    for strategy in ("ddp", "zero2", "zero3"):
        with_rc = cell(True, strategy)
        without = cell(False, strategy)
        # Checkpointing buys model size (the activation footprint is the
        # binding constraint without it)...
        assert with_rc["max_model_b"] > 1.2 * without["max_model_b"]
        # ...at the cost of the extra forward pass per iteration.
        assert (without["iteration_s_at_0p7b"]
                < with_rc["iteration_s_at_0p7b"])
    # The size gap is largest for the strategies whose states are
    # partitioned (activations are the only replicated tensor left).
    gain_zero3 = (cell(True, "zero3")["max_model_b"]
                  / cell(False, "zero3")["max_model_b"])
    gain_ddp = (cell(True, "ddp")["max_model_b"]
                / cell(False, "ddp")["max_model_b"])
    assert gain_zero3 > gain_ddp
