"""Bench (extension): micro-batch-size sensitivity."""


def test_ext_batch(run_reproduction):
    result = run_reproduction("ext_batch")

    def series(case):
        return [(r["micro_batch"], r["tflops"]) for r in result.rows
                if r["case"] == case and r["fits"]]

    compute_bound = series("zero2@1.4B")
    nvme_bound = series("zero3_nvme@11.4B")
    # Throughput rises monotonically with batch for both regimes
    # (Section V-B2's speculation, confirmed).
    assert [t for _, t in compute_bound] == sorted(
        t for _, t in compute_bound)
    assert [t for _, t in nvme_bound] == sorted(t for _, t in nvme_bound)
    # The compute-bound curve saturates (diminishing returns)...
    gains = [b / a for (_, a), (_, b) in zip(compute_bound,
                                             compute_bound[1:])]
    assert gains[-1] < gains[0]
    # ...while the NVMe-bound curve stays near-linear: the batch-
    # independent swap dominates, so doubling the batch ~doubles useful
    # work per swap.
    nvme_gain = nvme_bound[-1][1] / nvme_bound[0][1]
    batch_gain = nvme_bound[-1][0] / nvme_bound[0][0]
    assert nvme_gain > 0.6 * batch_gain
    # Memory grows with batch (activations).
    gpu = [r["gpu_gb"] for r in result.rows
           if r["case"] == "zero2@1.4B" and r["fits"]]
    assert gpu == sorted(gpu)
