"""Bench: Fig. 3 — RoCE latency vs message size, same/cross socket."""


def test_fig03_roce_latency(run_reproduction):
    result = run_reproduction("fig3", quick=False)
    small = [r for r in result.rows if r["message_bytes"] < 64 * 1024
             and r["verb"] != "rdma_read"]
    same = max(r["latency_us"] for r in small
               if r["placement"] == "same_socket")
    cross = max(r["latency_us"] for r in small
                if r["placement"] == "cross_socket")
    # Paper bounds: <6 us same-socket, <40 us (~7x) cross-socket.
    assert same < 6.5
    assert cross < 40.0
    assert cross / same > 4.0
