"""Bench (ablation): SerDes contention model on/off."""


def test_ablation_serdes(run_reproduction):
    result = run_reproduction("ablation_serdes")
    on = {r["strategy"]: r for r in result.rows if r["contention"]}
    off = {r["strategy"]: r for r in result.rows if not r["contention"]}
    # Disabling the hypothesized contention recovers cross-socket
    # GPU-RoCE to near-theoretical...
    assert off["megatron"]["stress_fraction"] > 0.85
    assert on["megatron"]["stress_fraction"] < 0.5
    # ...and buys dual-node Megatron-LM a sizeable share of its loss.
    assert off["megatron"]["tflops"] > 1.2 * on["megatron"]["tflops"]
    # ZeRO-3 benefits too, but less (bursty traffic is less exposed).
    meg_gain = off["megatron"]["tflops"] / on["megatron"]["tflops"]
    z3_gain = off["zero3"]["tflops"] / on["zero3"]["tflops"]
    assert meg_gain > z3_gain
