"""Bench: Fig. 9 — single-node NVLink utilization patterns."""

import pytest


def test_fig09_nvlink_pattern(run_reproduction):
    result = run_reproduction("fig9")
    avg = {r["strategy"]: r["nvlink_avg_gbps"] for r in result.rows}
    peak = {r["strategy"]: r["nvlink_peak_gbps"] for r in result.rows}
    # Paper: DDP lowest; Megatron-LM ~3x DDP (241 vs 83 GB/s average).
    assert avg["megatron"] > 2.0 * avg["ddp"]
    assert avg["megatron"] == max(avg.values())
    # ZeRO utilizations sit between DDP and Megatron-LM.
    for name in ("zero1", "zero2", "zero3"):
        assert avg[name] < avg["megatron"]
    # Peaks within a factor of two of the published counters.
    for row in result.rows:
        assert row["nvlink_peak_gbps"] == pytest.approx(
            row["paper_peak_gbps"], rel=1.0)
