"""Bench: Fig. 1 — LLM size vs GPU memory growth trends."""


def test_fig01_trend(run_reproduction):
    result = run_reproduction("fig1")
    model_growth = result.row_by(series="growth_factor",
                                 name="model 2018-2020")["value"]
    memory_growth = result.row_by(series="growth_factor",
                                  name="gpu memory 2017-2020")["value"]
    # Paper: models grew ~1000x while GPU memory grew ~5x.
    assert model_growth > 1000
    assert memory_growth == 5.0
