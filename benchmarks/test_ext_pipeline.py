"""Bench (extension): pipeline vs tensor parallelism across nodes."""


def test_ext_pipeline(run_reproduction):
    result = run_reproduction("ext_pipeline")
    head = {r["strategy"]: r for r in result.rows
            if r["study"] == "head_to_head"}
    # Pipeline hand-offs move ~100x less inter-node data than TP
    # all-reduces, so the 1F1B schedule sidesteps the paper's dual-node
    # Megatron-LM collapse entirely.
    assert head["pipeline"]["tflops"] > 4 * head["megatron"]["tflops"]
    assert (head["pipeline"]["roce_avg_gbps"]
            < 0.1 * head["megatron"]["roce_avg_gbps"])
    # The bubble amortizes with micro-batch count (emergent, not asserted).
    sweep = sorted((r for r in result.rows
                    if r["study"] == "microbatch_sweep"),
                   key=lambda r: r["micro_batches"])
    tflops = [r["tflops"] for r in sweep]
    busy = [r["busy_fraction"] for r in sweep]
    assert tflops == sorted(tflops)
    assert busy == sorted(busy)
