"""Bench: Fig. 6 — achieved model size per strategy, 1 and 2 nodes."""

import pytest


def test_fig06_model_size(run_reproduction):
    result = run_reproduction("fig6")
    for row in result.rows:
        assert row["achieved_b"] == pytest.approx(row["paper_b"], rel=0.15)

    single = {r["strategy"]: r["achieved_b"] for r in result.rows
              if r["nodes"] == 1}
    dual = {r["strategy"]: r["achieved_b"] for r in result.rows
            if r["nodes"] == 2}
    # Paper orderings.
    assert single["ddp"] < single["zero1"] < single["zero2"]
    assert single["zero3"] > single["megatron"] > single["zero2"]
    assert dual["zero3"] > dual["megatron"] > dual["zero2"] > dual["zero1"]
    # DDP cannot grow with more nodes; everyone else roughly doubles.
    assert dual["ddp"] == single["ddp"]
    assert dual["zero3"] > 1.7 * single["zero3"]
