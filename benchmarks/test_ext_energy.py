"""Bench (extension): energy per iteration and TFLOP/s per kW."""


def test_ext_energy(run_reproduction):
    result = run_reproduction("ext_energy")
    rows = {r["config"]: r for r in result.rows}
    # Dual-node Megatron burns energy idling GPUs behind RoCE: worst
    # efficiency by a wide margin.
    assert (rows["megatron@2n"]["tflops_per_kw"]
            < 0.5 * rows["zero3@2n"]["tflops_per_kw"])
    # Consolidating 11.4 B onto one node is more energy-efficient than
    # the dual-node Megatron run at the same model size.
    assert (rows["zero2_opt_cpu@1n"]["tflops_per_kw"]
            > 1.5 * rows["megatron@2n"]["tflops_per_kw"])
    # GPUs dominate the power budget in compute-bound configs.
    assert rows["zero2@1n"]["gpu_power_share"] > 0.5
    # Sanity: a 4-GPU node draws on the order of 1-3 kW.
    assert 0.8 < rows["zero2@1n"]["avg_power_kw"] < 3.0
