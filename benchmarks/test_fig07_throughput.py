"""Bench: Fig. 7 — compute throughput at max model size."""

import pytest


def test_fig07_throughput(run_reproduction):
    result = run_reproduction("fig7")
    for row in result.rows:
        tolerance = 0.20 if row["nodes"] == 1 else 0.25
        assert row["tflops"] == pytest.approx(row["paper_tflops"],
                                              rel=tolerance), row

    single = {r["strategy"]: r["tflops"] for r in result.rows
              if r["nodes"] == 1}
    dual = {r["strategy"]: r["tflops"] for r in result.rows
            if r["nodes"] == 2}
    # Single node: DDP fastest, ZeRO-2 the DeepSpeed sweet spot.
    assert single["zero2"] > single["zero1"]
    assert single["zero2"] > single["megatron"]
    # Dual node: Megatron-LM collapses; ZeRO holds.
    assert dual["megatron"] < 0.3 * dual["ddp"]
    for name in ("zero1", "zero2", "zero3"):
        assert dual[name] > 2.8 * dual["megatron"]
