"""Bench: Table V — throughput sensitivity to model size."""

import pytest


def test_table5_sensitivity(run_reproduction):
    result = run_reproduction("table5")
    by_config = {}
    for row in result.rows:
        if row["fits"]:
            by_config.setdefault(row["config"], {})[row["size_b"]] = \
                row["tflops"]

    # Throughput rises from the smallest to the largest size for the
    # GPU-resident configs (fixed costs amortize) — paper's main shape.
    for config in ("ddp", "megatron", "zero2"):
        series = by_config[config]
        sizes = sorted(series)
        assert series[sizes[-1]] > series[sizes[0]], config

    # Offload flavours stay flat: max/min ratio below 1.6 across sizes.
    for config in ("zero2_opt_cpu", "zero3_opt_nvme"):
        series = by_config[config]
        values = list(series.values())
        assert max(values) / min(values) < 1.6, config

    # NVMe offload is an order of magnitude below CPU offload everywhere.
    for size, tflops in by_config["zero3_opt_nvme"].items():
        if size in by_config["zero2_opt_cpu"]:
            assert tflops < 0.4 * by_config["zero2_opt_cpu"][size]

    # Cells match the paper within 40 % where both exist.
    for row in result.rows:
        if row["fits"] and row["paper_tflops"]:
            assert row["tflops"] == pytest.approx(
                row["paper_tflops"], rel=0.40), (row["config"], row["size_b"])
