"""Bench: Fig. 5 — single-iteration timelines for all nine configs."""

import pytest


def test_fig05_timelines(run_reproduction):
    result = run_reproduction("fig5")
    # Iteration-time ordering the paper's timelines show at 1.4 B:
    # ZeRO-1/2 fastest, DDP close, Megatron-LM and ZeRO-3 slower, CPU
    # offload ~3x, NVMe offload ~10x.
    t = {r["config"]: r["iteration_s"] for r in result.rows}
    assert t["zero2"] < t["ddp"] < t["megatron"]
    assert t["zero1"] < t["zero3"]
    assert t["zero2_opt_cpu"] > 1.5 * t["zero2"]
    assert t["zero3_opt_nvme"] > 3 * t["zero3"]
    assert t["zero3_opt_nvme_param_nvme"] > t["zero3_opt_nvme"]
    # Every config lands within 2x of the paper's published time.
    for row in result.rows:
        ratio = row["iteration_s"] / row["paper_iteration_s"]
        assert 0.5 <= ratio <= 2.0, row["config"]
    # Offloaded configs show the GPU idling (the "white" in Fig. 5).
    nvme = result.row_by(config="zero3_opt_nvme")
    assert nvme["compute_busy_fraction"] < 0.3
    ddp = result.row_by(config="ddp")
    assert ddp["compute_busy_fraction"] > 0.7
