"""Bench: Table III — interconnect inventory and bandwidths."""

import pytest


def test_table3_interconnects(run_reproduction):
    result = run_reproduction("table3")
    for row in result.rows:
        # The built topology matches the paper's aggregate theoretical
        # bandwidth under the paper's counting convention.
        assert row["built_paper_convention_gbps"] == pytest.approx(
            row["paper_aggregate_gbps"], rel=0.01), row["interface"]
