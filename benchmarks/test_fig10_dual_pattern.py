"""Bench: Fig. 10 — dual-node NVLink/PCIe/RoCE utilization patterns."""


def test_fig10_dual_pattern(run_reproduction):
    result = run_reproduction("fig10")
    rows = {r["strategy"]: r for r in result.rows}
    # Every strategy now exercises RoCE and the NIC PCIe roots.
    for name, row in rows.items():
        assert row["RoCE_avg_gbps"] > 0, name
        assert row["PCIe-NIC_avg_gbps"] > 0, name
    # Megatron-LM's sustained stream keeps RoCE busier than DDP's bursts.
    assert rows["megatron"]["RoCE_avg_gbps"] > rows["ddp"]["RoCE_avg_gbps"]
    # ZeRO-3's extra parameter traffic gives it the highest ZeRO RoCE
    # average (paper: 16.3 vs 10.5 GB/s).
    assert (rows["zero3"]["RoCE_avg_gbps"]
            > rows["zero2"]["RoCE_avg_gbps"] * 0.9)
    # NVLink utilization drops vs the single-node runs (Table IV).
    assert rows["ddp"]["NVLink_avg_gbps"] < 83.0
