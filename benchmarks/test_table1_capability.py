"""Bench: Table I — ZeRO stage and offload capability matrix."""


def test_table1_capability(run_reproduction):
    result = run_reproduction("table1")
    rows = {r["stage"]: r for r in result.rows}
    # Row-for-row reproduction of the published matrix.
    assert rows[1]["partitions_optimizer"]
    assert not rows[1]["partitions_gradients"]
    assert rows[1]["optimizer_cpu"] and not rows[1]["optimizer_nvme"]
    assert not rows[1]["parameter_cpu"]

    assert rows[2]["partitions_gradients"]
    assert not rows[2]["partitions_parameters"]
    assert rows[2]["optimizer_cpu"] and not rows[2]["parameter_nvme"]

    assert rows[3]["partitions_parameters"]
    for capability in ("optimizer_cpu", "optimizer_nvme",
                       "parameter_cpu", "parameter_nvme"):
        assert rows[3][capability]
