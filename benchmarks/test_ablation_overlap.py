"""Bench (ablation): gradient-communication overlap on/off."""


def test_ablation_overlap(run_reproduction):
    result = run_reproduction("ablation_overlap")

    def cell(nodes, strategy, overlap):
        return next(r["tflops"] for r in result.rows
                    if r["nodes"] == nodes and r["strategy"] == strategy
                    and r["overlap"] is overlap)

    # Overlap always helps (or at worst is neutral).
    for nodes in (1, 2):
        for strategy in ("zero2", "zero3"):
            assert cell(nodes, strategy, True) >= cell(nodes, strategy,
                                                       False) * 0.999
    # The win is bigger across the slow inter-node fabric than on NVLink.
    gain_1n = cell(1, "zero2", True) / cell(1, "zero2", False)
    gain_2n = cell(2, "zero2", True) / cell(2, "zero2", False)
    assert gain_2n > gain_1n
