"""Shared helpers for the reproduction benchmarks.

Every bench runs one paper table/figure through
:mod:`repro.experiments` under pytest-benchmark (single round — the
simulator is deterministic, so the interesting output is the experiment's
reproduction table, printed to the terminal report, not timing jitter).
"""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment


@pytest.fixture
def run_reproduction(benchmark, capsys):
    """Run one experiment under the benchmark clock and print its table."""

    def _run(experiment_id: str, *, quick: bool = True):
        result = benchmark.pedantic(
            lambda: run_experiment(experiment_id, quick=quick),
            rounds=1, iterations=1,
        )
        with capsys.disabled():
            print()
            print(result.rendered)
        return result

    return _run
