"""Bench: Fig. 14 / Table VI — NVMe placement configurations A-G."""

import pytest


def test_fig14_table6_nvme_placement(run_reproduction):
    result = run_reproduction("fig14_table6")
    t = {r["config"]: r["tflops"] for r in result.rows}
    xgmi = {r["config"]: r["xgmi_avg_gbps"] for r in result.rows}
    # The paper's placement conclusions:
    # 1. One drive is the worst configuration.
    assert t["A"] == min(t.values())
    # 2. A second drive buys a large improvement (paper: +80 %+).
    assert t["B"] > 1.6 * t["A"]
    # 3. Socket-local volumes beat stripes across sockets at the same
    #    drive count (D >= B/C with less xGMI; F/G >> E-ish).
    assert t["D"] >= t["C"]
    assert xgmi["D"] < xgmi["B"]
    assert xgmi["F"] < xgmi["E"]
    # 4. Four drives with socket-local mapping are the best (F, G).
    assert max(t, key=t.get) in ("F", "G")
    assert t["F"] == pytest.approx(t["G"], rel=0.05)
    assert t["G"] > 1.5 * t["B"]
    # Relative throughput pattern matches Table VI within 35 % after
    # normalizing to configuration B.
    paper = {"A": 19.6, "B": 37.16, "C": 35.43, "D": 40.22, "E": 51.22,
             "F": 64.61, "G": 65.16}
    for key, value in t.items():
        ours = value / t["B"]
        published = paper[key] / paper["B"]
        assert ours == pytest.approx(published, rel=0.35), key
