"""Bench (ablation): offload buffer sizing vs achievable model size."""


def test_ablation_buffers(run_reproduction):
    result = run_reproduction("ablation_buffers")
    sizes = {r["buffer_gb"]: r["max_model_b"] for r in result.rows}
    # Section V-A2's memory-side trade-off: every GB of pinned buffer is
    # a GB of model states lost — monotone decreasing.
    ordered = [sizes[k] for k in sorted(sizes)]
    assert ordered == sorted(ordered, reverse=True)
    # The swing is substantial across the swept range.
    assert sizes[1] > 1.5 * sizes[16]
