"""Bench: Fig. 8 — throughput vs model-size trade-off scatter."""


def test_fig08_tradeoff(run_reproduction):
    result = run_reproduction("fig8")
    analysis = {int(r["nodes"]): r for r in result.rows
                if r.get("strategy") == "(analysis)"}
    # The paper's qualitative conclusions: ZeRO-3 maximizes model size on
    # both clusters; ZeRO-2 is the single-node sweet spot; ZeRO-3 wins
    # the dual-node size-throughput product.
    assert analysis[1]["largest_model"] == "zero3"
    assert analysis[2]["largest_model"] == "zero3"
    assert analysis[1]["sweet_spot"] in ("zero2", "zero3")
    assert analysis[2]["sweet_spot"] == "zero3"
