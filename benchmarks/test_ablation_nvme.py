"""Bench (ablation): NVMe DRAM-cache size and media-bandwidth sweeps."""


def test_ablation_nvme(run_reproduction):
    result = run_reproduction("ablation_nvme")
    cache = {r["cache_gb"]: r["effective_gbps"] for r in result.rows
             if r["study"] == "cache"}
    media = {r["media_scale"]: r["tflops"] for r in result.rows
             if r["study"] == "media"}
    # Bigger caches absorb more of a 16 GB burst at link speed.
    assert cache[16] > cache[4] > cache[0]
    # The paper's conclusion: ZeRO-Infinity throughput follows aggregate
    # NVMe bandwidth — monotone and strongly sub-linear at the top
    # (compute/CPU-Adam eventually dominate).
    assert media[4.0] > media[2.0] > media[1.0] > media[0.5]
    assert media[1.0] / media[0.5] > 1.5
    assert media[4.0] / media[2.0] < 1.8
