"""Bench: Fig. 13 — largest single-node model with offload/Infinity."""

import pytest


def test_fig13_largest(run_reproduction):
    result = run_reproduction("fig13")
    rows = {r["strategy"]: r for r in result.rows}
    z1 = rows["zero1_opt_cpu"]
    z2 = rows["zero2_opt_cpu"]
    inf = rows["zero3_opt_nvme_param_nvme"]
    # Achieved sizes: ZeRO-1 (CPU) ~8.9 B, ZeRO-2 (CPU) ~14.2 B; the
    # Infinity search exceeds the paper's 33.3 B stopping point (see
    # EXPERIMENTS.md) but must clear it comfortably.
    assert z1["achieved_b"] == pytest.approx(8.9, rel=0.10)
    assert z2["achieved_b"] == pytest.approx(14.2, rel=0.10)
    assert inf["achieved_b"] >= 33.3
    # Throughput ordering: CPU offload >> NVMe offload.
    assert z2["tflops"] > z1["tflops"] * 0.9
    assert inf["tflops"] < 0.35 * z2["tflops"]
    # Throughputs within 35 % of the published values.
    for row in result.rows:
        assert row["tflops"] == pytest.approx(row["paper_tflops"],
                                              rel=0.35), row["strategy"]
    # Infinity consumes all three memory tiers (paper: 158/611/375 GB).
    assert inf["gpu_gb"] > 0 and inf["cpu_gb"] > 100 and inf["nvme_gb"] > 100
