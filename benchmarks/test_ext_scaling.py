"""Bench (extension): multi-node scaling sweep (1-4/8 nodes)."""


def test_ext_scaling(run_reproduction):
    result = run_reproduction("ext_scaling")

    def eff(nodes, strategy):
        return next(r["scaling_efficiency"] for r in result.rows
                    if r["nodes"] == nodes and r["strategy"] == strategy)

    largest = max(r["nodes"] for r in result.rows)
    # Scaling efficiency degrades with node count for everyone...
    for strategy in ("ddp", "megatron", "zero2", "zero3"):
        assert eff(largest, strategy) <= eff(2, strategy) + 0.02
    # ...but Megatron-LM degrades catastrophically (inter-node TP),
    # extrapolating the paper's two-node observation.
    assert eff(largest, "megatron") < 0.2
    assert eff(largest, "ddp") > 0.5
    # Aggregate throughput still grows for the DP strategies.
    def tflops(nodes, strategy):
        return next(r["tflops"] for r in result.rows
                    if r["nodes"] == nodes and r["strategy"] == strategy)
    assert tflops(largest, "ddp") > tflops(1, "ddp")
    assert tflops(largest, "zero3") > tflops(1, "zero3")
