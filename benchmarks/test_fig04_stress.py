"""Bench: Fig. 4 — CPU-RoCE / GPU-RoCE bandwidth stress tests."""

import pytest


def test_fig04_stress(run_reproduction):
    result = run_reproduction("fig4", quick=False)
    for row in result.rows:
        # Attained fractions within +-9 points of the paper's
        # 93/47/52/42 % measurements.
        assert row["attained_fraction"] == pytest.approx(
            row["paper_fraction"], abs=0.09)
    same_cpu = result.row_by(test="cpu_roce", placement="same_socket")
    cross_gpu = result.row_by(test="gpu_roce", placement="cross_socket")
    assert same_cpu["attained_fraction"] > 2 * cross_gpu["attained_fraction"]
