"""Bench: Fig. 11 — consolidating dual-node 11.4 B onto a single node."""

import pytest


def test_fig11_offload(run_reproduction):
    result = run_reproduction("fig11")
    t = {r["config"]: r["tflops"] for r in result.rows}
    # Paper's pivotal claim: ZeRO-2 (CPU) on ONE node beats Megatron-LM
    # on TWO nodes by ~1.58x at the same 11.4 B model size.
    assert t["zero2_opt_cpu"] > 1.3 * t["megatron_dual"]
    # ZeRO-3 with parameter offload moves more data and is slower.
    assert t["zero3_opt_cpu_param_cpu"] < t["zero2_opt_cpu"]
    # NVMe offload is an order slower than CPU offload; a second drive
    # buys a large improvement (paper: +87 % / +55 %).
    assert t["zero3_opt_nvme_1x"] < 0.25 * t["zero2_opt_cpu"]
    assert t["zero3_opt_nvme_2x"] > 1.5 * t["zero3_opt_nvme_1x"]
    assert (t["zero3_opt_nvme_param_nvme_2x"]
            > 1.4 * t["zero3_opt_nvme_param_nvme_1x"])
    # Parameter offload always costs throughput vs optimizer-only.
    assert t["zero3_opt_nvme_param_nvme_2x"] < t["zero3_opt_nvme_2x"]
    # Memory composition: CPU offload shifts the bytes to host DRAM
    # (paper Fig. 11-b: 127 GB GPU / 353 GB CPU).
    row = next(r for r in result.rows if r["config"] == "zero2_opt_cpu")
    assert row["cpu_gb"] > 2 * row["gpu_gb"]
    assert row["cpu_gb"] == pytest.approx(353, rel=0.15)
    # NVMe runs add the third tier.
    nvme_row = next(r for r in result.rows
                    if r["config"] == "zero3_opt_nvme_2x")
    assert nvme_row["nvme_gb"] > 100
