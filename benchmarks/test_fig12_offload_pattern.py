"""Bench: Fig. 12 — bandwidth patterns under CPU and NVMe offload."""


def test_fig12_offload_pattern(run_reproduction):
    result = run_reproduction("fig12")
    rows = {r["config"]: r for r in result.rows}
    # CPU offload hammers DRAM (paper: ~70 GB/s average, peaks ~200).
    cpu = rows["zero2_opt_cpu"]
    assert cpu["DRAM_avg_gbps"] > 20
    assert cpu["DRAM_peak_gbps"] > cpu["DRAM_avg_gbps"] * 1.5
    # NVMe offload engages PCIe-NVME; CPU offload does not.
    assert rows["zero3_opt_nvme"]["PCIe-NVME_avg_gbps"] > 0.5
    assert rows["zero2_opt_cpu"]["PCIe-NVME_avg_gbps"] == 0.0
    # The NVMe runs idle the faster links: NVLink nearly quiet (paper's
    # "minimal utilization on NVLink" for offloaded runs).
    assert (rows["zero3_opt_nvme"]["NVLink_avg_gbps"]
            < cpu["DRAM_avg_gbps"])
    # Peak-and-trough shape: peaks well above averages on PCIe-NVME.
    nvme = rows["zero3_opt_nvme"]
    assert nvme["PCIe-NVME_peak_gbps"] > 1.5 * nvme["PCIe-NVME_avg_gbps"]
