"""Bench: Table IV — bandwidth utilization for every configuration."""

import pytest

from repro.experiments import paper_data


def test_table4_bandwidth(run_reproduction):
    result = run_reproduction("table4")
    rows = {r["configuration"]: r for r in result.rows}

    # --- single node (Section IV-E1) ---------------------------------
    # NVLink does the heavy lifting; everything else is near idle.
    for name in ("ddp", "megatron", "zero1", "zero2", "zero3"):
        row = rows[f"{name}@1n"]
        assert row["NVLink_avg_gbps"] > 10
        assert row["RoCE_avg_gbps"] == 0.0
        assert row["PCIe-NVME_avg_gbps"] == 0.0
        assert row["DRAM_avg_gbps"] < 10
    assert (rows["megatron@1n"]["NVLink_avg_gbps"]
            > 2 * rows["ddp@1n"]["NVLink_avg_gbps"])

    # --- dual node (Section IV-E2) -------------------------------------
    for name in ("ddp", "megatron", "zero1", "zero2", "zero3"):
        row = rows[f"{name}@2n"]
        assert row["RoCE_avg_gbps"] > 0
        assert row["PCIe-NIC_avg_gbps"] > 0
        paper_avg = paper_data.DUAL_NODE_BANDWIDTH_AVG[name]["RoCE"]
        # Within a factor of ~2.5 of the measured counters.
        assert row["RoCE_avg_gbps"] == pytest.approx(paper_avg, rel=1.5)

    # --- offload consolidations (Sections V-A/V-B) ----------------------
    cpu = rows["zero2_opt_cpu@1n"]
    assert cpu["DRAM_avg_gbps"] > 20      # paper: 73.1 GB/s average
    assert cpu["PCIe-NVME_avg_gbps"] == 0.0
    one_nvme = rows["zero3_opt_nvme@1x"]
    two_nvme = rows["zero3_opt_nvme@2x"]
    assert two_nvme["PCIe-NVME_avg_gbps"] > one_nvme["PCIe-NVME_avg_gbps"]
    assert two_nvme["tflops"] > 1.5 * one_nvme["tflops"]
