"""Bench (extension): 80 GB A100 what-if."""


def test_ext_gpu80(run_reproduction):
    result = run_reproduction("ext_gpu80")
    rows = {r["strategy"]: r for r in result.rows}
    # Doubling HBM roughly doubles every strategy's ceiling...
    for name, row in rows.items():
        assert 1.8 <= row["gain"] <= 3.0, name
    # ...without re-ranking the strategies (capacity scales, semantics
    # don't change).
    order_40 = sorted(rows, key=lambda n: rows[n]["max_40gb_b"])
    order_80 = sorted(rows, key=lambda n: rows[n]["max_80gb_b"])
    assert order_40 == order_80
    # DDP at 80 GB finally clears the 2.9 B grid point the paper's 40 GB
    # cards OOM on.
    assert rows["ddp"]["max_80gb_b"] > 2.9
