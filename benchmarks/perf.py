"""DES raw-speed harness: events/sec + wall-clock on pinned scenarios.

Seeds the ROADMAP "benchmark trajectory": every perf-relevant PR runs

    PYTHONPATH=src python benchmarks/perf.py --out benchmarks/BENCH_NNN.json

and commits the JSON, so the event-loop hot-path work (batching,
memoization, the analytic fast-path) has a measured baseline to beat.
The two scenarios are pinned — same strategy, model size, node count,
and iteration count forever — so files are comparable across PRs:

* ``single_node_zero2``: the paper's headline single-node config.
* ``dual_node_zero3``: two nodes, ZeRO-3 — collective-heavy, exercises
  the inter-node flow network.

Event counts are deterministic (the DES is seeded and tie-ordered);
wall-clock and events/sec carry machine jitter, which is why each file
also records the interpreter version and the median of several repeats.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path
from typing import Dict, List

from repro.api import RunSpec, run_spec

#: Pinned forever — edit only by adding new scenarios, never by changing
#: existing ones, or the cross-PR trajectory breaks.
SCENARIOS: Dict[str, RunSpec] = {
    "single_node_zero2": RunSpec(strategy="zero2", size_billions=1.4,
                                 nodes=1, iterations=4),
    "dual_node_zero3": RunSpec(strategy="zero3", size_billions=0.7,
                               nodes=2, iterations=4),
}

SCHEMA_VERSION = 1


def run_scenario(name: str, spec: RunSpec, *, repeats: int = 3) -> dict:
    """Run one pinned scenario ``repeats`` times, report the median."""
    wall_times: List[float] = []
    events = 0
    for _ in range(repeats):
        started = time.perf_counter()
        metrics = run_spec(spec)
        wall_times.append(time.perf_counter() - started)
        events = metrics.execution.events_processed
    wall_s = statistics.median(wall_times)
    return {
        "scenario": name,
        "strategy": spec.strategy,
        "size_billions": spec.size_billions,
        "nodes": spec.nodes,
        "iterations": spec.iterations,
        "events_processed": events,
        "wall_clock_s": round(wall_s, 4),
        "events_per_sec": round(events / wall_s, 1) if wall_s else 0.0,
        "repeats": repeats,
    }


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=None,
                        help="write the JSON record here (default: stdout)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="wall-clock repeats per scenario (median wins)")
    args = parser.parse_args(argv)

    record = {
        "schema_version": SCHEMA_VERSION,
        "python": platform.python_version(),
        "scenarios": [run_scenario(name, spec, repeats=args.repeats)
                      for name, spec in sorted(SCENARIOS.items())],
    }
    payload = json.dumps(record, indent=2) + "\n"
    if args.out is None:
        sys.stdout.write(payload)
    else:
        args.out.write_text(payload)
        for row in record["scenarios"]:
            print(f"{row['scenario']}: {row['events_processed']} events "
                  f"in {row['wall_clock_s']}s "
                  f"({row['events_per_sec']:.0f} events/s)", file=sys.stderr)
        print(f"written: {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
