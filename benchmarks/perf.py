"""DES raw-speed harness: events/sec + wall-clock on pinned scenarios.

Seeds the ROADMAP "benchmark trajectory": every perf-relevant PR runs

    PYTHONPATH=src python benchmarks/perf.py --out benchmarks/BENCH_NNN.json

and commits the JSON, so the event-loop hot-path work (batching,
memoization, the analytic fast-path) has a measured baseline to beat.
The scenarios are pinned — same strategy, model size, node count,
and iteration count forever — so files are comparable across PRs:

* ``single_node_zero2``: the paper's headline single-node config.
* ``dual_node_zero3``: two nodes, ZeRO-3 — collective-heavy, exercises
  the inter-node flow network.
* ``steady_*_full`` / ``steady_*_hybrid``: the same 24-iteration steady
  workload at both fidelities — the fast-path scenarios whose speedup
  the DES fast-path PR is accountable for.  Hybrid rows additionally
  report ``events_extrapolated`` and ``effective_events_per_sec``
  ((simulated + extrapolated events) / wall), the apples-to-apples
  throughput figure for a run that covers the same 24 iterations.
* ``single_node_zero2_leakcheck``: ``single_node_zero2`` with the
  runtime leak sanitizer attached (``leak_check=True``) — the pool
  observer and per-flow ledger-reservation overhead, tracked against
  the identical unchecked scenario so the sanitizer's cost stays
  honest (it must remain a small constant factor, never a slowdown
  that discourages leak-checked CI runs).
* ``cluster_fifo_16``: the multi-tenant cluster service — 16 seeded
  Poisson arrivals scheduled FIFO onto a 4-node fabric through one
  shared engine.  Rows report ``jobs_completed`` and the simulated
  ``jobs_per_hour`` alongside the usual events/sec, so scheduler and
  shared-ledger overhead has its own trajectory.
* ``serve_continuous_64``: the inference serving subsystem — 64 seeded
  Poisson chat requests through one TP-2 instance under continuous
  batching.  Rows report ``requests_completed`` and the simulated
  ``goodput_requests_per_s`` alongside the usual events/sec, so the
  serving scheduler's admission/KV-cache bookkeeping overhead is
  tracked like everything else.

Event counts are deterministic (the DES is seeded and tie-ordered);
wall-clock and events/sec carry machine jitter, which is why each file
also records the interpreter version and the median of several repeats.

``--check-against PATH`` turns the harness into a CI regression gate:
it re-measures every scenario present in the committed record and fails
(exit 1) if any ``events_per_sec`` drops more than ``--tolerance``
(default 20%) below the committed value.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path
from typing import Dict, List

from repro.api import RunSpec, run_spec
from repro.cluster import ClusterScenario, run_cluster
from repro.inference import InferenceSpec, run_inference

#: Pinned forever — edit only by adding new scenarios, never by changing
#: existing ones, or the cross-PR trajectory breaks.
SCENARIOS: Dict[str, RunSpec] = {
    "single_node_zero2": RunSpec(strategy="zero2", size_billions=1.4,
                                 nodes=1, iterations=4),
    "dual_node_zero3": RunSpec(strategy="zero3", size_billions=0.7,
                               nodes=2, iterations=4),
    "single_node_zero2_leakcheck": RunSpec(
        strategy="zero2", size_billions=1.4, nodes=1, iterations=4,
        leak_check=True),
}

#: Fast-path scenarios: one steady 24-iteration workload per cluster
#: preset, measured at full and hybrid fidelity.  The paired rows share
#: a workload, so ``wall_clock_s(full) / wall_clock_s(hybrid)`` is the
#: honest fast-path speedup.
FASTPATH_SCENARIOS: Dict[str, RunSpec] = {
    "steady_single_zero2_full": RunSpec(
        strategy="zero2", size_billions=1.4, nodes=1, iterations=24),
    "steady_single_zero2_hybrid": RunSpec(
        strategy="zero2", size_billions=1.4, nodes=1, iterations=24,
        fidelity="hybrid"),
    "steady_dual_zero3_full": RunSpec(
        strategy="zero3", size_billions=0.7, nodes=2, iterations=24),
    "steady_dual_zero3_hybrid": RunSpec(
        strategy="zero3", size_billions=0.7, nodes=2, iterations=24,
        fidelity="hybrid"),
}

ALL_SCENARIOS: Dict[str, RunSpec] = {**SCENARIOS, **FASTPATH_SCENARIOS}

#: Cluster-service scenarios: many jobs through one shared engine.
#: Pinned like everything else; measured via ``run_cluster``.
CLUSTER_SCENARIOS: Dict[str, ClusterScenario] = {
    "cluster_fifo_16": ClusterScenario(
        name="bench", nodes=4, policy="fifo", rate_per_hour=12000.0,
        num_jobs=16, arrival_seed=7, mix="default"),
}

#: Inference-serving scenarios: seeded open-loop traffic through one
#: serving instance.  Pinned like everything else; measured via
#: ``run_inference``.
INFERENCE_SCENARIOS: Dict[str, InferenceSpec] = {
    "serve_continuous_64": InferenceSpec(
        size_billions=0.7, gpus=2, nodes=1, rate_per_second=8.0,
        num_requests=64, arrival_seed=7, request_mix="chat",
        batching="continuous"),
}

#: v2: adds the fast-path scenarios and, on hybrid rows, the
#: ``fidelity`` / ``events_extrapolated`` / ``effective_events_per_sec``
#: fields.  Pre-v2 rows are still comparable by scenario name.
#: v3: adds the leak-sanitizer scenario with its ``leak_check`` /
#: ``flows_tracked`` fields.  Additive only — older rows unchanged.
#: v4: adds the cluster-service scenario with ``jobs_completed`` /
#: ``jobs_per_hour`` fields.  Additive only — older rows unchanged.
#: v5: adds the inference-serving scenario with ``requests_completed``
#: / ``goodput_requests_per_s`` fields.  Additive only — older rows
#: unchanged.
SCHEMA_VERSION = 5


def run_scenario(name: str, spec: RunSpec, *, repeats: int = 3) -> dict:
    """Run one pinned scenario ``repeats`` times, report the median."""
    wall_times: List[float] = []
    events = 0
    extrapolated = 0
    for _ in range(repeats):
        started = time.perf_counter()
        metrics = run_spec(spec)
        wall_times.append(time.perf_counter() - started)
        events = metrics.execution.events_processed
        extrapolated = metrics.execution.events_extrapolated
    wall_s = statistics.median(wall_times)
    row = {
        "scenario": name,
        "strategy": spec.strategy,
        "size_billions": spec.size_billions,
        "nodes": spec.nodes,
        "iterations": spec.iterations,
        "events_processed": events,
        "wall_clock_s": round(wall_s, 4),
        "events_per_sec": round(events / wall_s, 1) if wall_s else 0.0,
        "repeats": repeats,
    }
    if spec.fidelity != "full":
        row["fidelity"] = spec.fidelity
        row["events_extrapolated"] = extrapolated
        row["effective_events_per_sec"] = (
            round((events + extrapolated) / wall_s, 1) if wall_s else 0.0
        )
    if spec.leak_check:
        row["leak_check"] = True
        row["flows_tracked"] = metrics.leaks.flows_tracked
        metrics.leaks.assert_clean()
    return row


def run_cluster_scenario(name: str, scenario: ClusterScenario, *,
                         repeats: int = 3) -> dict:
    """Run one pinned cluster scenario ``repeats`` times; median wall."""
    wall_times: List[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        report = run_cluster(scenario).report
        wall_times.append(time.perf_counter() - started)
    wall_s = statistics.median(wall_times)
    return {
        "scenario": name,
        "kind": "cluster",
        "policy": scenario.policy,
        "nodes": scenario.nodes,
        "jobs": scenario.num_jobs,
        "jobs_completed": report.jobs_completed,
        "jobs_per_hour": round(report.goodput_jobs_per_hour, 2),
        "events_processed": report.events_processed,
        "wall_clock_s": round(wall_s, 4),
        "events_per_sec": (round(report.events_processed / wall_s, 1)
                           if wall_s else 0.0),
        "repeats": repeats,
    }


def run_inference_scenario(name: str, spec: InferenceSpec, *,
                           repeats: int = 3) -> dict:
    """Run one pinned serving scenario ``repeats`` times; median wall."""
    wall_times: List[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        report = run_inference(spec).report
        wall_times.append(time.perf_counter() - started)
    wall_s = statistics.median(wall_times)
    return {
        "scenario": name,
        "kind": "inference",
        "batching": spec.batching,
        "gpus": spec.gpus,
        "nodes": spec.nodes,
        "requests": spec.num_requests,
        "requests_completed": report.requests_completed,
        "goodput_requests_per_s": round(report.goodput_requests_per_s, 2),
        "events_processed": report.events_processed,
        "wall_clock_s": round(wall_s, 4),
        "events_per_sec": (round(report.events_processed / wall_s, 1)
                           if wall_s else 0.0),
        "repeats": repeats,
    }


def check_against(committed: dict, *, tolerance: float,
                  repeats: int) -> int:
    """Re-measure committed scenarios; fail on a >tolerance regression."""
    failures = 0
    for row in committed.get("scenarios", []):
        name = row["scenario"]
        cluster_scenario = CLUSTER_SCENARIOS.get(name)
        inference_scenario = INFERENCE_SCENARIOS.get(name)
        if cluster_scenario is not None:
            fresh = run_cluster_scenario(name, cluster_scenario,
                                         repeats=repeats)
        elif inference_scenario is not None:
            fresh = run_inference_scenario(name, inference_scenario,
                                           repeats=repeats)
        else:
            spec = ALL_SCENARIOS.get(name)
            if spec is None:
                print(f"{name}: unknown scenario in committed record, "
                      f"skipping", file=sys.stderr)
                continue
            fresh = run_scenario(name, spec, repeats=repeats)
        floor = row["events_per_sec"] * (1.0 - tolerance)
        status = "ok" if fresh["events_per_sec"] >= floor else "REGRESSION"
        if status == "REGRESSION":
            failures += 1
        print(f"{name}: {fresh['events_per_sec']:.0f} events/s "
              f"(committed {row['events_per_sec']:.0f}, "
              f"floor {floor:.0f}) {status}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=None,
                        help="write the JSON record here (default: stdout)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="wall-clock repeats per scenario (median wins)")
    parser.add_argument("--check-against", type=Path, default=None,
                        metavar="PATH",
                        help="compare fresh events/sec against a committed "
                             "BENCH record; exit 1 on regression")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional events/sec drop for "
                             "--check-against (default 0.2)")
    args = parser.parse_args(argv)

    if args.check_against is not None:
        committed = json.loads(args.check_against.read_text())
        return check_against(committed, tolerance=args.tolerance,
                             repeats=args.repeats)

    record = {
        "schema_version": SCHEMA_VERSION,
        "python": platform.python_version(),
        "scenarios": [run_scenario(name, spec, repeats=args.repeats)
                      for name, spec in sorted(ALL_SCENARIOS.items())]
                     + [run_cluster_scenario(name, scenario,
                                             repeats=args.repeats)
                        for name, scenario
                        in sorted(CLUSTER_SCENARIOS.items())]
                     + [run_inference_scenario(name, spec,
                                               repeats=args.repeats)
                        for name, spec
                        in sorted(INFERENCE_SCENARIOS.items())],
    }
    payload = json.dumps(record, indent=2) + "\n"
    if args.out is None:
        sys.stdout.write(payload)
    else:
        args.out.write_text(payload)
        for row in record["scenarios"]:
            print(f"{row['scenario']}: {row['events_processed']} events "
                  f"in {row['wall_clock_s']}s "
                  f"({row['events_per_sec']:.0f} events/s)", file=sys.stderr)
        print(f"written: {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
