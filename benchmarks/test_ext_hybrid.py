"""Bench (extension): hybrid TP x ZeRO on the dual-node cluster."""


def test_ext_hybrid(run_reproduction):
    result = run_reproduction("ext_hybrid")
    rows = {r["strategy"]: r for r in result.rows}
    # The hybrid keeps TP traffic on NVLink and only ZeRO traffic on
    # RoCE: it must avoid Megatron-LM's inter-node collapse entirely...
    assert rows["hybrid_tp_zero1"]["tflops"] > 4 * rows["megatron"]["tflops"]
    # ...while fitting more than the pure ZeRO stages it builds on.
    assert (rows["hybrid_tp_zero1"]["max_model_b"]
            > rows["zero1"]["max_model_b"])
    assert (rows["hybrid_tp_zero2"]["max_model_b"]
            > rows["zero2"]["max_model_b"])
    # And beating pure ZeRO throughput (all its collectives are bigger
    # per launch and half its world is NVLink-local).
    assert rows["hybrid_tp_zero2"]["tflops"] > rows["zero2"]["tflops"]
