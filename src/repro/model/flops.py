"""Per-iteration FLOP accounting (the DeepSpeed Flops Profiler analog).

We use the standard dense-transformer accounting (Narayanan et al.,
"Efficient Large-Scale Language Model Training on GPU Clusters"): a matrix
multiply of (m x k) by (k x n) costs 2mkn FLOPs; the backward pass costs
twice the forward; activation recomputation adds one extra forward through
the checkpointed blocks.

The paper's "compute throughput" (Figs. 7, 11, 13; Table V) is
model FLOPs per iteration divided by iteration wall time, aggregated over
all GPUs — exactly what the DeepSpeed Flops Profiler reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import Flops
from .config import ModelConfig, TrainingConfig


@dataclass(frozen=True)
class FlopsBreakdown:
    """Forward-pass FLOPs per micro-batch by component."""

    attention_gemm: Flops      # QKV, projection
    attention_scores: Flops    # QK^T and attention-weighted values
    mlp: Flops
    lm_head: Flops

    @property
    def forward_total(self) -> Flops:
        return (
            self.attention_gemm
            + self.attention_scores
            + self.mlp
            + self.lm_head
        )


def forward_flops(config: ModelConfig, batch_size: int) -> FlopsBreakdown:
    """Forward FLOPs for one micro-batch of ``batch_size`` sequences."""
    s = config.seq_length
    h = config.hidden_size
    ffn = config.ffn_hidden
    L = config.num_layers
    tokens = batch_size * s
    attention_gemm = L * (
        2 * tokens * h * (3 * h)   # QKV projection
        + 2 * tokens * h * h       # output projection
    )
    attention_scores = L * (
        2 * batch_size * config.num_heads * s * s * config.head_dim  # QK^T
        + 2 * batch_size * config.num_heads * s * s * config.head_dim  # AV
    )
    mlp = L * (2 * tokens * h * ffn + 2 * tokens * ffn * h)
    lm_head = 2 * tokens * h * config.vocab_size
    return FlopsBreakdown(
        attention_gemm=attention_gemm,
        attention_scores=attention_scores,
        mlp=mlp,
        lm_head=lm_head,
    )


def iteration_flops(config: ModelConfig, training: TrainingConfig,
                    num_gpus: int) -> Flops:
    """Model FLOPs for one optimizer step across the whole job.

    Backward is 2x forward; activation recomputation re-runs the forward
    through the transformer blocks (but not the LM head).  Every GPU
    processes its own micro-batch (pure data parallelism at the cluster
    level — model-parallel strategies split these same FLOPs, they do not
    add to them).
    """
    fwd = forward_flops(config, training.micro_batch_per_gpu)
    per_gpu = 3.0 * fwd.forward_total
    if training.activation_recompute:
        per_gpu += fwd.forward_total - fwd.lm_head
    return per_gpu * num_gpus


def flops_factor(training: TrainingConfig) -> float:
    """Multiple of one forward pass executed per iteration (3 or ~4)."""
    return 4.0 if training.activation_recompute else 3.0
