"""Model-state partitioning and placement accounting (paper Table I).

Mixed-precision Adam training keeps, per parameter: 2 B fp16 weights,
2 B fp16 gradients, and 12 B of fp32 optimizer state (master weights,
momentum, variance) — 16 B/parameter in total (Rajbhandari et al., ZeRO).

This module computes where those bytes live for every strategy/offload
combination the paper evaluates: replicated (DDP), model-parallel split
(Megatron-LM), ZeRO-partitioned by stage, and ZeRO-Offload / ZeRO-Infinity
placements in CPU DRAM or NVMe.  All quantities are *per data-parallel
rank* (per GPU) unless suffixed ``_total``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import CapabilityError, ConfigurationError

PARAM_BYTES = 2.0       # fp16 weights
GRAD_BYTES = 2.0        # fp16 gradients
OPTIM_BYTES = 12.0      # fp32 master + momentum + variance
TOTAL_STATE_BYTES = PARAM_BYTES + GRAD_BYTES + OPTIM_BYTES


class OffloadTarget(enum.Enum):
    """Where a partitioned state component lives (paper Table I columns)."""

    NONE = "none"
    CPU = "cpu"
    NVME = "nvme"


class ZeroStage(enum.IntEnum):
    """DeepSpeed ZeRO stages (paper Table I rows).

    Stage 0 disables partitioning (plain DDP semantics through the
    DeepSpeed engine); stages 1-3 partition optimizer states, gradients,
    and parameters cumulatively.
    """

    DISABLED = 0
    OPTIMIZER = 1
    GRADIENTS = 2
    PARAMETERS = 3

    @property
    def partitions_optimizer(self) -> bool:
        return self >= ZeroStage.OPTIMIZER

    @property
    def partitions_gradients(self) -> bool:
        return self >= ZeroStage.GRADIENTS

    @property
    def partitions_parameters(self) -> bool:
        return self >= ZeroStage.PARAMETERS

    def supports_offload(self, component: str, target: OffloadTarget) -> bool:
        """Capability matrix of paper Table I."""
        if target is OffloadTarget.NONE:
            return True
        if component == "optimizer":
            if target is OffloadTarget.CPU:
                return self >= ZeroStage.OPTIMIZER
            return self >= ZeroStage.PARAMETERS  # NVMe needs ZeRO-3
        if component == "parameter":
            return self >= ZeroStage.PARAMETERS
        raise ConfigurationError(f"unknown state component {component!r}")


def validate_offload(stage: ZeroStage, *, optimizer_target: OffloadTarget,
                     parameter_target: OffloadTarget) -> None:
    """Raise :class:`CapabilityError` on Table-I-invalid combinations."""
    if not stage.supports_offload("optimizer", optimizer_target):
        raise CapabilityError(
            f"ZeRO-{int(stage)} cannot offload optimizer states to "
            f"{optimizer_target.value}; see paper Table I"
        )
    if not stage.supports_offload("parameter", parameter_target):
        raise CapabilityError(
            f"ZeRO-{int(stage)} cannot offload parameters to "
            f"{parameter_target.value}; see paper Table I"
        )


@dataclass(frozen=True)
class StatePlacement:
    """Bytes of model state per data-parallel rank, by residence.

    ``gpu_*`` components are resident in the rank's HBM; ``cpu_*`` in the
    host DRAM serving that rank; ``nvme_*`` on the swap volume.
    """

    gpu_params: float = 0.0
    gpu_grads: float = 0.0
    gpu_optimizer: float = 0.0
    cpu_params: float = 0.0
    cpu_grads: float = 0.0
    cpu_optimizer: float = 0.0
    nvme_params: float = 0.0
    nvme_optimizer: float = 0.0

    @property
    def gpu_total(self) -> float:
        return self.gpu_params + self.gpu_grads + self.gpu_optimizer

    @property
    def cpu_total(self) -> float:
        return self.cpu_params + self.cpu_grads + self.cpu_optimizer

    @property
    def nvme_total(self) -> float:
        return self.nvme_params + self.nvme_optimizer

    @property
    def total(self) -> float:
        return self.gpu_total + self.cpu_total + self.nvme_total


def replicated_states(num_params: float) -> StatePlacement:
    """DDP: every rank holds every byte (16 B/parameter on GPU)."""
    return StatePlacement(
        gpu_params=PARAM_BYTES * num_params,
        gpu_grads=GRAD_BYTES * num_params,
        gpu_optimizer=OPTIM_BYTES * num_params,
    )


def model_parallel_states(num_params: float, model_parallel_degree: int) -> StatePlacement:
    """Megatron-LM: all states split across the TP x PP group."""
    if model_parallel_degree < 1:
        raise ConfigurationError("model_parallel_degree must be >= 1")
    share = num_params / model_parallel_degree
    return replicated_states(share)


def zero_states(num_params: float, stage: ZeroStage, dp_degree: int, *,
                optimizer_target: OffloadTarget = OffloadTarget.NONE,
                parameter_target: OffloadTarget = OffloadTarget.NONE) -> StatePlacement:
    """ZeRO stage ``stage`` over ``dp_degree`` ranks, with offload targets.

    ZeRO-Offload moves the fp32 optimizer partition (and, with it, a fp32
    gradient working copy for the CPU Adam step) to host DRAM; ZeRO-3 with
    parameter offload keeps only the working fp16 parameters on GPU.
    ZeRO-Infinity pushes the optimizer partition (and optionally the fp16
    parameter partition) to NVMe, with host DRAM acting as the staging
    tier (accounted by the strategies' buffer models, not here).
    """
    if dp_degree < 1:
        raise ConfigurationError("dp_degree must be >= 1")
    validate_offload(stage, optimizer_target=optimizer_target,
                     parameter_target=parameter_target)
    params = PARAM_BYTES * num_params
    grads = GRAD_BYTES * num_params
    optim = OPTIM_BYTES * num_params

    gpu_params, cpu_params, nvme_params = params, 0.0, 0.0
    gpu_grads, cpu_grads = grads, 0.0
    gpu_optim, cpu_optim, nvme_optim = optim, 0.0, 0.0

    if stage.partitions_optimizer:
        gpu_optim = optim / dp_degree
    if stage.partitions_gradients:
        gpu_grads = grads / dp_degree
    if stage.partitions_parameters:
        gpu_params = params / dp_degree

    if optimizer_target is not OffloadTarget.NONE:
        # CPU Adam consumes gradients host-side: the rank's gradient
        # partition moves to pinned DRAM as fp32 (2x the fp16 bytes), and
        # the GPU no longer retains the partition.  Without gradient
        # partitioning (stage 1) the GPU still buffers most of the full
        # fp16 gradient set in flight, because the PCIe drain cannot keep
        # up with backward compute (calibrated to Fig. 13's ZeRO-1 CPU
        # ceiling of 8.9 B parameters).
        cpu_grads = gpu_grads * 2.0
        gpu_grads = 0.0 if stage.partitions_gradients else 0.75 * grads
    if optimizer_target is OffloadTarget.CPU:
        cpu_optim, gpu_optim = gpu_optim, 0.0
    elif optimizer_target is OffloadTarget.NVME:
        nvme_optim, gpu_optim = gpu_optim, 0.0

    if parameter_target is OffloadTarget.CPU:
        cpu_params, gpu_params = gpu_params, 0.0
    elif parameter_target is OffloadTarget.NVME:
        nvme_params, gpu_params = gpu_params, 0.0

    return StatePlacement(
        gpu_params=gpu_params,
        gpu_grads=gpu_grads,
        gpu_optimizer=gpu_optim,
        cpu_params=cpu_params,
        cpu_grads=cpu_grads,
        cpu_optimizer=cpu_optim,
        nvme_params=nvme_params,
        nvme_optimizer=nvme_optim,
    )
