"""Activation-memory model.

Without recomputation, the fp16 activation footprint of one transformer
layer for micro-batch ``b`` and sequence ``s`` follows the standard
estimate (Korthikanti et al., "Reducing Activation Recomputation in Large
Transformer Models"):

    bytes_per_layer = s * b * h * (34 + 5 * a * s / h)

With full activation recomputation only the layer-boundary activations are
kept (2 bytes/element), plus one layer's working set that is live while a
block executes.  Tensor parallelism divides the bulk of the per-layer
activations by the TP degree (LayerNorm inputs are replicated); pipeline
parallelism keeps one micro-batch's activations per in-flight stage.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .config import ModelConfig, TrainingConfig


def activation_bytes_per_layer(config: ModelConfig, training: TrainingConfig,
                               *, tensor_parallel: int = 1) -> float:
    """fp16 activation bytes one layer retains for the backward pass."""
    if tensor_parallel < 1:
        raise ConfigurationError("tensor_parallel must be >= 1")
    s = config.seq_length
    b = training.micro_batch_per_gpu
    h = config.hidden_size
    a = config.num_heads
    full = s * b * h * (34.0 + 5.0 * a * s / h)
    # Following Korthikanti et al.: the attention/MLP internals shard by TP
    # while ~10 bytes/token-channel of LayerNorm/residual inputs replicate.
    sharded = s * b * h * ((24.0 + 5.0 * a * s / h) / tensor_parallel + 10.0)
    return full if tensor_parallel == 1 else sharded


def checkpoint_boundary_bytes(config: ModelConfig,
                              training: TrainingConfig) -> float:
    """Bytes to store one layer-boundary activation (fp16)."""
    return 2.0 * config.seq_length * training.micro_batch_per_gpu * config.hidden_size


def activation_memory_per_gpu(config: ModelConfig, training: TrainingConfig, *,
                              tensor_parallel: int = 1,
                              pipeline_parallel: int = 1) -> float:
    """Total activation bytes resident on one GPU during training.

    With recomputation: one boundary tensor per local layer plus the live
    working set of a single layer (the block being recomputed).  Without:
    the full per-layer footprint for every local layer.  Pipeline
    parallelism multiplies resident micro-batches by the number of
    in-flight stages (we model the GPipe-style schedule Megatron-LM uses,
    which keeps up to ``pipeline_parallel`` micro-batches in flight).
    """
    if pipeline_parallel < 1:
        raise ConfigurationError("pipeline_parallel must be >= 1")
    local_layers = max(1, config.num_layers // pipeline_parallel)
    per_layer = activation_bytes_per_layer(
        config, training, tensor_parallel=tensor_parallel
    )
    if training.activation_recompute:
        boundaries = checkpoint_boundary_bytes(config, training) * local_layers
        working_set = per_layer
        resident = boundaries + working_set
    else:
        resident = per_layer * local_layers
    in_flight = min(pipeline_parallel, 1 if pipeline_parallel == 1 else pipeline_parallel)
    return resident * (in_flight if pipeline_parallel > 1 else 1)
