"""Parameter counting for the GPT-2-like model.

The per-layer parameter count of a standard pre-LN GPT block with hidden
size ``h`` and 4h FFN is ``12 h^2 + 13 h`` (QKV + attention projection +
two FFN matrices, their biases, and two LayerNorms); embeddings add
``(V + P_max) h`` and the final LayerNorm ``2 h``.  With h = 2048 each
layer is ~50.4 M parameters, so the paper's 1.4 B model is ~26 layers and
the 33.3 B ZeRO-Infinity model is ~660 layers.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import ModelConfig


@dataclass(frozen=True)
class ParameterBreakdown:
    """Parameter counts by component, all in raw parameter counts."""

    embedding: int
    position_embedding: int
    per_layer: int
    num_layers: int
    final_layernorm: int
    lm_head: int

    @property
    def transformer(self) -> int:
        return self.per_layer * self.num_layers

    @property
    def total(self) -> int:
        return (
            self.embedding
            + self.position_embedding
            + self.transformer
            + self.final_layernorm
            + self.lm_head
        )


def layer_parameters(config: ModelConfig) -> int:
    """Parameters in one transformer block."""
    h = config.hidden_size
    ffn = config.ffn_hidden
    attention = 3 * h * h + 3 * h  # fused QKV
    attention += h * h + h        # output projection
    mlp = h * ffn + ffn           # up-projection
    mlp += ffn * h + h            # down-projection
    layernorms = 2 * (2 * h)
    return attention + mlp + layernorms


def count_parameters(config: ModelConfig) -> ParameterBreakdown:
    """Full parameter breakdown for a model configuration."""
    h = config.hidden_size
    embedding = config.vocab_size * h
    position = config.max_position_embeddings * h
    lm_head = 0 if config.tied_embeddings else config.vocab_size * h
    return ParameterBreakdown(
        embedding=embedding,
        position_embedding=position,
        per_layer=layer_parameters(config),
        num_layers=config.num_layers,
        final_layernorm=2 * h,
        lm_head=lm_head,
    )


def total_parameters(config: ModelConfig) -> int:
    """Total parameter count (the paper's "model size")."""
    return count_parameters(config).total


def layers_for_target_params(config: ModelConfig, target_params: float) -> int:
    """Smallest depth whose total parameter count reaches ``target_params``.

    Used to translate the paper's billion-parameter model sizes (Table V's
    columns) back into layer counts for simulation.
    """
    base = count_parameters(config.with_layers(1))
    fixed = base.total - base.per_layer
    needed = max(0.0, target_params - fixed)
    layers = max(1, round(needed / base.per_layer))
    while total_parameters(config.with_layers(layers)) < target_params:
        layers += 1
    return layers
