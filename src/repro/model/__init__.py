"""Analytic GPT-2-like transformer: parameters, FLOPs, activations, states."""

from .activations import (
    activation_bytes_per_layer,
    activation_memory_per_gpu,
    checkpoint_boundary_bytes,
)
from .config import GPT2_VOCAB_PADDED, GPT2_VOCAB_SIZE, ModelConfig, TrainingConfig, paper_model
from .flops import FlopsBreakdown, flops_factor, forward_flops, iteration_flops
from .params import (
    ParameterBreakdown,
    count_parameters,
    layer_parameters,
    layers_for_target_params,
    total_parameters,
)
from .states import (
    GRAD_BYTES,
    OPTIM_BYTES,
    PARAM_BYTES,
    TOTAL_STATE_BYTES,
    OffloadTarget,
    StatePlacement,
    ZeroStage,
    model_parallel_states,
    replicated_states,
    validate_offload,
    zero_states,
)

__all__ = [
    "GPT2_VOCAB_PADDED",
    "GPT2_VOCAB_SIZE",
    "GRAD_BYTES",
    "FlopsBreakdown",
    "ModelConfig",
    "OPTIM_BYTES",
    "OffloadTarget",
    "PARAM_BYTES",
    "ParameterBreakdown",
    "StatePlacement",
    "TOTAL_STATE_BYTES",
    "TrainingConfig",
    "ZeroStage",
    "activation_bytes_per_layer",
    "activation_memory_per_gpu",
    "checkpoint_boundary_bytes",
    "count_parameters",
    "flops_factor",
    "forward_flops",
    "iteration_flops",
    "layer_parameters",
    "layers_for_target_params",
    "model_parallel_states",
    "paper_model",
    "replicated_states",
    "total_parameters",
    "validate_offload",
    "zero_states",
]
