"""GPT-2-like model configuration (paper Section III-B2).

The paper fixes 16 attention heads, hidden size 2048, sequence length 256,
1024 maximum position embeddings, and a per-GPU micro-batch of 16, then
varies the number of transformer layers to scale the model from 0.7 B to
33.3 B parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigurationError

#: GPT-2 BPE vocabulary, padded to a multiple of 128 as Megatron-LM does
#: for efficient tensor-parallel embedding sharding.
GPT2_VOCAB_SIZE = 50257
GPT2_VOCAB_PADDED = 50304


@dataclass(frozen=True)
class ModelConfig:
    """A GPT-2-like transformer language model specification."""

    num_layers: int
    hidden_size: int = 2048
    num_heads: int = 16
    seq_length: int = 256
    max_position_embeddings: int = 1024
    vocab_size: int = GPT2_VOCAB_PADDED
    ffn_multiplier: int = 4
    tied_embeddings: bool = True

    def __post_init__(self) -> None:
        if self.num_layers < 1:
            raise ConfigurationError("num_layers must be >= 1")
        if self.hidden_size % self.num_heads != 0:
            raise ConfigurationError(
                f"hidden_size {self.hidden_size} is not divisible by "
                f"num_heads {self.num_heads}"
            )
        if self.seq_length > self.max_position_embeddings:
            raise ConfigurationError(
                "seq_length cannot exceed max_position_embeddings"
            )

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_heads

    @property
    def ffn_hidden(self) -> int:
        return self.ffn_multiplier * self.hidden_size

    def with_layers(self, num_layers: int) -> "ModelConfig":
        """The same model at a different depth (the paper's scaling axis)."""
        return replace(self, num_layers=num_layers)


def paper_model(num_layers: int) -> ModelConfig:
    """The paper's GPT-2-like model at a given depth."""
    return ModelConfig(num_layers=num_layers)


@dataclass(frozen=True)
class TrainingConfig:
    """Per-run training hyperparameters the paper holds fixed."""

    micro_batch_per_gpu: int = 16
    precision_bytes: int = 2  # FP16 mixed precision
    optimizer: str = "adam"
    activation_recompute: bool = True

    def __post_init__(self) -> None:
        if self.micro_batch_per_gpu < 1:
            raise ConfigurationError("micro batch must be >= 1")
        if self.precision_bytes not in (2, 4):
            raise ConfigurationError("precision must be fp16 (2) or fp32 (4)")
