"""Canonical, serializable run specification: the :class:`RunSpec`.

:func:`repro.core.runner.run_training` grew eleven loose keyword
arguments over the first PRs — live ``Cluster``/``TrainingStrategy``/
``ModelConfig`` objects plus placement, swap volumes, fault plans and
four determinism/observability flags.  None of that has a canonical
serializable form, so nothing sound existed to key a result cache on.

``RunSpec`` is that form: a frozen dataclass of *names and scalars only*
(strategy name, placement key, fault spec strings, tie-order policy
name) with a documented round trip (``from_dict(to_dict(s)) == s``) and
a documented stable content hash (:meth:`RunSpec.cache_key`).
Materializing the live simulator objects from a spec is
:mod:`repro.api.build`'s job, keeping this module importable from
anywhere (including :mod:`repro.core.runner`) without cycles.

**Cache-key stability contract.**  ``cache_key()`` is a SHA-256 over the
salt plus the canonical JSON encoding of :meth:`to_dict` (sorted keys,
compact separators).  It is therefore:

* independent of dict insertion order and of the process that computes
  it (no ``id()``/hash-seed/wall-clock inputs);
* changed by exactly two things — a field value changing, or the salt
  changing.  The default salt (:func:`default_salt`) embeds the package
  version and the results schema version, so upgrading either safely
  invalidates every cached result.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from typing import Dict, Mapping, Optional, Tuple

from ..errors import ConfigurationError

#: Tie-order policy names accepted by :attr:`RunSpec.tie_order`
#: (materialized in :mod:`repro.api.build`).
TIE_ORDERS = ("fifo", "reversed", "seeded")

#: Fidelity names accepted by :attr:`RunSpec.fidelity` (defined in
#: :mod:`repro.sim.fastpath`; re-declared here as data so this module
#: stays import-cycle-free).
FIDELITIES = ("full", "hybrid")


def default_salt() -> str:
    """The code-version salt mixed into every cache key.

    Bumping the package version or the results schema version changes
    the salt, so stale cached payloads can never be confused for current
    ones.  Imported lazily to keep this module cycle-free.
    """
    from .. import __version__
    from ..core.results import SCHEMA_VERSION

    return f"repro/{__version__}/results-v{SCHEMA_VERSION}"


def canonical_json(payload: Mapping[str, object]) -> str:
    """The canonical encoding content hashes are computed over.

    Sorted keys and compact separators make the encoding independent of
    dict ordering; ``allow_nan=False`` keeps the payload portable.
    """
    try:
        return json.dumps(payload, sort_keys=True,
                          separators=(",", ":"), allow_nan=False)
    except (TypeError, ValueError) as error:
        raise ConfigurationError(
            f"payload is not canonically JSON-serializable: {error}"
        ) from None


def stable_key(payload: Mapping[str, object], *,
               salt: Optional[str] = None) -> str:
    """SHA-256 hex digest of ``salt`` + the canonical JSON of ``payload``."""
    if salt is None:
        salt = default_salt()
    body = salt + "\n" + canonical_json(payload)
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RunSpec:
    """One simulated training run, as pure serializable data.

    Exactly one of ``size_billions`` / ``num_layers`` selects the model
    depth (``size_billions`` goes through the paper's layers-for-target
    search; ``num_layers`` pins the depth exactly).  Everything else
    mirrors one ``run_training`` keyword; see
    :func:`repro.api.build.materialize` for the mapping.
    """

    strategy: str
    size_billions: Optional[float] = None
    num_layers: Optional[int] = None
    nodes: int = 1
    placement: str = "B"
    iterations: int = 3
    warmup_iterations: int = 1
    #: training hyperparameters (``TrainingConfig``)
    micro_batch_per_gpu: int = 16
    precision_bytes: int = 2
    activation_recompute: bool = True
    #: fault injection: spec strings in :meth:`repro.faults.FaultPlan.parse`
    #: syntax, plus the seed/horizon the plan is expanded with
    faults: Tuple[str, ...] = ()
    fault_seed: int = 0
    fault_horizon: Optional[float] = None
    #: transport retry policy; ``None`` everywhere means library defaults
    retry_timeout_s: Optional[float] = None
    retry_backoff: Optional[float] = None
    retry_max_retries: Optional[int] = None
    #: determinism / observability hooks
    tie_order: str = "fifo"
    tie_seed: int = 7
    sanitize: bool = False
    trace: bool = False
    #: attach the runtime leak sanitizer (:mod:`repro.sim.leaksan`) and
    #: audit pools/ledgers/flows for outstanding balance at teardown
    leak_check: bool = False
    preflight: bool = True
    #: simulation fidelity: "full" runs every iteration on the DES;
    #: "hybrid" measures a steady window and extrapolates the rest
    #: (:mod:`repro.sim.fastpath`).  Part of the cache key by
    #: construction, so full and hybrid results can never be conflated.
    fidelity: str = "full"

    def __post_init__(self) -> None:
        if not self.strategy:
            raise ConfigurationError("RunSpec needs a strategy name")
        if (self.size_billions is None) == (self.num_layers is None):
            raise ConfigurationError(
                "RunSpec needs exactly one of size_billions / num_layers"
            )
        if self.size_billions is not None and self.size_billions <= 0:
            raise ConfigurationError("size_billions must be positive")
        if self.num_layers is not None and self.num_layers < 1:
            raise ConfigurationError("num_layers must be >= 1")
        if self.nodes < 1:
            raise ConfigurationError("nodes must be >= 1")
        if self.iterations <= self.warmup_iterations:
            raise ConfigurationError(
                "need more iterations than warmup iterations"
            )
        if self.tie_order not in TIE_ORDERS:
            raise ConfigurationError(
                f"unknown tie order {self.tie_order!r} "
                f"(expected one of {TIE_ORDERS})"
            )
        if self.fidelity not in FIDELITIES:
            raise ConfigurationError(
                f"unknown fidelity {self.fidelity!r} "
                f"(expected one of {FIDELITIES})"
            )
        # Normalize list -> tuple so from_dict round-trips to equality.
        if not isinstance(self.faults, tuple):
            object.__setattr__(self, "faults", tuple(self.faults))

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe dict holding every field (``faults`` as a list)."""
        payload: Dict[str, object] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if isinstance(value, tuple):
                value = list(value)
            payload[spec_field.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "RunSpec":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown RunSpec fields {unknown}; known: {sorted(known)}"
            )
        if "strategy" not in payload:
            raise ConfigurationError("RunSpec payload needs a strategy")
        try:
            return cls(**dict(payload))  # type: ignore[arg-type]
        except TypeError as error:
            raise ConfigurationError(f"bad RunSpec payload: {error}") from None

    def cache_key(self, *, salt: Optional[str] = None) -> str:
        """The stable content hash caching is keyed on (see module doc)."""
        return stable_key({"kind": "run", "spec": self.to_dict()}, salt=salt)

    def replace(self, **changes: object) -> "RunSpec":
        """A copy with ``changes`` applied, re-validated on construction.

        Goes back through ``__init__`` (and therefore ``__post_init__``)
        so an invalid field combination — e.g. setting ``num_layers`` on
        a ``size_billions`` spec, or ``nodes=0`` — raises the same
        :class:`ConfigurationError` it would at construction time
        instead of sneaking past as a mutated copy.  Unknown field names
        are a :class:`ConfigurationError` too, matching ``from_dict``.
        """
        known = {spec_field.name for spec_field in fields(self)}
        unknown = sorted(set(changes) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown {type(self).__name__} fields {unknown}; "
                f"known: {sorted(known)}"
            )
        return replace(self, **changes)  # type: ignore[arg-type]

    @property
    def label(self) -> str:
        """A short human-readable identity, used for job ids."""
        size = (f"{self.size_billions:g}b" if self.size_billions is not None
                else f"{self.num_layers}l")
        return f"{self.strategy}-{size}-n{self.nodes}-{self.placement}"

    def run(self):
        """Materialize and simulate this spec (see :func:`repro.api.run_spec`)."""
        from .build import run_spec

        return run_spec(self)
