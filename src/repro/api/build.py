"""Materialize a :class:`~repro.api.spec.RunSpec` into live simulator
objects and run it.

This is the one place that maps canonical names back to objects:
strategy names through :data:`repro.experiments.common.ALL_STRATEGIES`,
placement keys through :data:`repro.parallel.placement.PLACEMENTS`,
fault spec strings through :meth:`repro.faults.FaultPlan.parse`, and
tie-order policy names onto the engine's :class:`~repro.sim.engine.
TieOrder` classes.  The cluster-preset rule matches the CLI and the
perturbation differ: NVMe strategies get a cluster wired from the
placement's node spec; everything else uses the standard single-/dual-
node presets (and an explicit ``ClusterSpec`` beyond two nodes).
"""

from __future__ import annotations

from typing import Optional

from ..collectives.nccl import RetryPolicy
from ..core.runner import RunMetrics, run_training
from ..core.search import model_for_billions
from ..errors import ConfigurationError
from ..faults.plan import FaultPlan
from ..hardware.cluster import Cluster, ClusterSpec
from ..hardware.presets import dual_node_cluster, single_node_cluster
from ..model.config import ModelConfig, TrainingConfig, paper_model
from ..parallel.placement import PLACEMENTS, PlacementConfig
from ..sim.engine import ReversedTies, SeededTies, TieOrder
from .spec import RunSpec


def build_strategy(spec: RunSpec):
    """The named strategy, freshly constructed."""
    from ..experiments.common import ALL_STRATEGIES

    try:
        factory = ALL_STRATEGIES[spec.strategy]
    except KeyError:
        raise ConfigurationError(
            f"unknown strategy {spec.strategy!r}; "
            f"known: {sorted(ALL_STRATEGIES)}"
        ) from None
    return factory()


def build_placement(spec: RunSpec) -> PlacementConfig:
    try:
        return PLACEMENTS[spec.placement]
    except KeyError:
        raise ConfigurationError(
            f"unknown placement {spec.placement!r}; "
            f"known: {sorted(PLACEMENTS)}"
        ) from None


def build_cluster(spec: RunSpec) -> Cluster:
    """The cluster preset the spec's strategy/nodes/placement imply."""
    placement = build_placement(spec)
    if "nvme" in spec.strategy:
        return Cluster(ClusterSpec(num_nodes=spec.nodes,
                                   node=placement.node_spec()))
    if spec.nodes == 1:
        return single_node_cluster()
    if spec.nodes == 2:
        return dual_node_cluster()
    return Cluster(ClusterSpec(num_nodes=spec.nodes))


def build_model(spec: RunSpec) -> ModelConfig:
    if spec.num_layers is not None:
        return paper_model(spec.num_layers)
    assert spec.size_billions is not None
    return model_for_billions(spec.size_billions)


def build_training(spec: RunSpec) -> TrainingConfig:
    return TrainingConfig(
        micro_batch_per_gpu=spec.micro_batch_per_gpu,
        precision_bytes=spec.precision_bytes,
        activation_recompute=spec.activation_recompute,
    )


def build_fault_plan(spec: RunSpec) -> Optional[FaultPlan]:
    if not spec.faults:
        return None
    return FaultPlan.parse(list(spec.faults), seed=spec.fault_seed,
                           horizon=spec.fault_horizon)


def build_retry_policy(spec: RunSpec) -> Optional[RetryPolicy]:
    values = (spec.retry_timeout_s, spec.retry_backoff,
              spec.retry_max_retries)
    if all(value is None for value in values):
        return None
    defaults = RetryPolicy()
    return RetryPolicy(
        timeout=(defaults.timeout if spec.retry_timeout_s is None
                 else spec.retry_timeout_s),
        backoff=(defaults.backoff if spec.retry_backoff is None
                 else spec.retry_backoff),
        max_retries=(defaults.max_retries if spec.retry_max_retries is None
                     else spec.retry_max_retries),
    )


def build_tie_order(spec: RunSpec) -> Optional[TieOrder]:
    if spec.tie_order == "reversed":
        return ReversedTies()
    if spec.tie_order == "seeded":
        return SeededTies(spec.tie_seed)
    return None  # fifo: the engine default


def run_spec(spec: RunSpec, *, cluster: Optional[Cluster] = None
             ) -> RunMetrics:
    """Simulate one :class:`RunSpec` and return its metrics.

    The canonical entry point for spec-driven execution: the campaign
    runner, ``repro run``, and :meth:`RunSpec.run` all come through
    here.  ``cluster`` overrides the preset (for callers that already
    built one); the returned metrics carry ``metrics.spec`` so results
    stay traceable to their exact configuration.
    """
    if cluster is None:
        cluster = build_cluster(spec)
    return run_training(
        cluster,
        build_strategy(spec),
        build_model(spec),
        training=build_training(spec),
        iterations=spec.iterations,
        warmup_iterations=spec.warmup_iterations,
        placement=build_placement(spec),
        fault_plan=build_fault_plan(spec),
        retry_policy=build_retry_policy(spec),
        tie_order=build_tie_order(spec),
        sanitize=spec.sanitize,
        trace=spec.trace,
        leak_check=spec.leak_check,
        preflight=spec.preflight,
        # None (not "full") when the spec is silent, so an ambient
        # fidelity_override() can still reach spec-driven runs.
        fidelity=spec.fidelity if spec.fidelity != "full" else None,
        spec=spec,
    )
