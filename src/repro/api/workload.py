"""The workload-polymorphic spec contract: the :class:`Workload` protocol.

The first nine PRs hard-wired the public surface to a single workload
kind: ``RunSpec`` *was* "the spec", campaigns special-cased it, and the
CLI only knew ``repro run``.  Adding inference serving
(:mod:`repro.inference`) would have doubled every one of those seams,
so this module extracts what all of them actually relied on into a
small structural protocol:

``to_dict()``
    JSON-safe field dump (round-trips through ``from_dict``).
``from_dict(payload)``
    Classmethod inverse; rejects unknown keys with
    :class:`~repro.errors.ConfigurationError`.
``cache_key(salt=...)``
    Stable content hash per the contract documented in
    :mod:`repro.api.spec` — the campaign result cache keys on it.
``label``
    Short human-readable identity, used for job ids.
``run()``
    Materialize and simulate the spec, returning the workload's native
    result object.

Both :class:`repro.api.RunSpec` (training) and
:class:`repro.inference.InferenceSpec` satisfy it; campaigns, the
result cache, the cluster daemon and the CLI dispatch on the *workload
kind string* ("train" / "inference") via :data:`WORKLOAD_KINDS` and
:func:`workload_class` instead of importing concrete spec classes.

The registry is intentionally lazy (module-path strings resolved on
first use) so :mod:`repro.api` never imports :mod:`repro.inference` at
import time — the protocol layer must stay cycle-free exactly like
:mod:`repro.api.spec`.
"""

from __future__ import annotations

from importlib import import_module
from typing import Any, Dict, Mapping, Optional, Tuple, Type

from ..errors import ConfigurationError

try:  # Protocol is 3.8+; runtime_checkable keeps isinstance() useful.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - ancient interpreters only
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


@runtime_checkable
class Workload(Protocol):
    """Structural contract every schedulable spec satisfies.

    Purely structural: spec classes do not inherit from this, they just
    implement the five members.  ``isinstance(spec, Workload)`` works at
    runtime (method presence only) and the contract tests in
    ``tests/test_workload_protocol.py`` pin the behavioural half —
    round-trip equality, cache-key stability, label shape.
    """

    def to_dict(self) -> Dict[str, object]: ...

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Workload": ...

    def cache_key(self, *, salt: Optional[str] = None) -> str: ...

    @property
    def label(self) -> str: ...

    def run(self) -> Any: ...


#: Workload kind string -> "module:Class" path of the spec satisfying
#: :class:`Workload`.  Kind strings are public API: they appear in
#: ``repro run --workload`` and in campaign job ids/payloads.
_WORKLOAD_PATHS: Dict[str, str] = {
    "train": "repro.api.spec:RunSpec",
    "inference": "repro.inference.spec:InferenceSpec",
}

#: The workload kinds the CLI and campaigns accept, in stable order.
WORKLOAD_KINDS: Tuple[str, ...] = tuple(_WORKLOAD_PATHS)

_RESOLVED: Dict[str, Type[Any]] = {}


def workload_class(kind: str) -> Type[Any]:
    """The spec class registered for workload ``kind``.

    Resolution is lazy and memoized; an unknown kind is a
    :class:`ConfigurationError` naming the valid ones.
    """
    try:
        path = _WORKLOAD_PATHS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {kind!r} "
            f"(expected one of {sorted(_WORKLOAD_PATHS)})"
        ) from None
    cls = _RESOLVED.get(kind)
    if cls is None:
        module_name, _, class_name = path.partition(":")
        cls = getattr(import_module(module_name), class_name)
        _RESOLVED[kind] = cls
    return cls


def workload_kind(spec: Any) -> str:
    """The registered kind string for a live spec instance."""
    for kind in WORKLOAD_KINDS:
        if isinstance(spec, workload_class(kind)):
            return kind
    raise ConfigurationError(
        f"{type(spec).__name__} is not a registered workload spec "
        f"(known kinds: {sorted(_WORKLOAD_PATHS)})"
    )


def spec_from_payload(kind: str, payload: Mapping[str, object]) -> Workload:
    """Deserialize a workload-tagged payload back into its spec class."""
    return workload_class(kind).from_dict(payload)
