"""Public facade: the canonical :class:`RunSpec` API.

The one import new code needs for spec-driven simulation::

    from repro.api import RunSpec, run_spec

    metrics = run_spec(RunSpec("zero2", size_billions=1.4))

``RunSpec`` consolidates :func:`repro.core.runner.run_training`'s
keyword sprawl into one frozen, JSON-round-trippable value with a
documented stable :meth:`~repro.api.spec.RunSpec.cache_key` — the hash
the campaign result cache (:mod:`repro.campaign`) is keyed on.

``RunSpec`` is one of two workload specs satisfying the
:class:`~repro.api.workload.Workload` protocol; the other is
:class:`repro.inference.InferenceSpec` (serving).  Code that wants to
stay workload-agnostic — campaigns, the cluster daemon, the CLI —
dispatches through :func:`workload_class`/:func:`spec_from_payload`
rather than importing concrete spec classes; see DESIGN.md
("Workloads & the spec API").
"""

from .build import (
    build_cluster,
    build_fault_plan,
    build_model,
    build_placement,
    build_retry_policy,
    build_strategy,
    build_tie_order,
    build_training,
    run_spec,
)
from .spec import (
    TIE_ORDERS,
    RunSpec,
    canonical_json,
    default_salt,
    stable_key,
)
from .workload import (
    WORKLOAD_KINDS,
    Workload,
    spec_from_payload,
    workload_class,
    workload_kind,
)

__all__ = [
    "RunSpec",
    "TIE_ORDERS",
    "WORKLOAD_KINDS",
    "Workload",
    "build_cluster",
    "build_fault_plan",
    "build_model",
    "build_placement",
    "build_retry_policy",
    "build_strategy",
    "build_tie_order",
    "build_training",
    "canonical_json",
    "default_salt",
    "run_spec",
    "spec_from_payload",
    "stable_key",
    "workload_class",
    "workload_kind",
]
