"""Public facade: the canonical :class:`RunSpec` API.

The one import new code needs for spec-driven simulation::

    from repro.api import RunSpec, run_spec

    metrics = run_spec(RunSpec("zero2", size_billions=1.4))

``RunSpec`` consolidates :func:`repro.core.runner.run_training`'s
keyword sprawl into one frozen, JSON-round-trippable value with a
documented stable :meth:`~repro.api.spec.RunSpec.cache_key` — the hash
the campaign result cache (:mod:`repro.campaign`) is keyed on.
``run_training`` itself remains supported as the object-level shim for
callers that already hold live ``Cluster``/strategy/model objects; see
DESIGN.md ("Campaigns & caching") for the deprecation path.
"""

from .build import (
    build_cluster,
    build_fault_plan,
    build_model,
    build_placement,
    build_retry_policy,
    build_strategy,
    build_tie_order,
    build_training,
    run_spec,
)
from .spec import (
    TIE_ORDERS,
    RunSpec,
    canonical_json,
    default_salt,
    stable_key,
)

__all__ = [
    "RunSpec",
    "TIE_ORDERS",
    "build_cluster",
    "build_fault_plan",
    "build_model",
    "build_placement",
    "build_retry_policy",
    "build_strategy",
    "build_tie_order",
    "build_training",
    "canonical_json",
    "default_salt",
    "run_spec",
    "stable_key",
]
