"""Fig. 7 — compute throughput at the largest achievable model size.

Each strategy trains its own maximum-size model (from the Fig. 6 search)
and reports DeepSpeed-Flops-Profiler-style TFLOP/s.  The paper's
headline shape: DDP fastest but tiny; Megatron-LM competitive on one
node but collapsing to ~25 % of ZeRO's throughput on two.
"""

from __future__ import annotations

from ..core.runner import run_training
from ..core.search import max_model_size
from ..model.config import paper_model
from ..telemetry.report import format_table
from . import paper_data
from .common import CORE_STRATEGIES, ExperimentResult, ExperimentSpec, cluster_for


def run(spec: ExperimentSpec | None = None) -> ExperimentResult:
    spec = spec or ExperimentSpec.quick("fig7")
    rows = []
    for num_nodes, paper in ((1, paper_data.THROUGHPUT_SINGLE_NODE),
                             (2, paper_data.THROUGHPUT_DUAL_NODE)):
        cluster = cluster_for(num_nodes)
        for name, factory in CORE_STRATEGIES.items():
            strategy = factory()
            search = max_model_size(cluster, strategy)
            model = paper_model(search.max_layers)
            metrics = run_training(cluster, strategy, model,
                                   iterations=spec.iterations)
            rows.append({
                "nodes": num_nodes,
                "strategy": name,
                "model_b": search.billions,
                "tflops": metrics.tflops,
                "paper_tflops": paper[name],
                "iteration_s": metrics.iteration_time,
            })
    rendered = format_table(
        ["nodes", "strategy", "model (B)", "TFLOP/s", "paper", "iter (s)"],
        [[r["nodes"], r["strategy"], r["model_b"], r["tflops"],
          r["paper_tflops"], r["iteration_s"]] for r in rows],
        title="Fig. 7 — compute throughput at max model size",
    )
    return ExperimentResult("fig7", "compute throughput", rows, rendered)
