"""Ablation — SerDes crossbar contention on/off.

The paper's central hypothesis (Section III-C4) is that EPYC IOD
SerDes-to-SerDes forwarding halves attained bandwidth.  Disabling the
contention model should (a) lift the cross-socket stress-test numbers to
near-theoretical and (b) recover a large share of dual-node Megatron-LM's
lost throughput — demonstrating how much of the paper's dual-node story
this single mechanism carries.
"""

from __future__ import annotations

from ..core.runner import run_training
from ..core.search import max_model_size
from ..hardware.presets import dual_node_cluster, uncontended_cluster
from ..model.config import paper_model
from ..parallel import MegatronStrategy, zero3
from ..stress.bandwidth_test import TestKind, run_stress_test
from ..stress.perftest import SocketPlacement
from ..telemetry.report import format_table
from .common import ExperimentResult, ExperimentSpec


def run(spec: ExperimentSpec | None = None) -> ExperimentResult:
    spec = spec or ExperimentSpec.quick("ablation_serdes")
    iterations = spec.iterations
    rows = []
    for contended in (True, False):
        make = dual_node_cluster if contended else uncontended_cluster
        # Stress test: cross-socket GPU-RoCE attained fraction.
        stress = run_stress_test(make(), TestKind.GPU_ROCE,
                                 SocketPlacement.CROSS_SOCKET,
                                 duration=spec.duration_s)
        # Training: dual-node Megatron-LM and ZeRO-3 at max size.
        for factory in (MegatronStrategy, zero3):
            cluster = make()
            strategy = factory()
            search = max_model_size(cluster, strategy)
            metrics = run_training(cluster, strategy,
                                   paper_model(search.max_layers),
                                   iterations=iterations)
            rows.append({
                "contention": contended,
                "strategy": strategy.name,
                "tflops": metrics.tflops,
                "stress_fraction": stress.attained_fraction(),
            })
    rendered = format_table(
        ["contention", "strategy", "TFLOP/s", "cross-socket GPU-RoCE %"],
        [[r["contention"], r["strategy"], r["tflops"],
          100 * r["stress_fraction"]] for r in rows],
        title="Ablation — SerDes contention model on/off (dual node)",
    )
    return ExperimentResult("ablation_serdes", "SerDes contention ablation",
                            rows, rendered)
