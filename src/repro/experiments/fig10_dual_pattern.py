"""Fig. 10 — NVLink / PCIe-GPU / PCIe-NIC / RoCE patterns, dual-node.

Simulates steady-state dual-node training per strategy at its own
maximum model size (as the paper does) and renders the four interconnect
series.  The signature shapes: Megatron-LM's solid constant utilization
across the whole window (the SerDes-hostile pattern) vs. ZeRO's
peak-and-trough bursts.
"""

from __future__ import annotations

from ..core.runner import run_training
from ..core.search import max_model_size
from ..hardware.link import LinkClass
from ..model.config import paper_model
from ..telemetry.bandwidth import BandwidthMonitor
from ..telemetry.report import series_block
from . import paper_data
from .common import CORE_STRATEGIES, ExperimentResult, ExperimentSpec, cluster_for

PATTERN_CLASSES = (LinkClass.NVLINK, LinkClass.PCIE_GPU,
                   LinkClass.PCIE_NIC, LinkClass.ROCE)

QUICK_SPEC = ExperimentSpec.quick("fig10", iterations=3)
FULL_SPEC = ExperimentSpec.full("fig10", iterations=8)


def run(spec: ExperimentSpec | None = None) -> ExperimentResult:
    spec = spec or QUICK_SPEC
    rows = []
    blocks = ["Fig. 10 — dual-node interconnect patterns (max model size)"]
    iterations = spec.iterations
    for name, factory in CORE_STRATEGIES.items():
        cluster = cluster_for(2)
        strategy = factory()
        search = max_model_size(cluster, strategy)
        metrics = run_training(cluster, strategy,
                               paper_model(search.max_layers),
                               iterations=iterations)
        monitor = BandwidthMonitor(cluster)
        start, end = metrics.measurement_window
        blocks.append(f"--- {strategy.display_name} "
                      f"({search.billions:.1f} B, "
                      f"iter {metrics.iteration_time:.2f} s)")
        row = {"strategy": name, "model_b": search.billions}
        for cls in PATTERN_CLASSES:
            series = monitor.series(cls, start, end)
            stats = metrics.bandwidth[cls]
            row[f"{cls.value}_avg_gbps"] = stats.average_gbps
            row[f"{cls.value}_peak_gbps"] = stats.peak_gbps
            paper_avg = paper_data.DUAL_NODE_BANDWIDTH_AVG[name].get(cls.value)
            row[f"{cls.value}_paper_avg_gbps"] = paper_avg
            blocks.append(series_block(cls.value, series))
        rows.append(row)
    return ExperimentResult("fig10", "dual-node interconnect patterns",
                            rows, "\n".join(blocks))
