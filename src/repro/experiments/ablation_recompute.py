"""Ablation — activation recomputation on/off.

The paper's training scripts checkpoint activations (standard for this
model scale); this ablation quantifies both sides of that choice on the
simulator: without recomputation the per-iteration FLOPs drop by ~25 %
(no second forward) but the activation footprint explodes, collapsing
the achievable model size — the reason DDP is stuck at 1.4 B while the
model-parallel strategies reach 5-7 B.
"""

from __future__ import annotations

from typing import List

from ..core.runner import run_training
from ..core.search import max_model_size, model_for_billions
from ..errors import OutOfMemoryError
from ..model.config import TrainingConfig
from ..parallel import DdpStrategy, zero2, zero3
from ..telemetry.report import format_table
from .common import ExperimentResult, ExperimentSpec, cluster_for


def run(spec: ExperimentSpec | None = None) -> ExperimentResult:
    spec = spec or ExperimentSpec.quick("ablation_recompute")
    iterations = spec.iterations
    rows: List[dict] = []
    for recompute in (True, False):
        training = TrainingConfig(activation_recompute=recompute)
        for factory in (DdpStrategy, zero2, zero3):
            cluster = cluster_for(1)
            strategy = factory()
            search = max_model_size(cluster, strategy, training=training)
            try:
                metrics = run_training(cluster, strategy,
                                       model_for_billions(0.7),
                                       training=training,
                                       iterations=iterations)
                tflops = metrics.tflops
                iteration_s = metrics.iteration_time
            except OutOfMemoryError:
                tflops, iteration_s = None, None
            rows.append({
                "recompute": recompute,
                "strategy": strategy.name,
                "max_model_b": search.billions,
                "tflops_at_0p7b": tflops,
                "iteration_s_at_0p7b": iteration_s,
            })
    rendered = format_table(
        ["recompute", "strategy", "max model (B)", "TFLOP/s @0.7B",
         "iter (s)"],
        [[r["recompute"], r["strategy"], r["max_model_b"],
          r["tflops_at_0p7b"] or "OOM", r["iteration_s_at_0p7b"] or "-"]
         for r in rows],
        title="Ablation — activation recomputation on/off (single node)",
    )
    return ExperimentResult("ablation_recompute",
                            "activation recomputation ablation",
                            rows, rendered)
