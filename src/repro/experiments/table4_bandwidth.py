"""Table IV — average / 90th-percentile / peak bandwidth per interconnect.

Reproduces the paper's central measurement table: for every training
configuration (five core strategies on one and two nodes, the CPU-offload
consolidations, and the 1x/2x NVMe ZeRO-Infinity runs), the aggregate
bidirectional per-node bandwidth statistics for DRAM, xGMI, PCIe-GPU,
PCIe-NVME, PCIe-NIC, NVLink, and RoCE.
"""

from __future__ import annotations

from typing import List

from ..core.runner import run_training
from ..core.search import max_model_size, model_for_billions
from ..model.config import paper_model
from ..parallel.placement import PLACEMENTS
from ..telemetry.report import BANDWIDTH_HEADERS, bandwidth_row, format_table
from . import paper_data
from .common import (
    ALL_STRATEGIES,
    CORE_STRATEGIES,
    ExperimentResult,
    ExperimentSpec,
    cluster_for,
    placement_cluster,
)


def run(spec: ExperimentSpec | None = None) -> ExperimentResult:
    spec = spec or ExperimentSpec.quick("table4")
    iterations = spec.iterations
    rows: List[dict] = []
    consolidation_model = model_for_billions(paper_data.CONSOLIDATION_MODEL_B)

    # Sections IV-E1 / IV-E2: core strategies at their max size.
    for num_nodes in (1, 2):
        for name, factory in CORE_STRATEGIES.items():
            cluster = cluster_for(num_nodes)
            strategy = factory()
            search = max_model_size(cluster, strategy)
            metrics = run_training(cluster, strategy,
                                   paper_model(search.max_layers),
                                   iterations=iterations)
            rows.append(_row(f"{name}@{num_nodes}n", name, num_nodes,
                             metrics))

    # Section V-A: CPU-offload consolidation at 11.4 B.
    for name in ("zero2_opt_cpu", "zero3_opt_cpu_param_cpu"):
        cluster = cluster_for(1)
        metrics = run_training(cluster, ALL_STRATEGIES[name](),
                               consolidation_model, iterations=iterations)
        rows.append(_row(f"{name}@1n", name, 1, metrics))

    # Section V-B: ZeRO-Infinity with 1x and 2x NVMe at 11.4 B.
    for placement_key, suffix in (("A", "1x"), ("B", "2x")):
        placement = PLACEMENTS[placement_key]
        for name in ("zero3_opt_nvme", "zero3_opt_nvme_param_nvme"):
            cluster = placement_cluster(placement)
            metrics = run_training(cluster, ALL_STRATEGIES[name](),
                                   consolidation_model,
                                   iterations=iterations,
                                   placement=placement)
            rows.append(_row(f"{name}@{suffix}", name, 1, metrics))

    rendered = format_table(
        ["configuration"] + BANDWIDTH_HEADERS,
        [[r["configuration"]] + r["bandwidth_row"] for r in rows],
        title="Table IV — bandwidth utilization (aggregate bidirectional "
              "per node, GB/s)",
    )
    return ExperimentResult("table4", "bandwidth utilization table",
                            rows, rendered)


def _row(label: str, strategy: str, num_nodes: int, metrics) -> dict:
    flat = bandwidth_row(metrics.bandwidth)
    row = {
        "configuration": label,
        "strategy": strategy,
        "nodes": num_nodes,
        "bandwidth_row": flat,
        "tflops": metrics.tflops,
    }
    for cls, stats in metrics.bandwidth.items():
        row[f"{cls.value}_avg_gbps"] = stats.average_gbps
        row[f"{cls.value}_p90_gbps"] = stats.p90_gbps
        row[f"{cls.value}_peak_gbps"] = stats.peak_gbps
    return row
