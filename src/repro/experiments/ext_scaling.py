"""Extension — scaling beyond two nodes.

The paper's conclusion gestures at "hundreds or thousands of GPUs"; its
cluster stops at two nodes.  The simulator does not: this experiment
sweeps 1-8 XE8545 nodes (4-32 GPUs) at a fixed per-GPU model shard and
reports how each strategy's throughput scales — extrapolating the
paper's central finding that inter-node bandwidth, not compute, sets the
ceiling for communication-heavy strategies.
"""

from __future__ import annotations

from ..core.runner import run_training
from ..core.search import model_for_billions
from ..hardware.cluster import Cluster, ClusterSpec
from ..parallel import DdpStrategy, MegatronStrategy, zero2, zero3
from ..telemetry.report import format_table
from .common import ExperimentResult, ExperimentSpec

#: DDP's single-node ceiling: every strategy can train this everywhere.
SWEEP_MODEL_B = 1.4


def run(spec: ExperimentSpec | None = None) -> ExperimentResult:
    spec = spec or ExperimentSpec.quick("ext_scaling")
    iterations = spec.iterations
    node_counts = (1, 2, 4, 8) if spec.full_sweep else (1, 2, 4)
    model = model_for_billions(SWEEP_MODEL_B)
    rows = []
    for num_nodes in node_counts:
        for factory in (DdpStrategy, MegatronStrategy, zero2, zero3):
            cluster = Cluster(ClusterSpec(num_nodes=num_nodes))
            strategy = factory()
            metrics = run_training(cluster, strategy, model,
                                   iterations=iterations)
            rows.append({
                "nodes": num_nodes,
                "gpus": cluster.num_gpus,
                "strategy": strategy.name,
                "tflops": metrics.tflops,
                "per_gpu_tflops": metrics.tflops / cluster.num_gpus,
            })
    # Scaling efficiency relative to one node.
    base = {r["strategy"]: r["tflops"] for r in rows if r["nodes"] == 1}
    for row in rows:
        ideal = base[row["strategy"]] * row["nodes"]
        row["scaling_efficiency"] = row["tflops"] / ideal
    rendered = format_table(
        ["nodes", "GPUs", "strategy", "TFLOP/s", "per-GPU", "scaling eff."],
        [[r["nodes"], r["gpus"], r["strategy"], r["tflops"],
          r["per_gpu_tflops"], r["scaling_efficiency"]] for r in rows],
        title=f"Extension — multi-node scaling at {SWEEP_MODEL_B} B",
    )
    return ExperimentResult("ext_scaling", "multi-node scaling extension",
                            rows, rendered)
