"""Shared plumbing for the per-figure/table experiment modules.

Every experiment exposes ``run(quick=...) -> ExperimentResult`` with
structured rows plus an ASCII rendering; the benchmark harness executes
them and the EXPERIMENTS.md generator compares their rows against
:mod:`repro.experiments.paper_data`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from ..hardware.cluster import Cluster, ClusterSpec
from ..hardware.presets import dual_node_cluster, single_node_cluster
from ..parallel.placement import PlacementConfig
from ..parallel import (
    DdpStrategy,
    MegatronStrategy,
    zero1,
    zero1_cpu_offload,
    zero2,
    zero2_cpu_offload,
    zero3,
    zero3_cpu_param_offload,
    zero3_nvme_optimizer,
    zero3_nvme_optimizer_params,
)
from ..parallel.strategy import TrainingStrategy


@dataclass
class ExperimentResult:
    """Output of one experiment module."""

    experiment_id: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    rendered: str = ""

    def row_by(self, **match: object) -> Dict[str, object]:
        """The first row whose items all equal ``match`` (test helper)."""
        for row in self.rows:
            if all(row.get(k) == v for k, v in match.items()):
                return row
        raise KeyError(f"no row matching {match}")


#: Factories for the five core strategies of Section IV, in paper order.
CORE_STRATEGIES: Dict[str, Callable[[], TrainingStrategy]] = {
    "ddp": DdpStrategy,
    "megatron": MegatronStrategy,
    "zero1": zero1,
    "zero2": zero2,
    "zero3": zero3,
}

#: Offload strategies of Section V.
OFFLOAD_STRATEGIES: Dict[str, Callable[[], TrainingStrategy]] = {
    "zero1_opt_cpu": zero1_cpu_offload,
    "zero2_opt_cpu": zero2_cpu_offload,
    "zero3_opt_cpu_param_cpu": zero3_cpu_param_offload,
    "zero3_opt_nvme": zero3_nvme_optimizer,
    "zero3_opt_nvme_param_nvme": zero3_nvme_optimizer_params,
}

ALL_STRATEGIES: Dict[str, Callable[[], TrainingStrategy]] = {
    **CORE_STRATEGIES, **OFFLOAD_STRATEGIES,
}


def make_strategy(name: str) -> TrainingStrategy:
    return ALL_STRATEGIES[name]()


def cluster_for(num_nodes: int) -> Cluster:
    return single_node_cluster() if num_nodes == 1 else dual_node_cluster()


def placement_cluster(placement: PlacementConfig,
                      num_nodes: int = 1) -> Cluster:
    """A cluster wired with a Fig. 14 NVMe placement's node spec."""
    return Cluster(ClusterSpec(num_nodes=num_nodes,
                               node=placement.node_spec()))


def iterations_for(quick: bool) -> int:
    """Simulated optimizer steps per configuration.

    The paper runs 10 iterations and measures from the fifth; the
    simulator is deterministic at steady state, so ``quick`` mode uses
    the minimum that still discards one warmup iteration.
    """
    return 3 if quick else 10
