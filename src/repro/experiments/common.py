"""Shared plumbing for the per-figure/table experiment modules.

Every experiment exposes the uniform parameterized entry point
``run(spec: ExperimentSpec | None) -> ExperimentResult`` with structured
rows plus an ASCII rendering; the benchmark harness executes them and
the EXPERIMENTS.md generator compares their rows against
:mod:`repro.experiments.paper_data`.

:class:`ExperimentSpec` makes the old per-module ``quick`` conventions
explicit, serializable fields (simulated iterations, stress duration,
sweep extent), so the registry's ``run_experiment`` and the campaign
runner (:mod:`repro.campaign`) share one code path and experiment
results can be cache-keyed exactly like :class:`~repro.api.RunSpec`
runs.  Modules with non-default profiles pin them as ``QUICK_SPEC`` /
``FULL_SPEC`` constants next to their ``run``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Callable, Dict, List, Mapping, Optional

from ..api.spec import stable_key
from ..errors import ConfigurationError
from ..hardware.cluster import Cluster, ClusterSpec
from ..hardware.presets import dual_node_cluster, single_node_cluster
from ..parallel.placement import PlacementConfig
from ..parallel import (
    DdpStrategy,
    MegatronStrategy,
    zero1,
    zero1_cpu_offload,
    zero2,
    zero2_cpu_offload,
    zero3,
    zero3_cpu_param_offload,
    zero3_nvme_optimizer,
    zero3_nvme_optimizer_params,
)
from ..parallel.strategy import TrainingStrategy


@dataclass(frozen=True)
class ExperimentSpec:
    """Canonical parameters of one experiment-module invocation.

    The experiment analog of :class:`~repro.api.RunSpec`: every knob the
    old ``quick=True/False`` convention used to imply, as explicit
    serializable fields.  ``iterations`` is the simulated optimizer
    steps per configuration, ``duration_s`` the stress-test window, and
    ``full_sweep`` selects the paper-length sweep extents (message
    sizes, node counts, loss grids) over the CI-sized ones.
    """

    experiment_id: str
    iterations: int = 3
    warmup_iterations: int = 1
    duration_s: float = 2.0
    full_sweep: bool = False
    #: simulation fidelity for every training run the module performs
    #: ("full" or "hybrid"; see :mod:`repro.sim.fastpath`).  Part of the
    #: cache key, so hybrid results can never shadow full ones.
    fidelity: str = "full"

    def __post_init__(self) -> None:
        from ..sim.fastpath import validate_fidelity

        if not self.experiment_id:
            raise ConfigurationError("ExperimentSpec needs an experiment id")
        if self.iterations <= self.warmup_iterations:
            raise ConfigurationError(
                "need more iterations than warmup iterations"
            )
        if self.duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        validate_fidelity(self.fidelity)

    @classmethod
    def quick(cls, experiment_id: str, **overrides: object
              ) -> "ExperimentSpec":
        """The CI-sized profile (the old ``quick=True``)."""
        return cls(experiment_id, **overrides)  # type: ignore[arg-type]

    @classmethod
    def full(cls, experiment_id: str, **overrides: object
             ) -> "ExperimentSpec":
        """The paper-length profile (the old ``quick=False``)."""
        profile: Dict[str, object] = {
            "iterations": 10, "duration_s": 10.0, "full_sweep": True,
        }
        profile.update(overrides)
        return cls(experiment_id, **profile)  # type: ignore[arg-type]

    def to_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ExperimentSpec":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown ExperimentSpec fields {unknown}; "
                f"known: {sorted(known)}"
            )
        if "experiment_id" not in payload:
            raise ConfigurationError(
                "ExperimentSpec payload needs an experiment_id"
            )
        return cls(**dict(payload))  # type: ignore[arg-type]

    def cache_key(self, *, salt: Optional[str] = None) -> str:
        """Stable content hash (same contract as ``RunSpec.cache_key``)."""
        return stable_key({"kind": "experiment", "spec": self.to_dict()},
                          salt=salt)

    def for_experiment(self, experiment_id: str) -> "ExperimentSpec":
        """The same profile pointed at another experiment (delegation)."""
        return replace(self, experiment_id=experiment_id)


@dataclass
class ExperimentResult:
    """Output of one experiment module."""

    experiment_id: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    rendered: str = ""

    def row_by(self, **match: object) -> Dict[str, object]:
        """The first row whose items all equal ``match`` (test helper)."""
        for row in self.rows:
            if all(row.get(k) == v for k, v in match.items()):
                return row
        raise KeyError(f"no row matching {match}")


#: Factories for the five core strategies of Section IV, in paper order.
CORE_STRATEGIES: Dict[str, Callable[[], TrainingStrategy]] = {
    "ddp": DdpStrategy,
    "megatron": MegatronStrategy,
    "zero1": zero1,
    "zero2": zero2,
    "zero3": zero3,
}

#: Offload strategies of Section V.
OFFLOAD_STRATEGIES: Dict[str, Callable[[], TrainingStrategy]] = {
    "zero1_opt_cpu": zero1_cpu_offload,
    "zero2_opt_cpu": zero2_cpu_offload,
    "zero3_opt_cpu_param_cpu": zero3_cpu_param_offload,
    "zero3_opt_nvme": zero3_nvme_optimizer,
    "zero3_opt_nvme_param_nvme": zero3_nvme_optimizer_params,
}

ALL_STRATEGIES: Dict[str, Callable[[], TrainingStrategy]] = {
    **CORE_STRATEGIES, **OFFLOAD_STRATEGIES,
}


def make_strategy(name: str) -> TrainingStrategy:
    return ALL_STRATEGIES[name]()


def cluster_for(num_nodes: int) -> Cluster:
    return single_node_cluster() if num_nodes == 1 else dual_node_cluster()


def placement_cluster(placement: PlacementConfig,
                      num_nodes: int = 1) -> Cluster:
    """A cluster wired with a Fig. 14 NVMe placement's node spec."""
    return Cluster(ClusterSpec(num_nodes=num_nodes,
                               node=placement.node_spec()))
