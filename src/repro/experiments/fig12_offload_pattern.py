"""Fig. 12 — bandwidth patterns under CPU and NVMe offload.

Renders NVLink / PCIe-GPU / PCIe-NVME / xGMI / DRAM utilization series
for the offload configurations at 11.4 B parameters.  The shapes to
reproduce: heavy DRAM peak-and-trough with CPU offload (optimizer
streaming), and the PCIe-NVME bursts with near-idle gaps for
ZeRO-Infinity.
"""

from __future__ import annotations

from ..core.runner import run_training
from ..core.search import model_for_billions
from ..hardware.link import LinkClass
from ..parallel.placement import PLACEMENTS
from ..telemetry.bandwidth import BandwidthMonitor
from ..telemetry.report import series_block
from . import paper_data
from .common import (
    ALL_STRATEGIES,
    ExperimentResult,
    ExperimentSpec,
    cluster_for,
    placement_cluster,
)

PATTERN_CLASSES = (LinkClass.NVLINK, LinkClass.PCIE_GPU,
                   LinkClass.PCIE_NVME, LinkClass.XGMI, LinkClass.DRAM)

CONFIGS = ("zero2_opt_cpu", "zero3_opt_cpu_param_cpu",
           "zero3_opt_nvme", "zero3_opt_nvme_param_nvme")


def run(spec: ExperimentSpec | None = None) -> ExperimentResult:
    spec = spec or ExperimentSpec.quick("fig12")
    model = model_for_billions(paper_data.CONSOLIDATION_MODEL_B)
    iterations = spec.iterations
    placement = PLACEMENTS["B"]
    rows = []
    blocks = ["Fig. 12 — offload bandwidth patterns (11.4 B, single node)"]
    for name in CONFIGS:
        if "nvme" in name:
            cluster = placement_cluster(placement)
        else:
            cluster = cluster_for(1)
        metrics = run_training(cluster, ALL_STRATEGIES[name](), model,
                               iterations=iterations, placement=placement)
        monitor = BandwidthMonitor(cluster)
        start, end = metrics.measurement_window
        blocks.append(f"--- {name} (iter {metrics.iteration_time:.2f} s)")
        row = {"config": name, "iteration_s": metrics.iteration_time}
        for cls in PATTERN_CLASSES:
            series = monitor.series(cls, start, end)
            stats = metrics.bandwidth[cls]
            row[f"{cls.value}_avg_gbps"] = stats.average_gbps
            row[f"{cls.value}_peak_gbps"] = stats.peak_gbps
            blocks.append(series_block(cls.value, series))
        rows.append(row)
    return ExperimentResult("fig12", "offload bandwidth patterns",
                            rows, "\n".join(blocks))
