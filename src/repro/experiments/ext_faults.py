"""Extension — graceful degradation under injected fabric faults.

The paper characterizes DeepSpeed on *healthy* hardware; real clusters
spend a measurable fraction of their life partially degraded (throttled
links, flapping transceivers, slow drives).  This experiment sweeps
injected RoCE capacity loss on the dual-node cluster and reports, per
strategy, how gracefully throughput degrades: communication-heavy
strategies (ZeRO-3, which all-gathers parameters every step) should fall
off faster than DDP's single bucketed all-reduce — the fault-domain
corollary of the paper's central bandwidth-sensitivity finding.

Every fault is a seeded :class:`~repro.faults.plan.FaultPlan`, so rows
are bit-reproducible run to run.
"""

from __future__ import annotations

from ..core.runner import run_training
from ..core.search import model_for_billions
from ..faults import FaultEvent, FaultKind, FaultPlan
from ..telemetry.report import format_table
from .common import ExperimentResult, ExperimentSpec, cluster_for, make_strategy

#: Fits every swept strategy on the dual-node cluster (DDP's ceiling).
SWEEP_MODEL_B = 1.4

#: Injected RoCE capacity-loss fractions.  The degrade targets the
#: switch, so every node's inter-node ports shrink together — the
#: oversubscribed-fabric scenario.
QUICK_LOSSES = (0.0, 0.5, 0.9)
FULL_LOSSES = (0.0, 0.25, 0.5, 0.75, 0.9)

QUICK_STRATEGIES = ("ddp", "zero1", "zero2", "zero3")
FULL_STRATEGIES = ("ddp", "megatron", "zero1", "zero2", "zero3")

#: Long enough to cover any swept run end to end.
FAULT_WINDOW_S = 1000.0


def fabric_loss_plan(loss: float, *, seed: int = 0) -> FaultPlan:
    """A plan degrading the whole inter-node fabric by ``loss``."""
    events = []
    if loss > 0.0:
        events.append(FaultEvent(
            target="switch0", kind=FaultKind.LINK_DEGRADE,
            start=0.0, duration=FAULT_WINDOW_S, magnitude=loss,
        ))
    return FaultPlan(events=events, seed=seed)


def run(spec: ExperimentSpec | None = None) -> ExperimentResult:
    spec = spec or ExperimentSpec.quick("ext_faults")
    iterations = spec.iterations
    losses = FULL_LOSSES if spec.full_sweep else QUICK_LOSSES
    strategies = FULL_STRATEGIES if spec.full_sweep else QUICK_STRATEGIES
    model = model_for_billions(SWEEP_MODEL_B)
    rows = []
    for name in strategies:
        for loss in losses:
            cluster = cluster_for(2)
            metrics = run_training(
                cluster, make_strategy(name), model,
                iterations=iterations,
                fault_plan=fabric_loss_plan(loss),
            )
            rows.append({
                "strategy": name,
                "roce_loss": loss,
                "tflops": metrics.tflops,
                "iteration_s": metrics.iteration_time,
            })
    # Degradation curve: slowdown relative to the same strategy unfaulted.
    healthy = {
        r["strategy"]: r["iteration_s"] for r in rows if r["roce_loss"] == 0.0
    }
    for row in rows:
        row["slowdown"] = row["iteration_s"] / healthy[row["strategy"]]
        row["throughput_retained"] = 1.0 / row["slowdown"]
    rendered = format_table(
        ["strategy", "RoCE loss", "TFLOP/s", "iter (s)", "slowdown",
         "retained"],
        [[r["strategy"], r["roce_loss"], r["tflops"], r["iteration_s"],
          r["slowdown"], r["throughput_retained"]] for r in rows],
        title=f"Extension — degradation under fabric faults at {SWEEP_MODEL_B} B",
    )
    return ExperimentResult("ext_faults", "graceful degradation extension",
                            rows, rendered)
