"""Experiment registry: every paper table/figure plus the ablations.

``EXPERIMENTS`` maps an experiment id to its module's ``run`` callable;
:func:`run_experiment` executes one by id, and :func:`run_all` drives the
full reproduction (as the `examples/reproduce_paper.py` script does).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List

from ..errors import ConfigurationError
from . import (
    ablation_buffers,
    ablation_nvme,
    ablation_overlap,
    ablation_recompute,
    ablation_serdes,
    ext_batch,
    ext_energy,
    ext_faults,
    ext_gpu80,
    ext_hybrid,
    ext_pipeline,
    ext_scaling,
    fig01_trend,
    fig03_latency,
    fig04_stress,
    fig05_timeline,
    fig06_model_size,
    fig07_throughput,
    fig08_tradeoff,
    fig09_nvlink_pattern,
    fig10_dual_pattern,
    fig11_offload,
    fig12_offload_pattern,
    fig13_largest,
    fig14_table6_nvme,
    table1_capability,
    table3_interconnects,
    table4_bandwidth,
    table5_sensitivity,
)
from .common import ExperimentResult

Runner = Callable[..., ExperimentResult]

EXPERIMENTS: Dict[str, Runner] = {
    "fig1": fig01_trend.run,
    "fig3": fig03_latency.run,
    "fig4": fig04_stress.run,
    "fig5": fig05_timeline.run,
    "fig6": fig06_model_size.run,
    "fig7": fig07_throughput.run,
    "fig8": fig08_tradeoff.run,
    "fig9": fig09_nvlink_pattern.run,
    "fig10": fig10_dual_pattern.run,
    "fig11": fig11_offload.run,
    "fig12": fig12_offload_pattern.run,
    "fig13": fig13_largest.run,
    "fig14_table6": fig14_table6_nvme.run,
    "table1": table1_capability.run,
    "table3": table3_interconnects.run,
    "table4": table4_bandwidth.run,
    "table5": table5_sensitivity.run,
    "ablation_serdes": ablation_serdes.run,
    "ext_hybrid": ext_hybrid.run,
    "ext_energy": ext_energy.run,
    "ext_scaling": ext_scaling.run,
    "ext_faults": ext_faults.run,
    "ext_pipeline": ext_pipeline.run,
    "ablation_overlap": ablation_overlap.run,
    "ablation_nvme": ablation_nvme.run,
    "ablation_buffers": ablation_buffers.run,
    "ablation_recompute": ablation_recompute.run,
    "ext_batch": ext_batch.run,
    "ext_gpu80": ext_gpu80.run,
}

#: ids in paper order, excluding ablations.
PAPER_EXPERIMENTS: List[str] = [
    "fig1", "table1", "table3", "fig3", "fig4", "fig5", "fig6", "fig7",
    "fig8", "fig9", "table4", "fig10", "fig11", "fig12", "fig13",
    "table5", "fig14_table6",
]


def run_experiment(experiment_id: str, *, quick: bool = True) -> ExperimentResult:
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(EXPERIMENTS)}"
        ) from None
    return runner(quick=quick)


def run_all(ids: Iterable[str] = None, *, quick: bool = True
            ) -> List[ExperimentResult]:
    selected = list(ids) if ids is not None else PAPER_EXPERIMENTS
    return [run_experiment(experiment_id, quick=quick)
            for experiment_id in selected]
