"""Experiment registry: every paper table/figure plus the ablations.

``EXPERIMENTS`` maps an experiment id to its module's ``run`` callable.
:func:`spec_for` materializes the canonical
:class:`~repro.experiments.common.ExperimentSpec` for an id (honouring
per-module ``QUICK_SPEC`` / ``FULL_SPEC`` overrides), :func:`run_spec`
executes one spec, and the campaign runner (:mod:`repro.campaign`)
drives whole sweeps of them through the result cache.

:func:`run_experiment` and :func:`run_all` remain as thin quick/full
shims over the spec path, so existing callers keep working unchanged.
"""

from __future__ import annotations

from types import ModuleType
from typing import Callable, Dict, Iterable, List, Optional

from ..errors import ConfigurationError
from . import (
    ablation_buffers,
    ablation_nvme,
    ablation_overlap,
    ablation_recompute,
    ablation_serdes,
    ext_batch,
    ext_energy,
    ext_faults,
    ext_gpu80,
    ext_hybrid,
    ext_pipeline,
    ext_scaling,
    fig01_trend,
    fig03_latency,
    fig04_stress,
    fig05_timeline,
    fig06_model_size,
    fig07_throughput,
    fig08_tradeoff,
    fig09_nvlink_pattern,
    fig10_dual_pattern,
    fig11_offload,
    fig12_offload_pattern,
    fig13_largest,
    fig14_table6_nvme,
    table1_capability,
    table3_interconnects,
    table4_bandwidth,
    table5_sensitivity,
)
from .common import ExperimentResult, ExperimentSpec

Runner = Callable[[Optional[ExperimentSpec]], ExperimentResult]

_MODULES: Dict[str, ModuleType] = {
    "fig1": fig01_trend,
    "fig3": fig03_latency,
    "fig4": fig04_stress,
    "fig5": fig05_timeline,
    "fig6": fig06_model_size,
    "fig7": fig07_throughput,
    "fig8": fig08_tradeoff,
    "fig9": fig09_nvlink_pattern,
    "fig10": fig10_dual_pattern,
    "fig11": fig11_offload,
    "fig12": fig12_offload_pattern,
    "fig13": fig13_largest,
    "fig14_table6": fig14_table6_nvme,
    "table1": table1_capability,
    "table3": table3_interconnects,
    "table4": table4_bandwidth,
    "table5": table5_sensitivity,
    "ablation_serdes": ablation_serdes,
    "ext_hybrid": ext_hybrid,
    "ext_energy": ext_energy,
    "ext_scaling": ext_scaling,
    "ext_faults": ext_faults,
    "ext_pipeline": ext_pipeline,
    "ablation_overlap": ablation_overlap,
    "ablation_nvme": ablation_nvme,
    "ablation_buffers": ablation_buffers,
    "ablation_recompute": ablation_recompute,
    "ext_batch": ext_batch,
    "ext_gpu80": ext_gpu80,
}

EXPERIMENTS: Dict[str, Runner] = {
    experiment_id: module.run for experiment_id, module in _MODULES.items()
}

#: ids in paper order, excluding ablations.
PAPER_EXPERIMENTS: List[str] = [
    "fig1", "table1", "table3", "fig3", "fig4", "fig5", "fig6", "fig7",
    "fig8", "fig9", "table4", "fig10", "fig11", "fig12", "fig13",
    "table5", "fig14_table6",
]


def _module_for(experiment_id: str) -> ModuleType:
    try:
        return _MODULES[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(_MODULES)}"
        ) from None


def spec_for(experiment_id: str, *, quick: bool = True) -> ExperimentSpec:
    """The canonical spec an id runs with in quick or full mode.

    Modules that deviate from the shared defaults pin ``QUICK_SPEC`` /
    ``FULL_SPEC`` constants next to their ``run``; everything else gets
    :meth:`ExperimentSpec.quick` / :meth:`ExperimentSpec.full`.
    """
    module = _module_for(experiment_id)
    pinned = getattr(module, "QUICK_SPEC" if quick else "FULL_SPEC", None)
    if pinned is not None:
        return pinned
    maker = ExperimentSpec.quick if quick else ExperimentSpec.full
    return maker(experiment_id)


def run_spec(spec: ExperimentSpec) -> ExperimentResult:
    """Execute one experiment spec (the campaign runner's entry point).

    A non-default ``spec.fidelity`` is installed as the ambient fidelity
    for the module's duration, so every ``run_training`` the module
    performs inherits it without the 29 modules growing a parameter.
    """
    module = _module_for(spec.experiment_id)
    if spec.fidelity != "full":
        from ..sim.fastpath import fidelity_override

        with fidelity_override(spec.fidelity):
            return module.run(spec)
    return module.run(spec)


def run_experiment(experiment_id: str, *, quick: bool = True) -> ExperimentResult:
    return run_spec(spec_for(experiment_id, quick=quick))


def run_all(ids: Iterable[str] = None, *, quick: bool = True
            ) -> List[ExperimentResult]:
    selected = list(ids) if ids is not None else PAPER_EXPERIMENTS
    return [run_experiment(experiment_id, quick=quick)
            for experiment_id in selected]
