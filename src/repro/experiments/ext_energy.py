"""Extension — energy per iteration and TFLOP-per-kilowatt.

The paper motivates the study with training cost and environmental
impact but never measures power.  This experiment attaches the
utilization-based power model (:mod:`repro.telemetry.energy`) to the
paper's configurations: single- vs dual-node training at maximum model
size, plus the CPU-offload consolidation — quantifying the intuition
that consolidating onto one node does not just raise throughput, it
roughly halves the energy bill for the same model.
"""

from __future__ import annotations

from ..core.runner import run_training
from ..core.search import max_model_size, model_for_billions
from ..model.config import paper_model
from ..parallel import MegatronStrategy, zero2, zero2_cpu_offload, zero3
from ..telemetry.energy import estimate_energy
from ..telemetry.report import format_table
from . import paper_data
from .common import ExperimentResult, ExperimentSpec, cluster_for


def run(spec: ExperimentSpec | None = None) -> ExperimentResult:
    spec = spec or ExperimentSpec.quick("ext_energy")
    iterations = spec.iterations
    rows = []

    cases = [
        ("zero2@1n", cluster_for(1), zero2(), None),
        ("zero3@2n", cluster_for(2), zero3(), None),
        ("megatron@2n", cluster_for(2), MegatronStrategy(), None),
        ("zero2_opt_cpu@1n", cluster_for(1), zero2_cpu_offload(),
         paper_data.CONSOLIDATION_MODEL_B),
    ]
    for label, cluster, strategy, size_b in cases:
        if size_b is None:
            search = max_model_size(cluster, strategy)
            model = paper_model(search.max_layers)
        else:
            model = model_for_billions(size_b)
        metrics = run_training(cluster, strategy, model,
                               iterations=iterations)
        report = estimate_energy(cluster, metrics.execution.timeline,
                                 metrics.measurement_window)
        rows.append({
            "config": label,
            "model_b": metrics.billions_of_parameters,
            "tflops": metrics.tflops,
            "avg_power_kw": report.average_power_watts / 1e3,
            "energy_per_iteration_kj":
                report.energy_per_iteration(metrics.iteration_time) / 1e3,
            "tflops_per_kw": report.tflops_per_kilowatt(metrics.tflops),
            "gpu_power_share": (report.by_component["gpu"]
                                / report.average_power_watts),
        })
    rendered = format_table(
        ["config", "model (B)", "TFLOP/s", "avg kW", "kJ/iter",
         "TFLOP/s per kW"],
        [[r["config"], r["model_b"], r["tflops"], r["avg_power_kw"],
          r["energy_per_iteration_kj"], r["tflops_per_kw"]] for r in rows],
        title="Extension — energy accounting",
    )
    return ExperimentResult("ext_energy", "energy accounting extension",
                            rows, rendered)
