"""Published results from the paper, for side-by-side comparison.

Every experiment module prints its simulated result next to the value the
paper reports; EXPERIMENTS.md is generated from the same data.  Values
are transcribed from the paper's figures and tables (ISPASS 2024).
"""

from __future__ import annotations

from typing import Dict, Tuple

# --- Fig. 1: model size (B params) and GPU memory (GB) over time -----------
LLM_SIZE_TREND: Tuple[Tuple[int, str, float], ...] = (
    (2018, "ELMo", 0.094),
    (2018, "GPT-1", 0.117),
    (2018, "BERT-Large", 0.340),
    (2019, "GPT-2", 1.5),
    (2019, "Megatron-LM", 8.3),
    (2020, "T5-11B", 11.0),
    (2020, "GPT-3", 175.0),
    (2021, "Megatron-Turing NLG", 530.0),
    (2023, "GPT-4 (est.)", 1760.0),
)
GPU_MEMORY_TREND: Tuple[Tuple[int, str, float], ...] = (
    (2017, "Tesla V100", 16.0),
    (2018, "Tesla V100 32GB", 32.0),
    (2020, "A100 40GB", 40.0),
    (2020, "A100 80GB", 80.0),
    (2023, "H100 80GB", 80.0),
)

# --- Fig. 3: RoCE latency (us) for <64 kB messages -------------------------
ROCE_LATENCY_SAME_SOCKET_US = 6.0     # upper bound, small messages
ROCE_LATENCY_CROSS_SOCKET_US = 40.0   # ~7x same-socket

# --- Fig. 4: stress-test attained fraction of theoretical RoCE -------------
STRESS_ATTAINED_FRACTION: Dict[Tuple[str, str], float] = {
    ("cpu_roce", "same_socket"): 0.93,
    ("cpu_roce", "cross_socket"): 0.47,
    ("gpu_roce", "same_socket"): 0.52,
    ("gpu_roce", "cross_socket"): 0.42,
}

# --- Fig. 5: single-iteration time at 1.4 B parameters, single node --------
ITERATION_TIME_1P4B_S: Dict[str, float] = {
    "ddp": 0.471,
    "megatron": 0.736,
    "zero1": 0.412,
    "zero2": 0.404,
    "zero3": 0.696,
    "zero1_opt_cpu": 1.38,
    "zero2_opt_cpu": 1.22,
    "zero3_opt_nvme": 5.2,            # 2x NVMe optimizer offload
    "zero3_opt_nvme_param_nvme": 5.9,  # 2x NVMe optimizer + parameter
}

# --- Fig. 6: achieved model size (B parameters) ------------------------------
ACHIEVED_SIZE_SINGLE_NODE_B: Dict[str, float] = {
    "ddp": 1.4, "megatron": 5.5, "zero1": 4.4, "zero2": 5.2, "zero3": 6.6,
}
ACHIEVED_SIZE_DUAL_NODE_B: Dict[str, float] = {
    "ddp": 1.4, "megatron": 11.4, "zero1": 6.4, "zero2": 8.5, "zero3": 13.5,
}

# --- Fig. 7: throughput at max model size (TFLOP/s) ---------------------------
THROUGHPUT_SINGLE_NODE: Dict[str, float] = {
    "ddp": 438.0, "megatron": 331.0, "zero1": 391.0, "zero2": 524.0,
    "zero3": 381.0,
}
THROUGHPUT_DUAL_NODE: Dict[str, float] = {
    "ddp": 640.0, "megatron": 121.0, "zero1": 395.0, "zero2": 424.0,
    "zero3": 458.0,
}

# --- Fig. 9: single-node NVLink utilization (GB/s, avg and peak) --------------
NVLINK_SINGLE_NODE: Dict[str, Tuple[float, float]] = {
    "ddp": (83.0, 94.8),
    "megatron": (241.0, 267.0),
    "zero1": (111.0, 147.0),
    "zero2": (97.3, 117.0),
    "zero3": (99.7, 121.0),
}

# --- Table IV (subset): dual-node averages (GB/s) ------------------------------
DUAL_NODE_BANDWIDTH_AVG: Dict[str, Dict[str, float]] = {
    "ddp": {"NVLink": 60.2, "RoCE": 9.28, "PCIe-GPU": 11.2, "PCIe-NIC": 6.07,
            "xGMI": 5.22},
    "megatron": {"NVLink": 88.3, "RoCE": 13.8, "PCIe-GPU": 16.9,
                 "PCIe-NIC": 9.06, "xGMI": 7.29},
    "zero1": {"NVLink": 52.7, "RoCE": 10.5, "PCIe-GPU": 18.2,
              "PCIe-NIC": 6.64, "xGMI": 6.35},
    "zero2": {"NVLink": 34.3, "RoCE": 10.5, "PCIe-GPU": 15.8,
              "PCIe-NIC": 7.08, "xGMI": 6.11},
    "zero3": {"NVLink": 52.2, "RoCE": 16.3, "PCIe-GPU": 20.5,
              "PCIe-NIC": 10.9, "xGMI": 10.4},
}

# --- Fig. 11: consolidation of dual-node 11.4 B onto one node -----------------
CONSOLIDATION_THROUGHPUT: Dict[str, float] = {
    "megatron_dual": 121.0,
    "zero2_opt_cpu": 191.0,
    "zero3_opt_cpu_param_cpu": 126.0,
    "zero3_opt_nvme_1x": 20.4,
    "zero3_opt_nvme_param_nvme_1x": 15.8,
    "zero3_opt_nvme_2x": 38.1,
    "zero3_opt_nvme_param_nvme_2x": 24.5,
}
CONSOLIDATION_MEMORY_GB: Dict[str, Tuple[float, float, float]] = {
    # (GPU, CPU, NVMe) totals across the node(s)
    "megatron_dual": (308.0, 36.0, 0.0),
    "zero2_opt_cpu": (127.0, 353.0, 0.0),
    "zero3_opt_cpu_param_cpu": (157.0, 295.0, 0.0),
    "zero3_opt_nvme_1x": (108.0, 317.0, 129.0),
    "zero3_opt_nvme_param_nvme_1x": (52.0, 488.0, 150.0),
}

# --- Fig. 13: largest single-node model with offload ---------------------------
LARGEST_SINGLE_NODE: Dict[str, Tuple[float, float]] = {
    # strategy -> (model size B, throughput TFLOP/s)
    "zero1_opt_cpu": (8.9, 155.3),
    "zero2_opt_cpu": (14.2, 180.2),
    "zero3_opt_nvme_param_nvme": (33.3, 37.16),
}

# --- Table V: throughput (TFLOP/s) vs model size (B) ---------------------------
TABLE_V: Dict[str, Dict[float, float]] = {
    "ddp": {0.7: 379, 1.4: 438},
    "megatron": {0.7: 270, 1.4: 309, 2.9: 312, 4.4: 315, 5.2: 324, 5.5: 331},
    "zero1": {0.7: 419, 1.4: 461, 2.9: 487, 4.4: 391},
    "zero2": {0.7: 427, 1.4: 472, 2.9: 502, 4.4: 509, 5.2: 524},
    "zero3": {0.7: 377, 1.4: 392, 2.9: 385, 4.4: 389, 5.2: 379, 5.5: 385,
              6.0: 382, 6.6: 381},
    "zero1_opt_cpu": {0.7: 145, 1.4: 165, 2.9: 148, 4.4: 167, 5.2: 150,
                      5.5: 168, 6.0: 164, 6.6: 163, 7.8: 158, 8.9: 155},
    "zero2_opt_cpu": {0.7: 164, 1.4: 177, 2.9: 191, 4.4: 179, 5.2: 182,
                      5.5: 182, 6.0: 192, 6.6: 182, 7.8: 192, 8.9: 192,
                      11.6: 174, 14.2: 180},
    "zero3_opt_nvme": {0.7: 39, 1.4: 37, 2.9: 39, 4.4: 38, 5.2: 38, 5.5: 38,
                       6.0: 38, 6.6: 38, 7.8: 37, 8.9: 38, 11.6: 36,
                       14.2: 36, 20.6: 36, 26.9: 34, 33.3: 37},
}

# --- Table VI: NVMe placement configs at 33.3 B --------------------------------
TABLE_VI: Dict[str, Dict[str, float]] = {
    "A": {"tflops": 19.6, "xgmi_avg": 2.94, "pcie_nvme_avg": 3.23},
    "B": {"tflops": 37.16, "xgmi_avg": 7.63, "pcie_nvme_avg": 6.5},
    "C": {"tflops": 35.43, "xgmi_avg": 8.14, "pcie_nvme_avg": 6.18},
    "D": {"tflops": 40.22, "xgmi_avg": 4.89, "pcie_nvme_avg": 6.98},
    "E": {"tflops": 51.22, "xgmi_avg": 9.58, "pcie_nvme_avg": 7.1},
    "F": {"tflops": 64.61, "xgmi_avg": 7.35, "pcie_nvme_avg": 11.2},
    "G": {"tflops": 65.16, "xgmi_avg": 7.81, "pcie_nvme_avg": 11.4},
}

#: Model size used for the consolidation study (Sections V-A/V-B).
CONSOLIDATION_MODEL_B = 11.4
#: Model size used for the placement study (Section V-E).
PLACEMENT_MODEL_B = 33.3
