"""Fig. 3 — RoCE latency vs message size (SEND / RDMA READ / RDMA WRITE).

Sweeps 2 B - 8 MB message sizes for the same-socket and cross-socket
placements and checks the paper's two bounds: <6 us same-socket and
<40 us (~7x) cross-socket for messages under 64 kB.
"""

from __future__ import annotations

from ..hardware.presets import dual_node_cluster
from ..stress.perftest import MESSAGE_SIZES, SocketPlacement, Verb, latency_sweep
from ..telemetry.report import format_table
from .common import ExperimentResult, ExperimentSpec


def run(spec: ExperimentSpec | None = None) -> ExperimentResult:
    spec = spec or ExperimentSpec.quick("fig3")
    cluster = dual_node_cluster()
    sizes = MESSAGE_SIZES if spec.full_sweep else MESSAGE_SIZES[::4]
    sweep = latency_sweep(cluster, sizes)
    rows = []
    for (verb, placement), samples in sweep.items():
        for sample in samples:
            rows.append({
                "verb": verb.value,
                "placement": placement.value,
                "message_bytes": sample.message_bytes,
                "latency_us": sample.latency_us,
            })
    table_rows = []
    for verb in Verb:
        for placement in SocketPlacement:
            small = [r for r in rows
                     if r["verb"] == verb.value
                     and r["placement"] == placement.value
                     and r["message_bytes"] <= 64 * 1024]
            worst = max(r["latency_us"] for r in small)
            table_rows.append([verb.value, placement.value, f"{worst:.1f}"])
    rendered = format_table(
        ["verb", "placement", "max latency <=64kB (us)"],
        table_rows,
        title="Fig. 3 — RoCE latency (paper: same-socket <6us, cross <40us)",
    )
    return ExperimentResult("fig3", "RoCE latency vs message size",
                            rows, rendered)
