"""Ablations — NVMe DRAM-cache size and media bandwidth sensitivity.

Two design-choice studies around the ZeRO-Infinity bottleneck the paper
highlights (Sections V-B3 and V-E):

* cache sweep — how the drive's DRAM write-cache size shapes burst
  absorption (the microbenchmark analog of Fig. 12's abrupt peaks);
* media sweep — throughput of the 11.4 B ZeRO-Infinity run as a function
  of NAND bandwidth, demonstrating the paper's "aggregate NVMe bandwidth
  is what matters" conclusion without adding drives.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from ..core.runner import run_training
from ..core.search import model_for_billions
from ..hardware.cluster import Cluster, ClusterSpec
from ..hardware.nvme import NvmeDrive, NvmeSpec
from ..parallel.infinity import zero3_nvme_optimizer
from ..parallel.placement import PLACEMENTS
from ..telemetry.report import format_table
from ..units import GB
from .common import ExperimentResult, ExperimentSpec


def run(spec: ExperimentSpec | None = None) -> ExperimentResult:
    spec = spec or ExperimentSpec.quick("ablation_nvme")
    rows: List[dict] = []

    # (a) DRAM-cache sweep: absorb a 16 GB burst with varying cache.
    for cache_gb in (0, 2, 4, 8, 16):
        nvme_spec = replace(NvmeSpec(), dram_cache_bytes=cache_gb * GB)
        drive = NvmeDrive("sweep/nvme", nvme_spec)
        burst = 16 * GB
        seconds = drive.write_time(burst)
        rows.append({
            "study": "cache",
            "cache_gb": cache_gb,
            "burst_gb": 16,
            "effective_gbps": burst / seconds / GB,
        })

    # (b) media-bandwidth sweep on the 11.4 B ZeRO-Infinity run.
    model = model_for_billions(11.4)
    iterations = spec.iterations
    for scale in (0.5, 1.0, 2.0, 4.0):
        base = NvmeSpec()
        nvme_spec = replace(
            base,
            nand_read_bandwidth=base.nand_read_bandwidth * scale,
            nand_write_bandwidth=base.nand_write_bandwidth * scale,
        )
        placement = PLACEMENTS["B"]
        node = replace(placement.node_spec(), nvme=nvme_spec)
        cluster = Cluster(ClusterSpec(num_nodes=1, node=node))
        metrics = run_training(cluster, zero3_nvme_optimizer(), model,
                               iterations=iterations, placement=placement)
        rows.append({
            "study": "media",
            "media_scale": scale,
            "tflops": metrics.tflops,
            "iteration_s": metrics.iteration_time,
        })

    cache_rows = [[r["cache_gb"], r["effective_gbps"]]
                  for r in rows if r["study"] == "cache"]
    media_rows = [[r["media_scale"], r["tflops"], r["iteration_s"]]
                  for r in rows if r["study"] == "media"]
    rendered = (
        format_table(["cache (GB)", "16 GB burst rate (GB/s)"], cache_rows,
                     title="Ablation — NVMe DRAM-cache size") + "\n\n" +
        format_table(["media scale", "TFLOP/s", "iter (s)"], media_rows,
                     title="Ablation — NVMe media bandwidth (11.4 B, "
                           "ZeRO-Infinity optimizer offload)")
    )
    return ExperimentResult("ablation_nvme", "NVMe cache/media ablation",
                            rows, rendered)
