"""Table V — sensitivity of throughput to model size.

Sweeps each configuration over the paper's model-size grid (up to its
achieved maximum) and reports TFLOP/s per cell.  The published shape:
throughput rises with size as fixed costs amortize; ZeRO-1 dips at its
ceiling (double-buffer pressure); both offload flavours stay flat across
the whole range.
"""

from __future__ import annotations

from typing import List

from ..core.runner import run_training
from ..core.search import model_for_billions
from ..errors import OutOfMemoryError
from ..parallel.placement import PLACEMENTS
from ..telemetry.report import format_table
from . import paper_data
from .common import (
    ALL_STRATEGIES,
    ExperimentResult,
    ExperimentSpec,
    cluster_for,
    placement_cluster,
)


def run(spec: ExperimentSpec | None = None) -> ExperimentResult:
    spec = spec or ExperimentSpec.quick("table5")
    iterations = spec.iterations
    placement = PLACEMENTS["B"]
    rows: List[dict] = []
    for config, paper_cells in paper_data.TABLE_V.items():
        sizes = sorted(paper_cells)
        if not spec.full_sweep and len(sizes) > 5:
            # Keep the sweep's endpoints and shape in quick mode.
            step = max(1, len(sizes) // 5)
            sizes = sorted(set(sizes[::step]) | {sizes[0], sizes[-1]})
        for size in sizes:
            if "nvme" in config:
                cluster = placement_cluster(placement)
            else:
                cluster = cluster_for(1)
            strategy = ALL_STRATEGIES[config]()
            try:
                metrics = run_training(cluster, strategy,
                                       model_for_billions(size),
                                       iterations=iterations,
                                       placement=placement)
            except OutOfMemoryError:
                rows.append({"config": config, "size_b": size,
                             "tflops": None,
                             "paper_tflops": paper_cells[size],
                             "fits": False})
                continue
            rows.append({"config": config, "size_b": size,
                         "tflops": metrics.tflops,
                         "paper_tflops": paper_cells[size],
                         "fits": True})
    table_rows = [
        [r["config"], r["size_b"],
         "OOM" if not r["fits"] else f"{r['tflops']:.0f}",
         r["paper_tflops"]]
        for r in rows
    ]
    rendered = format_table(
        ["configuration", "model (B)", "TFLOP/s", "paper"],
        table_rows,
        title="Table V — throughput vs model size",
    )
    return ExperimentResult("table5", "throughput sensitivity to size",
                            rows, rendered)
