"""Table III — interconnect inventory and theoretical bandwidth.

Verifies that the built XE8545 topology matches the paper's published
link inventory class-for-class (counts and aggregate theoretical
bidirectional bandwidth).
"""

from __future__ import annotations

from ..hardware.presets import INTERFACE_TO_CLASS, TABLE_III, dual_node_cluster
from ..telemetry.report import format_table
from ..units import GB
from .common import ExperimentResult, ExperimentSpec


def run(spec: ExperimentSpec | None = None) -> ExperimentResult:
    del spec  # inventory check is configuration-free
    cluster = dual_node_cluster()
    rows = []
    for entry in TABLE_III:
        link_class = INTERFACE_TO_CLASS[entry.interface]
        links = [
            link for link in cluster.topology.links_of_class(link_class)
            if link.name.startswith("node0/")
        ]
        built = sum(link.capacity_bidirectional for link in links)
        built_count = sum(link.count for link in links)
        # Two counting conventions differ from physical links:
        # * NVLink — the paper counts each GPU's 12 ports (48/node); every
        #   physical link has two in-node endpoints, so ports = 2x links.
        # * PCIe-NVME — the paper lists all 8 bifurcated slots; the
        #   baseline build populates 3 drives.
        convention = built
        note = ""
        if entry.interface == "NVLink":
            convention = 2 * built
            note = "paper counts per-GPU ports (2x physical links)"
        elif entry.interface == "PCIe-NVME":
            convention = built * 8 / max(1, built_count)
            note = "paper lists 8 slots; baseline populates 3"
        rows.append({
            "interconnect": entry.interconnect,
            "interface": entry.interface,
            "paper_links": entry.links_per_node * entry.devices_per_node,
            "built_links": built_count,
            "paper_aggregate_gbps": entry.aggregate_bandwidth / GB,
            "built_aggregate_gbps": built / GB,
            "built_paper_convention_gbps": convention / GB,
            "note": note,
        })
    rendered = format_table(
        ["interconnect", "interface", "links (paper)", "links (built)",
         "GB/s (paper)", "GB/s (built)", "GB/s (paper conv.)", "note"],
        [[r["interconnect"], r["interface"], r["paper_links"],
          r["built_links"], r["paper_aggregate_gbps"],
          r["built_aggregate_gbps"], r["built_paper_convention_gbps"],
          r["note"]] for r in rows],
        title="Table III — per-node interconnect inventory",
    )
    return ExperimentResult("table3", "interconnect inventory",
                            rows, rendered)
