"""Fig. 9 — NVLink bandwidth utilization pattern, single-node training.

Simulates a window of steady-state training at 1.4 B parameters for each
strategy and renders the per-node aggregate NVLink utilization series,
with average/peak compared to the paper (DDP lowest at ~83 GB/s average;
Megatron-LM ~3x higher, peaking at 267 GB/s).
"""

from __future__ import annotations

from ..core.runner import run_training
from ..core.search import model_for_billions
from ..hardware.link import LinkClass
from ..telemetry.bandwidth import BandwidthMonitor
from ..telemetry.report import series_block
from . import paper_data
from .common import CORE_STRATEGIES, ExperimentResult, ExperimentSpec, cluster_for

QUICK_SPEC = ExperimentSpec.quick("fig9", iterations=4)
FULL_SPEC = ExperimentSpec.full("fig9", iterations=12)


def run(spec: ExperimentSpec | None = None) -> ExperimentResult:
    spec = spec or QUICK_SPEC
    model = model_for_billions(1.4)
    iterations = spec.iterations
    rows = []
    blocks = ["Fig. 9 — NVLink utilization pattern (single node, 1.4 B)"]
    for name, factory in CORE_STRATEGIES.items():
        cluster = cluster_for(1)
        metrics = run_training(cluster, factory(), model,
                               iterations=iterations)
        monitor = BandwidthMonitor(cluster)
        start, end = metrics.measurement_window
        series = monitor.series(LinkClass.NVLINK, start, end)
        stats = metrics.bandwidth[LinkClass.NVLINK]
        paper_avg, paper_peak = paper_data.NVLINK_SINGLE_NODE[name]
        rows.append({
            "strategy": name,
            "nvlink_avg_gbps": stats.average_gbps,
            "nvlink_peak_gbps": stats.peak_gbps,
            "paper_avg_gbps": paper_avg,
            "paper_peak_gbps": paper_peak,
        })
        blocks.append(series_block(name, series))
        blocks.append(
            f"{'':>10}  paper: avg {paper_avg:.1f} GB/s, peak {paper_peak:.1f} GB/s"
        )
    return ExperimentResult("fig9", "NVLink utilization pattern",
                            rows, "\n".join(blocks))
