"""Fig. 6 — achieved model size, single- and dual-node.

Replays the paper's layer-growth procedure per strategy via the memory
plan and reports the largest model that fits, next to the published
value (e.g. ZeRO-3 fits ~20 % more than Megatron-LM; DDP is pinned to
one GPU's memory).
"""

from __future__ import annotations

from ..core.search import max_model_size
from ..telemetry.report import format_table
from . import paper_data
from .common import CORE_STRATEGIES, ExperimentResult, ExperimentSpec, cluster_for


def run(spec: ExperimentSpec | None = None) -> ExperimentResult:
    del spec  # the search is analytic and fast
    rows = []
    for num_nodes, paper in ((1, paper_data.ACHIEVED_SIZE_SINGLE_NODE_B),
                             (2, paper_data.ACHIEVED_SIZE_DUAL_NODE_B)):
        cluster = cluster_for(num_nodes)
        for name, factory in CORE_STRATEGIES.items():
            result = max_model_size(cluster, factory())
            rows.append({
                "nodes": num_nodes,
                "strategy": name,
                "achieved_b": result.billions,
                "paper_b": paper[name],
                "max_layers": result.max_layers,
            })
    rendered = format_table(
        ["nodes", "strategy", "achieved (B)", "paper (B)", "layers"],
        [[r["nodes"], r["strategy"], r["achieved_b"], r["paper_b"],
          r["max_layers"]] for r in rows],
        title="Fig. 6 — achieved model size",
    )
    return ExperimentResult("fig6", "achieved model size", rows, rendered)
