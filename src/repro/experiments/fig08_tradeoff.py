"""Fig. 8 — throughput vs achieved model size trade-off.

Joins the Fig. 6 sizes with the Fig. 7 throughputs into the paper's
scatter: on one node ZeRO-2 is the sweet spot (high throughput,
Megatron-class size); on two nodes ZeRO-3 maximizes size while keeping
3-4x Megatron-LM's throughput.
"""

from __future__ import annotations

from typing import Dict

from . import fig07_throughput
from .common import ExperimentResult, ExperimentSpec


def run(spec: ExperimentSpec | None = None) -> ExperimentResult:
    spec = spec or ExperimentSpec.quick("fig8")
    base = fig07_throughput.run(spec.for_experiment("fig7"))
    rows = list(base.rows)
    # Annotate the paper's qualitative winners.
    by_node: Dict[int, list] = {1: [], 2: []}
    for row in rows:
        by_node[int(row["nodes"])].append(row)
    analysis = []
    for nodes, node_rows in by_node.items():
        best_size = max(node_rows, key=lambda r: r["model_b"])
        best_ratio = max(node_rows,
                         key=lambda r: float(r["tflops"]) * float(r["model_b"]))
        analysis.append({
            "nodes": nodes,
            "largest_model": best_size["strategy"],
            "sweet_spot": best_ratio["strategy"],
        })
    for row in analysis:
        rows.append({"nodes": row["nodes"], "strategy": "(analysis)",
                     "largest_model": row["largest_model"],
                     "sweet_spot": row["sweet_spot"]})
    chart_lines = ["Fig. 8 — throughput (TFLOP/s) vs model size (B)"]
    for nodes in (1, 2):
        chart_lines.append(f"  {nodes} node(s):")
        for r in sorted(by_node[nodes], key=lambda r: r["model_b"]):
            bar = "#" * max(1, int(float(r["tflops"]) / 12))
            chart_lines.append(
                f"    {r['strategy']:>9} {float(r['model_b']):5.1f}B "
                f"|{bar} {float(r['tflops']):.0f}"
            )
    return ExperimentResult("fig8", "throughput vs size trade-off",
                            rows, "\n".join(chart_lines))
