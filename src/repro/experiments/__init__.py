"""One module per paper table/figure, plus ablations and the registry."""

from .common import ExperimentResult, ExperimentSpec
from .registry import (
    EXPERIMENTS,
    PAPER_EXPERIMENTS,
    run_all,
    run_experiment,
    run_spec,
    spec_for,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "ExperimentSpec",
    "PAPER_EXPERIMENTS",
    "run_all",
    "run_experiment",
    "run_spec",
    "spec_for",
]
