"""One module per paper table/figure, plus ablations and the registry."""

from .common import ExperimentResult
from .registry import EXPERIMENTS, PAPER_EXPERIMENTS, run_all, run_experiment

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "PAPER_EXPERIMENTS",
    "run_all",
    "run_experiment",
]
