"""Fig. 14 / Table VI — NVMe data-placement study at 33.3 B parameters.

Runs ZeRO-Infinity (optimizer+parameter NVMe offload) under the seven
drive wiring/grouping/mapping configurations A-G and reports throughput
plus xGMI and PCIe-NVME utilization.  The paper's conclusions to
reproduce: more drives help; RAID0 stripes spanning sockets waste xGMI
bandwidth (C vs D, E vs F/G); socket-local volumes win.
"""

from __future__ import annotations

from ..core.runner import run_training
from ..core.search import model_for_billions
from ..hardware.link import LinkClass
from ..parallel.infinity import zero3_nvme_optimizer_params
from ..parallel.placement import PLACEMENTS
from ..telemetry.report import format_table
from . import paper_data
from .common import ExperimentResult, ExperimentSpec, placement_cluster

QUICK_SPEC = ExperimentSpec.quick("fig14_table6", iterations=2)
FULL_SPEC = ExperimentSpec.full("fig14_table6", iterations=4)


def run(spec: ExperimentSpec | None = None) -> ExperimentResult:
    spec = spec or QUICK_SPEC
    model = model_for_billions(paper_data.PLACEMENT_MODEL_B)
    iterations = spec.iterations
    rows = []
    for key in "ABCDEFG":
        placement = PLACEMENTS[key]
        cluster = placement_cluster(placement)
        metrics = run_training(cluster, zero3_nvme_optimizer_params(), model,
                               iterations=iterations, warmup_iterations=1,
                               placement=placement)
        paper = paper_data.TABLE_VI[key]
        rows.append({
            "config": key,
            "description": placement.description,
            "tflops": metrics.tflops,
            "paper_tflops": paper["tflops"],
            "xgmi_avg_gbps": metrics.bandwidth[LinkClass.XGMI].average_gbps,
            "paper_xgmi_avg_gbps": paper["xgmi_avg"],
            "pcie_nvme_avg_gbps":
                metrics.bandwidth[LinkClass.PCIE_NVME].average_gbps,
            "paper_pcie_nvme_avg_gbps": paper["pcie_nvme_avg"],
        })
    rendered = format_table(
        ["cfg", "TFLOP/s", "paper", "xGMI avg", "paper", "PCIe-NVME avg",
         "paper"],
        [[r["config"], r["tflops"], r["paper_tflops"], r["xgmi_avg_gbps"],
          r["paper_xgmi_avg_gbps"], r["pcie_nvme_avg_gbps"],
          r["paper_pcie_nvme_avg_gbps"]] for r in rows],
        title="Fig. 14 / Table VI — NVMe placement configurations (33.3 B)",
    )
    return ExperimentResult("fig14_table6", "NVMe placement study",
                            rows, rendered)
