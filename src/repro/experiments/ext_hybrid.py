"""Extension — hybrid TP x ZeRO parallelism on the dual-node cluster.

The paper stops at "DeepSpeed supports hybrid parallelism" (Section
II-C).  This experiment evaluates the configuration its findings imply:
tensor parallelism confined to NVLink inside each node, ZeRO data
parallelism across the RoCE fabric.  Compared against the paper's pure
configurations at each strategy's own maximum size, the hybrid should
(a) fit more than pure ZeRO-1/2 — the TP shard divides parameters by
four — and (b) avoid Megatron-LM's inter-node collapse.
"""

from __future__ import annotations

from ..core.runner import run_training
from ..core.search import max_model_size
from ..model.config import paper_model
from ..parallel import MegatronStrategy, zero1, zero2
from ..parallel.hybrid import hybrid_tp_zero1, hybrid_tp_zero2
from ..telemetry.report import format_table
from .common import ExperimentResult, ExperimentSpec, cluster_for


def run(spec: ExperimentSpec | None = None) -> ExperimentResult:
    spec = spec or ExperimentSpec.quick("ext_hybrid")
    iterations = spec.iterations
    rows = []
    for factory in (MegatronStrategy, zero1, zero2,
                    hybrid_tp_zero1, hybrid_tp_zero2):
        cluster = cluster_for(2)
        strategy = factory()
        search = max_model_size(cluster, strategy)
        metrics = run_training(cluster, strategy,
                               paper_model(search.max_layers),
                               iterations=iterations)
        rows.append({
            "strategy": strategy.name,
            "max_model_b": search.billions,
            "tflops": metrics.tflops,
            "iteration_s": metrics.iteration_time,
        })
    rendered = format_table(
        ["strategy", "max model (B)", "TFLOP/s", "iter (s)"],
        [[r["strategy"], r["max_model_b"], r["tflops"], r["iteration_s"]]
         for r in rows],
        title="Extension — hybrid TP x ZeRO on two nodes",
    )
    return ExperimentResult("ext_hybrid", "hybrid parallelism extension",
                            rows, rendered)
