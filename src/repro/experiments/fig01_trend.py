"""Fig. 1 — LLM size growth vs. single-GPU memory growth.

The paper's motivating figure: model sizes grew ~1000x from ELMo (2018)
to GPT-3 (2020) while GPU memory grew ~5x (V100 16 GB to A100 80 GB).
We reproduce the two trend series and the headline growth factors.
"""

from __future__ import annotations

from ..telemetry.report import format_table
from . import paper_data
from .common import ExperimentResult, ExperimentSpec


def run(spec: ExperimentSpec | None = None) -> ExperimentResult:
    del spec  # data-only experiment
    rows = []
    for year, name, billions in paper_data.LLM_SIZE_TREND:
        rows.append({"series": "model", "year": year, "name": name,
                     "value": billions})
    for year, name, gb in paper_data.GPU_MEMORY_TREND:
        rows.append({"series": "gpu_memory", "year": year, "name": name,
                     "value": gb})
    elmo = dict(rows[0])
    gpt3 = next(r for r in rows if r["name"] == "GPT-3")
    model_growth = float(gpt3["value"]) / float(elmo["value"])
    v100 = next(r for r in rows if r["name"] == "Tesla V100")
    a100 = next(r for r in rows if r["name"] == "A100 80GB")
    memory_growth = float(a100["value"]) / float(v100["value"])
    rows.append({"series": "growth_factor", "year": 2020,
                 "name": "model 2018-2020", "value": model_growth})
    rows.append({"series": "growth_factor", "year": 2020,
                 "name": "gpu memory 2017-2020", "value": memory_growth})
    rendered = format_table(
        ["series", "year", "name", "value"],
        [[r["series"], r["year"], r["name"], r["value"]] for r in rows],
        title="Fig. 1 — LLM size (B params) vs GPU memory (GB) trend",
    )
    return ExperimentResult("fig1", "LLM size vs GPU memory trend",
                            rows, rendered)
