"""Ablation — offload double-buffer sizing (paper Section V-A2).

The paper notes a tuning tension: oversized pinned buffers steal GPU
memory from model states (shrinking the achievable model), undersized
ones cripple communication/computation overlap.  This sweep varies the
offloaded configuration's GPU buffer pool and reports the achievable
model size at each setting — the memory side of that trade-off.
"""

from __future__ import annotations

from typing import List

from .. import calibration
from ..core.search import max_model_size
from ..parallel import zero2_cpu_offload
from ..parallel.strategy import MemoryPlan, StrategyContext
from ..telemetry.report import format_table
from ..units import GB, MB
from .common import ExperimentResult, ExperimentSpec, cluster_for


class _BufferSizedOffload:
    """Delegating wrapper that overrides the GPU buffer pool size."""

    def __init__(self, buffer_bytes: float) -> None:
        self._inner = zero2_cpu_offload()
        self._buffer_bytes = buffer_bytes
        self.name = f"{self._inner.name}_buf{buffer_bytes / GB:.0f}g"
        self.calibration = self._inner.calibration
        self.traffic_profile = self._inner.traffic_profile

    def __getattr__(self, attr):
        return getattr(self._inner, attr)

    def memory_plan(self, ctx: StrategyContext) -> MemoryPlan:
        plan = self._inner.memory_plan(ctx)
        plan.gpu["framework_buffers"] = self._buffer_bytes
        return plan


def run(spec: ExperimentSpec | None = None) -> ExperimentResult:
    del spec  # the search is analytic and fast
    rows: List[dict] = []
    for buffer_gb in (1, 2, 4, 8, 12, 16):
        cluster = cluster_for(1)
        strategy = _BufferSizedOffload(buffer_gb * GB)
        result = max_model_size(cluster, strategy)
        rows.append({
            "buffer_gb": buffer_gb,
            "max_model_b": result.billions,
            "is_default": abs(buffer_gb * GB
                              - calibration.OFFLOAD_GPU_BUFFER_BYTES) < MB,
        })
    rendered = format_table(
        ["GPU buffer (GB)", "max model (B)", "default"],
        [[r["buffer_gb"], r["max_model_b"],
          "yes" if r["is_default"] else ""] for r in rows],
        title="Ablation — offload buffer size vs achievable model "
              "(ZeRO-2 CPU offload, single node)",
    )
    return ExperimentResult("ablation_buffers", "offload buffer sizing",
                            rows, rendered)
