"""Extension — micro-batch-size sensitivity.

Section V-B2 speculates that "the free space on GPU memory can also be
used for larger batch sizes, which may improve the throughput" but the
paper never sweeps it.  This experiment does: per-GPU micro-batch 4-64
for ZeRO-2 (compute-bound — throughput rises as kernels fatten and fixed
costs amortize) and for ZeRO-Infinity (NVMe-bound — the optimizer swap
traffic is batch-independent, so bigger batches amortize the swap and
throughput climbs until activations evict model states).
"""

from __future__ import annotations

from typing import List

from ..core.runner import run_training
from ..core.search import model_for_billions
from ..errors import OutOfMemoryError
from ..model.config import TrainingConfig
from ..parallel import zero2, zero3_nvme_optimizer
from ..parallel.placement import PLACEMENTS
from ..telemetry.report import format_table
from ..units import GB
from .common import (
    ExperimentResult,
    ExperimentSpec,
    cluster_for,
    placement_cluster,
)

BATCHES = (4, 8, 16, 32, 64)


def run(spec: ExperimentSpec | None = None) -> ExperimentResult:
    spec = spec or ExperimentSpec.quick("ext_batch")
    iterations = spec.iterations
    placement = PLACEMENTS["B"]
    rows: List[dict] = []
    cases = [
        ("zero2@1.4B", zero2, 1.4, False),
        ("zero3_nvme@11.4B", zero3_nvme_optimizer, 11.4, True),
    ]
    for label, factory, size_b, uses_nvme in cases:
        model = model_for_billions(size_b)
        for batch in BATCHES:
            training = TrainingConfig(micro_batch_per_gpu=batch)
            if uses_nvme:
                cluster = placement_cluster(placement)
            else:
                cluster = cluster_for(1)
            try:
                metrics = run_training(cluster, factory(), model,
                                       training=training,
                                       iterations=iterations,
                                       placement=placement)
                rows.append({
                    "case": label, "micro_batch": batch, "fits": True,
                    "tflops": metrics.tflops,
                    "tokens_per_s": (batch * 256 * 4
                                     / metrics.iteration_time),
                    "gpu_gb": metrics.memory.gpu_used / GB,
                })
            except OutOfMemoryError:
                rows.append({"case": label, "micro_batch": batch,
                             "fits": False, "tflops": None,
                             "tokens_per_s": None, "gpu_gb": None})
    rendered = format_table(
        ["case", "micro-batch", "TFLOP/s", "tokens/s", "GPU GB"],
        [[r["case"], r["micro_batch"],
          "OOM" if not r["fits"] else f"{r['tflops']:.0f}",
          "-" if not r["fits"] else f"{r['tokens_per_s']:.0f}",
          "-" if not r["fits"] else f"{r['gpu_gb']:.0f}"] for r in rows],
        title="Extension — micro-batch sensitivity (Section V-B2's 'larger "
              "batch sizes may improve throughput')",
    )
    return ExperimentResult("ext_batch", "micro-batch sensitivity",
                            rows, rendered)
