"""Fig. 11 — consolidating dual-node 11.4 B training onto one node.

The paper's pivotal experiment: Megatron-LM needs two nodes for 11.4 B
parameters; ZeRO-Offload fits it on one node at 1.58x the throughput
(ZeRO-2 + CPU optimizer), and ZeRO-Infinity trades throughput for NVMe
capacity.  Reports throughput (Fig. 11-a) and memory composition
(Fig. 11-b) for every configuration.
"""

from __future__ import annotations

from ..core.runner import run_training
from ..core.search import model_for_billions
from ..parallel import MegatronStrategy
from ..parallel.placement import PLACEMENTS
from ..telemetry.report import format_table
from ..units import GB
from . import paper_data
from .common import (
    ALL_STRATEGIES,
    ExperimentResult,
    ExperimentSpec,
    cluster_for,
    placement_cluster,
)


def run(spec: ExperimentSpec | None = None) -> ExperimentResult:
    spec = spec or ExperimentSpec.quick("fig11")
    model = model_for_billions(paper_data.CONSOLIDATION_MODEL_B)
    iterations = spec.iterations
    rows = []

    # Reference: Megatron-LM on two nodes at its own achieved maximum
    # (the paper's 11.4 B; the simulator's search lands within ~3 %).
    from ..core.search import max_model_size
    from ..model.config import paper_model

    dual = cluster_for(2)
    megatron = MegatronStrategy()
    search = max_model_size(dual, megatron)
    metrics = run_training(dual, megatron, paper_model(search.max_layers),
                           iterations=iterations)
    rows.append(_row("megatron_dual", metrics))

    # CPU offload on one node.
    for name in ("zero2_opt_cpu", "zero3_opt_cpu_param_cpu"):
        cluster = cluster_for(1)
        metrics = run_training(cluster, ALL_STRATEGIES[name](), model,
                               iterations=iterations)
        rows.append(_row(name, metrics))

    # NVMe offload, single and dual drives.
    for placement_key, suffix in (("A", "_1x"), ("B", "_2x")):
        placement = PLACEMENTS[placement_key]
        for base in ("zero3_opt_nvme", "zero3_opt_nvme_param_nvme"):
            cluster = placement_cluster(placement)
            metrics = run_training(cluster, ALL_STRATEGIES[base](), model,
                                   iterations=iterations,
                                   placement=placement)
            rows.append(_row(base + suffix, metrics))

    rendered = format_table(
        ["config", "TFLOP/s", "paper", "GPU GB", "CPU GB", "NVMe GB"],
        [[r["config"], r["tflops"], r["paper_tflops"], r["gpu_gb"],
          r["cpu_gb"], r["nvme_gb"]] for r in rows],
        title="Fig. 11 — dual-node 11.4 B consolidated onto one node",
    )
    return ExperimentResult("fig11", "offload consolidation", rows, rendered)


def _row(config: str, metrics) -> dict:
    return {
        "config": config,
        "tflops": metrics.tflops,
        "paper_tflops": paper_data.CONSOLIDATION_THROUGHPUT.get(config),
        "gpu_gb": metrics.memory.gpu_used / GB,
        "cpu_gb": metrics.memory.cpu_used / GB,
        "nvme_gb": metrics.memory.nvme_used / GB,
        "iteration_s": metrics.iteration_time,
    }
