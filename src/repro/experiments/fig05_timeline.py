"""Fig. 5 — single-iteration execution timelines at 1.4 B parameters.

Runs each of the paper's nine configurations on one node, renders rank 0's
compute/communication/host-IO lanes, and reports the iteration time next
to the published one (471 ms DDP ... 5.9 s NVMe opt+param).
"""

from __future__ import annotations

from typing import List

from ..core.runner import run_training
from ..core.search import model_for_billions
from ..hardware.presets import single_node_cluster
from ..parallel.placement import PLACEMENTS
from . import paper_data
from .common import (
    ALL_STRATEGIES,
    ExperimentResult,
    ExperimentSpec,
    placement_cluster,
)

#: Fig. 5's nine configurations, in paper order.
CONFIGS: List[str] = [
    "ddp", "megatron", "zero1", "zero2", "zero3",
    "zero1_opt_cpu", "zero2_opt_cpu",
    "zero3_opt_nvme", "zero3_opt_nvme_param_nvme",
]


def run(spec: ExperimentSpec | None = None) -> ExperimentResult:
    spec = spec or ExperimentSpec.quick("fig5")
    model = model_for_billions(1.4)
    placement = PLACEMENTS["B"]  # 2x NVMe RAID0, the paper's Fig. 5 target
    rows = []
    renders = []
    for name in CONFIGS:
        strategy = ALL_STRATEGIES[name]()
        if "nvme" in name:
            cluster = placement_cluster(placement)
        else:
            cluster = single_node_cluster()
        metrics = run_training(cluster, strategy, model,
                               iterations=spec.iterations,
                               placement=placement)
        timeline = metrics.execution.timeline
        busy = timeline.compute_busy_fraction(0)
        rows.append({
            "config": name,
            "iteration_s": metrics.iteration_time,
            "paper_iteration_s": paper_data.ITERATION_TIME_1P4B_S[name],
            "compute_busy_fraction": busy,
            "communication_s": timeline.communication_time(0)
            / max(1, len(metrics.execution.iteration_times)),
        })
        window_start = metrics.measurement_window[0]
        window = (window_start, window_start + metrics.iteration_time)
        renders.append(
            f"--- {strategy.display_name}: iteration "
            f"{metrics.iteration_time * 1e3:.0f} ms "
            f"(paper {paper_data.ITERATION_TIME_1P4B_S[name] * 1e3:.0f} ms), "
            f"GPU busy {busy * 100:.0f}%\n"
            + timeline.render(0, width=96, window=window)
        )
    legend = ("glyphs: G=GEMM e=elementwise O=optimizer R=all-reduce "
              "r=reduce A=all-gather s=send/recv H=host-transfer N=NVMe "
              "C=CPU-Adam .=idle")
    rendered = "Fig. 5 — one training iteration, 1.4 B parameters\n" + \
        legend + "\n" + "\n".join(renders)
    return ExperimentResult("fig5", "single-iteration timelines",
                            rows, rendered)
