"""Extension — pipeline vs tensor parallelism across nodes.

The paper's dual-node Megatron-LM collapse comes from tensor-parallel
all-reduces crossing RoCE on every layer.  Pipeline parallelism moves
only one micro-batch of boundary activations per stage hand-off, so its
inter-node traffic is orders of magnitude smaller.  This experiment runs
the explicit 1F1B schedule (bubbles emerge from simulated dependencies,
not a calibrated fraction) against the paper's configurations, and
sweeps the micro-batch count to show the classic bubble amortization
curve.
"""

from __future__ import annotations

from ..core.runner import run_training
from ..core.search import model_for_billions
from ..hardware.link import LinkClass
from ..parallel import MegatronStrategy, zero3
from ..parallel.pipeline import pipeline_1f1b
from ..telemetry.report import format_table
from .common import ExperimentResult, ExperimentSpec, cluster_for

COMPARISON_MODEL_B = 5.5  # largest size every contender fits on 2 nodes


def run(spec: ExperimentSpec | None = None) -> ExperimentResult:
    spec = spec or ExperimentSpec.quick("ext_pipeline")
    iterations = spec.iterations
    model = model_for_billions(COMPARISON_MODEL_B)
    rows = []

    # Head-to-head at a fixed model size on two nodes.
    for strategy in (MegatronStrategy(), zero3(), pipeline_1f1b()):
        cluster = cluster_for(2)
        metrics = run_training(cluster, strategy, model,
                               iterations=iterations)
        rows.append({
            "study": "head_to_head",
            "strategy": strategy.name,
            "micro_batches": getattr(strategy, "_micro_batches", None),
            "tflops": metrics.tflops,
            "roce_avg_gbps": metrics.bandwidth[LinkClass.ROCE].average_gbps,
            "busy_fraction":
                metrics.execution.timeline.compute_busy_fraction(0),
        })

    # Bubble amortization: more micro-batches, smaller bubble.
    for m in (8, 16, 32, 64) if spec.full_sweep else (8, 16, 32):
        cluster = cluster_for(2)
        metrics = run_training(cluster, pipeline_1f1b(micro_batches=m),
                               model, iterations=iterations)
        rows.append({
            "study": "microbatch_sweep",
            "strategy": "pipeline",
            "micro_batches": m,
            "tflops": metrics.tflops,
            "roce_avg_gbps": metrics.bandwidth[LinkClass.ROCE].average_gbps,
            "busy_fraction":
                metrics.execution.timeline.compute_busy_fraction(0),
        })

    rendered = format_table(
        ["study", "strategy", "micro-batches", "TFLOP/s", "RoCE avg GB/s",
         "GPU busy"],
        [[r["study"], r["strategy"], r["micro_batches"] or "-",
          r["tflops"], r["roce_avg_gbps"], r["busy_fraction"]]
         for r in rows],
        title=f"Extension — pipeline vs tensor parallelism "
              f"({COMPARISON_MODEL_B} B, 2 nodes)",
    )
    return ExperimentResult("ext_pipeline", "pipeline parallelism extension",
                            rows, rendered)
