"""Fig. 13 — largest single-node model with ZeRO-Offload / ZeRO-Infinity.

Searches the offload strategies' size ceilings on one node and measures
throughput and memory at the achieved size.  Paper: ZeRO-1 (CPU) 8.9 B at
155 TFLOP/s; ZeRO-2 (CPU) 14.2 B at 180; ZeRO-Infinity 33.3 B — six times
Megatron-LM's single-node ceiling — at 37 TFLOP/s, NVMe-bandwidth-bound.

For ZeRO-Infinity the simulator's memory model admits models beyond the
paper's 33.3 B stopping point (see EXPERIMENTS.md); the throughput row is
therefore measured *at* the paper's 33.3 B for comparability, with the
search ceiling reported alongside.
"""

from __future__ import annotations

from ..core.runner import run_training
from ..core.search import max_model_size, model_for_billions
from ..model.config import paper_model
from ..parallel.placement import PLACEMENTS
from ..telemetry.report import format_table
from ..units import GB
from . import paper_data
from .common import (
    ALL_STRATEGIES,
    ExperimentResult,
    ExperimentSpec,
    cluster_for,
    placement_cluster,
)


def run(spec: ExperimentSpec | None = None) -> ExperimentResult:
    spec = spec or ExperimentSpec.quick("fig13")
    iterations = spec.iterations
    placement = PLACEMENTS["B"]
    rows = []
    for name, (paper_b, paper_tflops) in paper_data.LARGEST_SINGLE_NODE.items():
        uses_nvme = "nvme" in name
        if uses_nvme:
            cluster = placement_cluster(placement)
        else:
            cluster = cluster_for(1)
        strategy = ALL_STRATEGIES[name]()
        search = max_model_size(cluster, strategy, placement=placement)
        if uses_nvme:
            model = model_for_billions(paper_b)
            measured_b = paper_b
        else:
            model = paper_model(search.max_layers)
            measured_b = search.billions
        metrics = run_training(cluster, strategy, model,
                               iterations=iterations, placement=placement)
        rows.append({
            "strategy": name,
            "achieved_b": search.billions,
            "measured_at_b": measured_b,
            "paper_b": paper_b,
            "tflops": metrics.tflops,
            "paper_tflops": paper_tflops,
            "gpu_gb": metrics.memory.gpu_used / GB,
            "cpu_gb": metrics.memory.cpu_used / GB,
            "nvme_gb": metrics.memory.nvme_used / GB,
        })
    rendered = format_table(
        ["strategy", "search max (B)", "paper (B)", "TFLOP/s", "paper",
         "GPU GB", "CPU GB", "NVMe GB"],
        [[r["strategy"], r["achieved_b"], r["paper_b"], r["tflops"],
          r["paper_tflops"], r["gpu_gb"], r["cpu_gb"], r["nvme_gb"]]
         for r in rows],
        title="Fig. 13 — largest single-node model with offload",
    )
    return ExperimentResult("fig13", "largest single-node model",
                            rows, rendered)
