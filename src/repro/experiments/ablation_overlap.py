"""Ablation — communication/computation overlap on/off for ZeRO.

DDP and ZeRO hide gradient collectives behind backward compute via
non-blocking launches; this ablation forces every collective to block,
quantifying how much the overlap buys on each fabric (little on NVLink,
a lot across RoCE).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from ..core.runner import run_training
from ..core.search import model_for_billions
from ..parallel import zero2, zero3
from ..parallel.schedule import CollectiveStep, IterationSchedule
from ..parallel.strategy import StrategyContext, TrainingStrategy
from ..telemetry.report import format_table
from .common import ExperimentResult, ExperimentSpec, cluster_for


class _BlockingWrapper(TrainingStrategy):
    """Wraps a strategy, rewriting every collective as blocking."""

    def __init__(self, inner: TrainingStrategy) -> None:
        super().__init__(inner.calibration)
        self.inner = inner
        self.name = inner.name + "_noverlap"
        self.display_name = inner.display_name + " (no overlap)"
        self.traffic_profile = inner.traffic_profile

    def data_parallel_degree(self, ctx: StrategyContext) -> int:
        return self.inner.data_parallel_degree(ctx)

    def model_parallel_degree(self, ctx: StrategyContext) -> int:
        return self.inner.model_parallel_degree(ctx)

    def memory_plan(self, ctx: StrategyContext):
        return self.inner.memory_plan(ctx)

    def build_schedule(self, ctx: StrategyContext) -> IterationSchedule:
        schedule = self.inner.build_schedule(ctx)
        for rank, steps in schedule.steps_by_rank.items():
            schedule.steps_by_rank[rank] = [
                replace(step, blocking=True)
                if isinstance(step, CollectiveStep) else step
                for step in steps
            ]
        return schedule


def run(spec: ExperimentSpec | None = None) -> ExperimentResult:
    spec = spec or ExperimentSpec.quick("ablation_overlap")
    iterations = spec.iterations
    rows: List[dict] = []
    for num_nodes, size in ((1, 1.4), (2, 6.0)):
        model = model_for_billions(size)
        for factory in (zero2, zero3):
            for overlap in (True, False):
                cluster = cluster_for(num_nodes)
                strategy = factory()
                if not overlap:
                    strategy = _BlockingWrapper(strategy)
                metrics = run_training(cluster, strategy, model,
                                       iterations=iterations)
                rows.append({
                    "nodes": num_nodes,
                    "model_b": size,
                    "strategy": factory().name,
                    "overlap": overlap,
                    "tflops": metrics.tflops,
                })
    rendered = format_table(
        ["nodes", "model (B)", "strategy", "overlap", "TFLOP/s"],
        [[r["nodes"], r["model_b"], r["strategy"], r["overlap"],
          r["tflops"]] for r in rows],
        title="Ablation — gradient-communication overlap on/off",
    )
    return ExperimentResult("ablation_overlap", "overlap ablation",
                            rows, rendered)
