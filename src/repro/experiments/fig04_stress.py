"""Fig. 4 — CPU-RoCE and GPU-RoCE bandwidth stress tests.

Runs the four stress scenarios (CPU/GPU x same-/cross-socket) and
reports per-interconnect average/peak bandwidth plus the attained
fraction of theoretical RoCE bandwidth — the paper's SerDes-contention
evidence (93 % / 47 % / 52 % / 42 %).
"""

from __future__ import annotations

from ..hardware.link import LinkClass
from ..hardware.presets import dual_node_cluster
from ..stress.bandwidth_test import full_stress_suite
from ..telemetry.report import format_table
from . import paper_data
from .common import ExperimentResult, ExperimentSpec


def run(spec: ExperimentSpec | None = None) -> ExperimentResult:
    spec = spec or ExperimentSpec.quick("fig4")
    suite = full_stress_suite(dual_node_cluster(), duration=spec.duration_s)
    rows = []
    for (kind, placement), result in suite.items():
        paper = paper_data.STRESS_ATTAINED_FRACTION[
            (kind.value, placement.value)
        ]
        rows.append({
            "test": kind.value,
            "placement": placement.value,
            "roce_avg_gbps": result.roce_average_gbps,
            "attained_fraction": result.attained_fraction(),
            "paper_fraction": paper,
            "dram_avg_gbps": result.stats[LinkClass.DRAM].average_gbps,
            "pcie_nic_avg_gbps": result.stats[LinkClass.PCIE_NIC].average_gbps,
            "xgmi_avg_gbps": result.stats[LinkClass.XGMI].average_gbps,
        })
    rendered = format_table(
        ["test", "placement", "RoCE avg GB/s", "attained %", "paper %"],
        [[r["test"], r["placement"], r["roce_avg_gbps"],
          100 * r["attained_fraction"], 100 * r["paper_fraction"]]
         for r in rows],
        title="Fig. 4 — inter-node bandwidth stress test",
    )
    return ExperimentResult("fig4", "RoCE bandwidth stress test",
                            rows, rendered)
