"""Extension — what if the cluster had 80 GB A100s?

The paper's Fig. 1 narrative centres on GPU memory scarcity (40 GB SXM4
parts).  This what-if rebuilds the identical cluster with the 80 GB A100
variant and re-runs the Fig. 6 size search: model-state-bound strategies
should roughly double their ceiling, DDP a bit more than double (its
fixed activation/buffer tax stops mattering), and the *ordering* must be
unchanged — memory capacity scales every strategy, it doesn't re-rank
them.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from ..core.search import max_model_size
from ..hardware.cluster import Cluster, ClusterSpec
from ..hardware.gpu import GpuSpec
from ..hardware.node import NodeSpec
from ..telemetry.report import format_table
from ..units import GB
from .common import CORE_STRATEGIES, ExperimentResult, ExperimentSpec


def a100_80gb_cluster(num_nodes: int = 1) -> Cluster:
    gpu = replace(GpuSpec(), name="NVIDIA A100 SXM4 80GB",
                  memory_bytes=80 * GB)
    node = replace(NodeSpec(), gpu=gpu)
    return Cluster(ClusterSpec(num_nodes=num_nodes, node=node))


def run(spec: ExperimentSpec | None = None) -> ExperimentResult:
    del spec  # pure memory-plan search, always fast
    rows: List[dict] = []
    for name, factory in CORE_STRATEGIES.items():
        base = max_model_size(Cluster(ClusterSpec(num_nodes=1)), factory())
        big = max_model_size(a100_80gb_cluster(1), factory())
        rows.append({
            "strategy": name,
            "max_40gb_b": base.billions,
            "max_80gb_b": big.billions,
            "gain": big.max_parameters / base.max_parameters,
        })
    rendered = format_table(
        ["strategy", "max @40GB (B)", "max @80GB (B)", "gain"],
        [[r["strategy"], r["max_40gb_b"], r["max_80gb_b"], r["gain"]]
         for r in rows],
        title="Extension — 80 GB A100 what-if (single node)",
    )
    return ExperimentResult("ext_gpu80", "80 GB A100 what-if",
                            rows, rendered)
