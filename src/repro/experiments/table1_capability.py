"""Table I — ZeRO stage and offload capability matrix.

Verifies that the strategy layer enforces exactly the published
capability matrix: which stages partition which model states, and which
offload targets each stage supports.
"""

from __future__ import annotations

from ..model.states import OffloadTarget, ZeroStage
from ..telemetry.report import format_table
from .common import ExperimentResult, ExperimentSpec


def run(spec: ExperimentSpec | None = None) -> ExperimentResult:
    del spec  # capability matrix is configuration-free
    rows = []
    for stage in (ZeroStage.OPTIMIZER, ZeroStage.GRADIENTS,
                  ZeroStage.PARAMETERS):
        rows.append({
            "stage": int(stage),
            "partitions_optimizer": stage.partitions_optimizer,
            "partitions_gradients": stage.partitions_gradients,
            "partitions_parameters": stage.partitions_parameters,
            "optimizer_cpu": stage.supports_offload("optimizer",
                                                    OffloadTarget.CPU),
            "optimizer_nvme": stage.supports_offload("optimizer",
                                                     OffloadTarget.NVME),
            "parameter_cpu": stage.supports_offload("parameter",
                                                    OffloadTarget.CPU),
            "parameter_nvme": stage.supports_offload("parameter",
                                                     OffloadTarget.NVME),
        })

    def mark(value: bool) -> str:
        return "yes" if value else "-"

    rendered = format_table(
        ["stage", "opt part", "grad part", "param part", "opt CPU",
         "opt NVME", "param CPU", "param NVME"],
        [[r["stage"], mark(r["partitions_optimizer"]),
          mark(r["partitions_gradients"]), mark(r["partitions_parameters"]),
          mark(r["optimizer_cpu"]), mark(r["optimizer_nvme"]),
          mark(r["parameter_cpu"]), mark(r["parameter_nvme"])]
         for r in rows],
        title="Table I — ZeRO stage and offload capability",
    )
    return ExperimentResult("table1", "ZeRO capability matrix",
                            rows, rendered)
