"""Trace/ledger reconciliation: the trace must not contradict the books.

The flow network charges every byte it moves to the traversed links'
:class:`~repro.hardware.link.BandwidthLedger`, and :func:`build_trace`
copies each ledger's totals into the trace's
:class:`~repro.trace.model.LinkAccount` rows at export time.  This pass
re-derives the ledger totals from a live cluster and asserts the
(possibly JSON-round-tripped) trace still agrees:

* ``TRC001`` — a link's account disagrees with its ledger total (bytes
  or record count).  Exact comparison: the account was computed by the
  same summation and ``repr``-exact JSON round-trips floats losslessly.
* ``TRC002`` — a link with ledger traffic is missing from the trace, or
  the trace accounts for a link the ledger never saw.
* ``TRC003`` — the trace's flow spans attribute more bytes to a link
  than the link's account holds (flows are a subset of ledger traffic —
  direct charges like host background and CPU-Adam DRAM add on top, so
  flow bytes may be *under* but never *over* the account).  Checked with
  a small relative tolerance for floating-point dust.

Codes are claimed in :mod:`repro.analysis.registry` at import time like
the other dynamic reporters (DET101/DET120), so ``self_check()`` keeps
guarding against collisions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ..analysis.findings import Finding, Report, Severity
from ..analysis.registry import claim_codes
from .model import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hardware.cluster import Cluster

#: Reporter name under which the TRC codes are claimed.
TRACE_RECONCILE_PASS = "trace-reconcile"

#: Relative slack for the flow-attribution check (TRC003 only; the
#: per-link account comparison is exact).
FLOW_BYTES_RTOL = 1e-9

claim_codes(TRACE_RECONCILE_PASS, ("TRC001", "TRC002", "TRC003"))


def reconcile_findings(trace: Trace, cluster: "Cluster") -> List[Finding]:
    """Compare a trace's link accounts against the cluster's live ledgers."""
    findings: List[Finding] = []
    accounts = {account.name: account for account in trace.links}
    seen = set()
    for link in cluster.topology.links:
        ledger = link.ledger
        account = accounts.get(link.name)
        if account is None:
            if len(ledger) > 0:
                findings.append(Finding(
                    TRACE_RECONCILE_PASS, Severity.ERROR, "TRC002",
                    f"link {link.name!r} moved "
                    f"{ledger.total_bytes:.6g} bytes but has no account "
                    f"in the trace",
                    subject=link.name,
                ))
            continue
        seen.add(link.name)
        if (account.total_bytes != ledger.total_bytes
                or account.record_count != len(ledger)):
            findings.append(Finding(
                TRACE_RECONCILE_PASS, Severity.ERROR, "TRC001",
                f"link {link.name!r}: trace accounts "
                f"{account.total_bytes!r} bytes in {account.record_count} "
                f"records, ledger holds {ledger.total_bytes!r} bytes in "
                f"{len(ledger)} records",
                subject=link.name,
            ))
    for name in sorted(set(accounts) - seen):
        findings.append(Finding(
            TRACE_RECONCILE_PASS, Severity.ERROR, "TRC002",
            f"trace accounts for link {name!r} which the cluster "
            f"topology does not contain",
            subject=name,
        ))
    flow_bytes = trace.flow_bytes_by_link()
    for name in sorted(flow_bytes):
        account = accounts.get(name)
        total = account.total_bytes if account is not None else 0.0
        slack = abs(total) * FLOW_BYTES_RTOL
        if flow_bytes[name] > total + slack:
            findings.append(Finding(
                TRACE_RECONCILE_PASS, Severity.ERROR, "TRC003",
                f"link {name!r}: flow spans attribute "
                f"{flow_bytes[name]:.6g} bytes but the account holds only "
                f"{total:.6g}",
                subject=name,
            ))
    return findings


def reconcile_report(trace: Trace, cluster: "Cluster") -> Report:
    """:func:`reconcile_findings` wrapped in a standard analysis report."""
    report = Report(passes_run=[TRACE_RECONCILE_PASS])
    report.extend(reconcile_findings(trace, cluster))
    return report
