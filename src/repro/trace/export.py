"""Chrome Trace Event export, loading, and schema validation.

:func:`to_chrome` turns a :class:`~repro.trace.model.Trace` into the
Chrome Trace Event JSON object format that Perfetto and
``chrome://tracing`` load directly:

* one *process* per rank (``pid`` = rank) with one *thread* per lane
  (compute / communication / host-IO), carrying complete ``X`` events
  for every kernel span;
* per-rank memory counters attached to the rank's process and per-link
  utilization counters under a dedicated "links" process (``C`` events);
* flow transfers, collective phases, and fault windows as async ``b``/
  ``e`` pairs under their own processes, so they render as named tracks.

The native schema rides along under the top-level ``"repro"`` key —
trace viewers ignore unknown keys, so one file serves both the viewer
and the query/diff/reconcile tooling (:func:`load_trace` reads it back).

:func:`validate_chrome_trace` is the schema check CI runs on exported
files: phases restricted to ``X``/``C``/``M``/``b``/``e``, ``X``
timestamps monotone per ``(pid, tid)`` track, every ``b`` matched by an
``e``, and every ``X`` categorized with a known kernel kind.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from ..errors import ConfigurationError
from ..runtime.kernels import KernelKind
from ..units import US
from .model import TRACE_SCHEMA, Lane, Trace

#: Seconds-to-microseconds: Chrome Trace timestamps are in us.
S_TO_US = 1.0 / US

#: Synthetic process ids for the non-rank tracks (ranks use pid = rank).
LINKS_PID = 9000
FLOWS_PID = 9001
COLLECTIVES_PID = 9002
FAULTS_PID = 9003

#: Chrome reserved color names per kernel kind (every kind must map).
CHROME_COLORS: Dict[KernelKind, str] = {
    KernelKind.GEMM: "thread_state_running",
    KernelKind.ELEMENTWISE: "rail_animation",
    KernelKind.TRANSFORM: "rail_response",
    KernelKind.MEMORY: "rail_load",
    KernelKind.OPTIMIZER: "cq_build_passed",
    KernelKind.NCCL_ALL_REDUCE: "rail_idle",
    KernelKind.NCCL_REDUCE: "cq_build_attempt_passed",
    KernelKind.NCCL_ALL_GATHER: "startup",
    KernelKind.NCCL_BROADCAST: "good",
    KernelKind.NCCL_SEND_RECV: "generic_work",
    KernelKind.HOST_TRANSFER: "yellow",
    KernelKind.NVME_IO: "olive",
    KernelKind.CPU_OPTIMIZER: "thread_state_runnable",
    KernelKind.IDLE: "grey",
}


def to_chrome(trace: Trace) -> Dict[str, object]:
    """Render the trace as a Chrome Trace Event JSON object."""
    events: List[Dict[str, object]] = []

    # -- process/thread metadata ----------------------------------------------
    for rank in trace.ranks:
        events.append(_meta("process_name", rank, 0, f"rank{rank}"))
        events.append(_meta("process_sort_index", rank, 0, rank))
        for lane in Lane:
            events.append(_meta("thread_name", rank, int(lane), str(lane)))
    for pid, name in (
        (LINKS_PID, "links"),
        (FLOWS_PID, "flows"),
        (COLLECTIVES_PID, "collectives"),
        (FAULTS_PID, "faults"),
    ):
        events.append(_meta("process_name", pid, 0, name))
        events.append(_meta("process_sort_index", pid, 0, pid))

    # -- rank-lane spans as complete X events (sorted: monotone per track) -----
    for span in sorted(trace.spans,
                       key=lambda s: (s.rank, int(s.lane), s.start, s.end)):
        events.append({
            "name": span.name,
            "cat": span.kind.value,
            "ph": "X",
            "ts": span.start * S_TO_US,
            "dur": span.duration * S_TO_US,
            "pid": span.rank,
            "tid": int(span.lane),
            "cname": CHROME_COLORS[span.kind],
        })

    # -- counters --------------------------------------------------------------
    for track in trace.counters:
        pid = LINKS_PID
        if track.name.startswith("rank"):
            pid = int(track.name[4:track.name.index(":")])
        for index, value in enumerate(track.values):
            events.append({
                "name": track.name,
                "ph": "C",
                "ts": (track.start + index * track.period) * S_TO_US,
                "pid": pid,
                "tid": 0,
                "args": {track.unit: value},
            })

    # -- async tracks: flows, collectives, faults ------------------------------
    for flow in trace.flows:
        args = {
            "bytes": flow.num_bytes,
            "src": flow.source,
            "dst": flow.destination,
            "links": list(flow.links),
            "completed": flow.completed,
        }
        name = flow.label or f"flow{flow.flow_id}"
        events.append(_async("b", name, "flow", flow.flow_id, FLOWS_PID,
                             flow.start, args))
        events.append(_async("e", name, "flow", flow.flow_id, FLOWS_PID,
                             flow.end))
    for index, coll in enumerate(trace.collectives):
        args = {
            "payload_bytes": coll.payload_bytes,
            "launch_count": coll.launch_count,
            "ranks": list(coll.ranks),
        }
        name = f"{coll.comm}[{coll.group_index}]:{coll.kind}"
        events.append(_async("b", name, "collective", index, COLLECTIVES_PID,
                             coll.start, args))
        events.append(_async("e", name, "collective", index, COLLECTIVES_PID,
                             coll.end))
    for index, fault in enumerate(trace.faults):
        args = {"magnitude": fault.magnitude, "target": fault.target}
        name = f"{fault.kind}:{fault.target}"
        events.append(_async("b", name, "fault", index, FAULTS_PID,
                             fault.start, args))
        events.append(_async("e", name, "fault", index, FAULTS_PID,
                             fault.end))

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": TRACE_SCHEMA},
        "repro": trace.to_dict(),
    }


def _meta(name: str, pid: int, tid: int, value: object) -> Dict[str, object]:
    key = "sort_index" if name.endswith("sort_index") else "name"
    return {"name": name, "ph": "M", "ts": 0, "pid": pid, "tid": tid,
            "args": {key: value}}


def _async(ph: str, name: str, cat: str, event_id: int, pid: int,
           when: float, args: object = None) -> Dict[str, object]:
    event: Dict[str, object] = {
        "name": name, "cat": cat, "ph": ph, "ts": when * S_TO_US,
        "pid": pid, "tid": 0, "id": str(event_id),
    }
    if args is not None:
        event["args"] = args
    return event


def write_trace(trace: Trace, path: str) -> None:
    """Write the Chrome Trace JSON (with the native schema embedded)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome(trace), handle, separators=(",", ":"))
        handle.write("\n")


def load_trace(path: str) -> Trace:
    """Read a trace written by :func:`write_trace` back into a :class:`Trace`."""
    return trace_from_document(load_document(path))


def load_document(path: str) -> Dict[str, object]:
    """Read an exported trace file as the raw Chrome Trace JSON object."""
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as error:
        raise ConfigurationError(f"{path}: cannot read trace file "
                                 f"({error})") from error
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"{path}: not valid JSON "
                                 f"({error})") from error
    if not isinstance(doc, dict):
        raise ConfigurationError(f"{path}: not a Chrome Trace JSON object")
    return doc


def trace_from_document(doc: Dict[str, object]) -> Trace:
    native = doc.get("repro")
    if not isinstance(native, dict):
        raise ConfigurationError(
            "trace file has no embedded native schema under 'repro'"
        )
    return Trace.from_dict(native)


_VALID_PHASES = frozenset({"X", "C", "M", "b", "e"})
_KERNEL_VALUES = frozenset(kind.value for kind in KernelKind)


def validate_chrome_trace(doc: Dict[str, object]) -> List[str]:
    """Schema-check an exported document; returns problem strings.

    Rules: ``traceEvents`` must be a list of events whose phases are all
    in ``{X, C, M, b, e}``; every event needs ``name``/``pid``/``tid``
    and a non-negative ``ts``; ``X`` events need a non-negative ``dur``,
    a known kernel-kind ``cat``, and monotone non-decreasing ``ts``
    within their ``(pid, tid)`` track; every async ``b`` needs exactly
    one matching ``e`` (same ``cat``/``id``/``pid``) that does not
    precede it; ``C`` events need numeric args.
    """
    problems: List[str] = []
    raw = doc.get("traceEvents")
    if not isinstance(raw, list):
        return ["traceEvents is missing or not a list"]
    last_ts: Dict[Tuple[object, object], float] = {}
    open_async: Dict[Tuple[object, object, object], Tuple[int, float]] = {}
    for index, event in enumerate(raw):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _VALID_PHASES:
            problems.append(f"{where}: unsupported phase {ph!r}")
            continue
        for field in ("name", "pid", "tid"):
            if field not in event:
                problems.append(f"{where}: missing {field!r}")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
            continue
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event with bad dur {dur!r}")
            cat = event.get("cat")
            if cat not in _KERNEL_VALUES:
                problems.append(
                    f"{where}: X event cat {cat!r} is not a kernel kind"
                )
            track = (event.get("pid"), event.get("tid"))
            if ts < last_ts.get(track, 0.0):
                problems.append(
                    f"{where}: ts {ts} regresses on track pid={track[0]} "
                    f"tid={track[1]}"
                )
            last_ts[track] = max(last_ts.get(track, 0.0), float(ts))
        elif ph == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                problems.append(f"{where}: C event without numeric args")
        elif ph == "b":
            key = (event.get("cat"), event.get("id"), event.get("pid"))
            if key in open_async:
                problems.append(f"{where}: duplicate open async id {key!r}")
            open_async[key] = (index, float(ts))
        elif ph == "e":
            key = (event.get("cat"), event.get("id"), event.get("pid"))
            opened = open_async.pop(key, None)
            if opened is None:
                problems.append(f"{where}: e event with no matching b {key!r}")
            elif float(ts) < opened[1]:
                problems.append(
                    f"{where}: e event precedes its b (id {key!r})"
                )
    for key, (index, _ts) in sorted(open_async.items(), key=lambda kv: kv[1]):
        problems.append(
            f"traceEvents[{index}]: b event with no matching e {key!r}"
        )
    return problems
