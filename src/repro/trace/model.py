"""The trace data model: spans, counter tracks, link accounts.

A :class:`Trace` is the machine-readable record of one simulated run —
the single source of truth for time-domain data.  It holds:

* :class:`Span` — one interval of activity on one rank's lane (a kernel,
  a collective the rank waited in, a host/NVMe transfer, idle time).
  This is the same record the executor has always written into the
  Fig.-5 timeline; :class:`~repro.telemetry.timeline.Timeline` is now a
  facade over a list of these.
* :class:`CollectiveSpan` — one collective *phase*: the rendezvous-to-
  completion window of one keyed collective on one communicator group,
  tagged with the group's ranks and payload.
* :class:`FlowSpan` — one fluid-flow transfer: activation to
  completion, with the traversed link names and total bytes, recorded
  live by the :class:`~repro.trace.recorder.TraceRecorder`.
* :class:`FaultSpan` — one injected fault window (apply to revert).
* :class:`LinkAccount` — per-link byte totals/record counts taken from
  the bandwidth ledgers; :mod:`~repro.trace.reconcile` asserts these
  equal the ledgers exactly after a JSON round trip.
* :class:`CounterTrack` — a regular-grid sample series (per-link
  instantaneous bytes/s, per-rank device/host memory).

Everything serializes to a compact native JSON schema
(:data:`TRACE_SCHEMA`) via :meth:`Trace.to_dict` / :meth:`Trace.from_dict`;
:mod:`~repro.trace.export` wraps it in Chrome Trace Event JSON.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..runtime.kernels import KernelKind

#: Native schema identifier; bump on incompatible layout changes.
TRACE_SCHEMA = "repro-trace/1"


class Lane(enum.IntEnum):
    """Concurrent activity lanes per rank (akin to CUDA streams)."""

    COMPUTE = 0
    COMMUNICATION = 1
    HOST_IO = 2

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name.lower()


@dataclass(frozen=True)
class Span:
    """One interval of activity on one rank's lane."""

    rank: int
    lane: Lane
    kind: KernelKind
    name: str
    start: float
    end: float
    #: True for spans the hybrid extrapolator replicated analytically
    #: rather than simulated (:mod:`repro.sim.fastpath.extrapolate`).
    synthetic: bool = False

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "rank": self.rank,
            "lane": str(self.lane),
            "kind": self.kind.value,
            "name": self.name,
            "start": self.start,
            "end": self.end,
        }
        # Omitted when False so full-fidelity traces serialize unchanged.
        if self.synthetic:
            payload["synthetic"] = True
        return payload

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "Span":
        return Span(
            rank=int(data["rank"]),  # type: ignore[arg-type]
            lane=Lane[str(data["lane"]).upper()],
            kind=KernelKind(data["kind"]),
            name=str(data["name"]),
            start=float(data["start"]),  # type: ignore[arg-type]
            end=float(data["end"]),  # type: ignore[arg-type]
            synthetic=bool(data.get("synthetic", False)),  # type: ignore[union-attr]
        )


@dataclass(frozen=True)
class CollectiveSpan:
    """One collective phase on one communicator group."""

    comm: str
    group_index: int
    kind: str
    payload_bytes: float
    launch_count: int
    ranks: Tuple[int, ...]
    start: float
    end: float
    #: True for spans the hybrid extrapolator replicated analytically.
    synthetic: bool = False

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "comm": self.comm,
            "group": self.group_index,
            "kind": self.kind,
            "payload_bytes": self.payload_bytes,
            "launch_count": self.launch_count,
            "ranks": list(self.ranks),
            "start": self.start,
            "end": self.end,
        }
        if self.synthetic:
            payload["synthetic"] = True
        return payload

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "CollectiveSpan":
        return CollectiveSpan(
            comm=str(data["comm"]),
            group_index=int(data["group"]),  # type: ignore[arg-type]
            kind=str(data["kind"]),
            payload_bytes=float(data["payload_bytes"]),  # type: ignore[arg-type]
            launch_count=int(data["launch_count"]),  # type: ignore[arg-type]
            ranks=tuple(int(r) for r in data["ranks"]),  # type: ignore[union-attr]
            start=float(data["start"]),  # type: ignore[arg-type]
            end=float(data["end"]),  # type: ignore[arg-type]
            synthetic=bool(data.get("synthetic", False)),  # type: ignore[union-attr]
        )


@dataclass(frozen=True)
class FlowSpan:
    """One fluid-flow transfer, activation to completion."""

    flow_id: int
    label: str
    source: str
    destination: str
    links: Tuple[str, ...]
    num_bytes: float
    start: float
    end: float
    #: False when the run ended with the flow still streaming (the span's
    #: ``num_bytes`` then covers only what actually moved).
    completed: bool = True
    #: True for spans the hybrid extrapolator replicated analytically.
    synthetic: bool = False

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "id": self.flow_id,
            "label": self.label,
            "src": self.source,
            "dst": self.destination,
            "links": list(self.links),
            "bytes": self.num_bytes,
            "start": self.start,
            "end": self.end,
            "completed": self.completed,
        }
        if self.synthetic:
            payload["synthetic"] = True
        return payload

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "FlowSpan":
        return FlowSpan(
            flow_id=int(data["id"]),  # type: ignore[arg-type]
            label=str(data["label"]),
            source=str(data["src"]),
            destination=str(data["dst"]),
            links=tuple(str(name) for name in data["links"]),  # type: ignore[union-attr]
            num_bytes=float(data["bytes"]),  # type: ignore[arg-type]
            start=float(data["start"]),  # type: ignore[arg-type]
            end=float(data["end"]),  # type: ignore[arg-type]
            completed=bool(data.get("completed", True)),  # type: ignore[union-attr]
            synthetic=bool(data.get("synthetic", False)),  # type: ignore[union-attr]
        )


@dataclass(frozen=True)
class FaultSpan:
    """One injected fault window (apply to revert)."""

    kind: str
    target: str
    magnitude: float
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "target": self.target,
            "magnitude": self.magnitude,
            "start": self.start,
            "end": self.end,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "FaultSpan":
        return FaultSpan(
            kind=str(data["kind"]),
            target=str(data["target"]),
            magnitude=float(data["magnitude"]),  # type: ignore[arg-type]
            start=float(data["start"]),  # type: ignore[arg-type]
            end=float(data["end"]),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class LinkAccount:
    """Per-link byte totals from one link's bandwidth ledger."""

    name: str
    link_class: str
    total_bytes: float
    record_count: int
    degraded: Tuple[Tuple[float, float], ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "class": self.link_class,
            "bytes": self.total_bytes,
            "records": self.record_count,
            "degraded": [list(window) for window in self.degraded],
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "LinkAccount":
        return LinkAccount(
            name=str(data["name"]),
            link_class=str(data["class"]),
            total_bytes=float(data["bytes"]),  # type: ignore[arg-type]
            record_count=int(data["records"]),  # type: ignore[arg-type]
            degraded=tuple(
                (float(lo), float(hi))
                for lo, hi in data.get("degraded", [])  # type: ignore[union-attr]
            ),
        )


@dataclass(frozen=True)
class CounterTrack:
    """A regular-grid sample series for one counter."""

    name: str
    unit: str
    start: float
    period: float
    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigurationError("counter period must be positive")

    @property
    def end(self) -> float:
        return self.start + self.period * len(self.values)

    def integral(self) -> float:
        """Sum of value x period — total bytes for a bytes/s track."""
        return sum(self.values) * self.period

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "unit": self.unit,
            "start": self.start,
            "period": self.period,
            "values": list(self.values),
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "CounterTrack":
        return CounterTrack(
            name=str(data["name"]),
            unit=str(data["unit"]),
            start=float(data["start"]),  # type: ignore[arg-type]
            period=float(data["period"]),  # type: ignore[arg-type]
            values=tuple(float(v) for v in data["values"]),  # type: ignore[union-attr]
        )


@dataclass
class Trace:
    """Everything one traced run recorded, in one serializable container."""

    meta: Dict[str, object] = field(default_factory=dict)
    spans: List[Span] = field(default_factory=list)
    collectives: List[CollectiveSpan] = field(default_factory=list)
    flows: List[FlowSpan] = field(default_factory=list)
    faults: List[FaultSpan] = field(default_factory=list)
    links: List[LinkAccount] = field(default_factory=list)
    counters: List[CounterTrack] = field(default_factory=list)

    # -- queries ---------------------------------------------------------------
    @property
    def ranks(self) -> List[int]:
        return sorted({span.rank for span in self.spans})

    @property
    def span_bounds(self) -> Tuple[float, float]:
        if not self.spans:
            return (0.0, 0.0)
        return (
            min(span.start for span in self.spans),
            max(span.end for span in self.spans),
        )

    def link_account(self, name: str) -> Optional[LinkAccount]:
        for account in self.links:
            if account.name == name:
                return account
        return None

    def counter(self, name: str) -> Optional[CounterTrack]:
        for track in self.counters:
            if track.name == name:
                return track
        return None

    def per_link_bytes(self) -> Dict[str, float]:
        """Total bytes over each link, from the link accounts."""
        return {account.name: account.total_bytes for account in self.links}

    def flow_bytes_by_link(self) -> Dict[str, float]:
        """Bytes each link carried for *flow* traffic, from flow spans.

        A flow charges its full byte count to every link it traverses
        (the ledger convention), so this is directly comparable to the
        link accounts minus any direct (non-flow) ledger charges.
        """
        out: Dict[str, float] = {}
        for flow in self.flows:
            for link_name in flow.links:
                out[link_name] = out.get(link_name, 0.0) + flow.num_bytes
        return out

    # -- serialization ---------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": TRACE_SCHEMA,
            "meta": dict(self.meta),
            "spans": [span.to_dict() for span in self.spans],
            "collectives": [c.to_dict() for c in self.collectives],
            "flows": [f.to_dict() for f in self.flows],
            "faults": [f.to_dict() for f in self.faults],
            "links": [account.to_dict() for account in self.links],
            "counters": [track.to_dict() for track in self.counters],
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "Trace":
        schema = data.get("schema")
        if schema != TRACE_SCHEMA:
            raise ConfigurationError(
                f"unsupported trace schema {schema!r} (want {TRACE_SCHEMA!r})"
            )
        return Trace(
            meta=dict(data.get("meta", {})),  # type: ignore[arg-type]
            spans=[Span.from_dict(d) for d in data.get("spans", [])],  # type: ignore[union-attr]
            collectives=[
                CollectiveSpan.from_dict(d)
                for d in data.get("collectives", [])  # type: ignore[union-attr]
            ],
            flows=[FlowSpan.from_dict(d) for d in data.get("flows", [])],  # type: ignore[union-attr]
            faults=[FaultSpan.from_dict(d) for d in data.get("faults", [])],  # type: ignore[union-attr]
            links=[
                LinkAccount.from_dict(d) for d in data.get("links", [])  # type: ignore[union-attr]
            ],
            counters=[
                CounterTrack.from_dict(d)
                for d in data.get("counters", [])  # type: ignore[union-attr]
            ],
        )
