"""Trace query API: filtering, busy/idle/overlap fractions, byte accounting.

All functions are pure views over span lists / a :class:`Trace`; nothing
here mutates the trace.  The busy/idle semantics intentionally match the
historical :class:`~repro.telemetry.timeline.Timeline` queries (idle
spans are excluded from busy time; fractions are clamped to 1.0 against
the all-rank wall clock).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Tuple

from ..runtime.kernels import KernelKind
from .model import Lane, Span, Trace


def filter_spans(spans: Iterable[Span], *, rank: Optional[int] = None,
                 lane: Optional[Lane] = None,
                 kind: Optional[KernelKind] = None) -> List[Span]:
    """Spans matching every given criterion, in input order."""
    out: Iterable[Span] = spans
    if rank is not None:
        out = [s for s in out if s.rank == rank]
    if lane is not None:
        out = [s for s in out if s.lane is lane]
    if kind is not None:
        out = [s for s in out if s.kind is kind]
    return list(out)


def span_bounds(spans: Iterable[Span]) -> Tuple[float, float]:
    spans = list(spans)
    if not spans:
        return (0.0, 0.0)
    return (min(s.start for s in spans), max(s.end for s in spans))


def busy_time_by_kind(spans: Iterable[Span], rank: int,
                      lane: Optional[Lane] = None) -> Dict[KernelKind, float]:
    out: Dict[KernelKind, float] = defaultdict(float)
    for s in filter_spans(spans, rank=rank, lane=lane):
        out[s.kind] += s.duration
    return dict(out)


def compute_busy_fraction(spans: Iterable[Span], rank: int) -> float:
    """Fraction of wall time the GPU compute lane is non-idle.

    The complement is Fig. 5's "white" idle time — communication or
    offload stalls the GPU cannot hide.
    """
    spans = list(spans)
    start, end = span_bounds(spans)
    wall = end - start
    if wall <= 0:
        return 0.0
    busy = sum(
        s.duration for s in filter_spans(spans, rank=rank, lane=Lane.COMPUTE)
        if s.kind is not KernelKind.IDLE
    )
    return min(1.0, busy / wall)


def communication_time(spans: Iterable[Span], rank: int) -> float:
    return sum(
        s.duration
        for s in filter_spans(spans, rank=rank, lane=Lane.COMMUNICATION)
    )


def idle_fraction(spans: Iterable[Span], rank: int) -> float:
    """Complement of :func:`compute_busy_fraction`."""
    return 1.0 - compute_busy_fraction(spans, rank)


def _merged_busy_intervals(spans: Iterable[Span]) -> List[Tuple[float, float]]:
    """Union of the given spans' intervals as sorted disjoint windows."""
    intervals = sorted(
        (s.start, s.end) for s in spans if s.end > s.start
    )
    merged: List[Tuple[float, float]] = []
    for lo, hi in intervals:
        if merged and lo <= merged[-1][1]:
            last_lo, last_hi = merged[-1]
            merged[-1] = (last_lo, max(last_hi, hi))
        else:
            merged.append((lo, hi))
    return merged


def overlap_fraction(spans: Iterable[Span], rank: int,
                     lane_a: Lane = Lane.COMPUTE,
                     lane_b: Lane = Lane.COMMUNICATION) -> float:
    """Fraction of ``lane_b`` busy time hidden under ``lane_a`` activity.

    This is the paper's overlap question: how much communication runs
    concurrently with compute (1.0 = fully hidden, 0.0 = fully exposed).
    Idle spans never count as activity on either lane.
    """
    spans = list(spans)
    a = _merged_busy_intervals(
        s for s in filter_spans(spans, rank=rank, lane=lane_a)
        if s.kind is not KernelKind.IDLE
    )
    b = _merged_busy_intervals(
        s for s in filter_spans(spans, rank=rank, lane=lane_b)
        if s.kind is not KernelKind.IDLE
    )
    total_b = sum(hi - lo for lo, hi in b)
    if total_b <= 0:
        return 0.0
    overlap = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            overlap += hi - lo
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return min(1.0, overlap / total_b)


def per_link_bytes(trace: Trace) -> Dict[str, float]:
    """Total bytes over each link, from the trace's link accounts."""
    return trace.per_link_bytes()


def flow_bytes_by_link(trace: Trace) -> Dict[str, float]:
    """Bytes each link carried for flow traffic, from the flow spans."""
    return trace.flow_bytes_by_link()
