"""Fig.-5-style ASCII lane rendering over trace spans.

This is the single implementation of the at-a-glance timeline rendering;
:class:`~repro.telemetry.timeline.Timeline` delegates here.  The binning
algorithm is unchanged from the original renderer on purpose — the
golden harness pins its output byte-for-byte.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ConfigurationError
from ..runtime.kernels import KernelKind
from .model import Lane, Span

#: Single-character glyphs for the ASCII rendering, by kernel kind.
GLYPHS: Dict[KernelKind, str] = {
    KernelKind.GEMM: "G",
    KernelKind.ELEMENTWISE: "e",
    KernelKind.TRANSFORM: "t",
    KernelKind.MEMORY: "m",
    KernelKind.OPTIMIZER: "O",
    KernelKind.NCCL_ALL_REDUCE: "R",
    KernelKind.NCCL_REDUCE: "r",
    KernelKind.NCCL_ALL_GATHER: "A",
    KernelKind.NCCL_BROADCAST: "B",
    KernelKind.NCCL_SEND_RECV: "s",
    KernelKind.HOST_TRANSFER: "H",
    KernelKind.NVME_IO: "N",
    KernelKind.CPU_OPTIMIZER: "C",
    KernelKind.IDLE: ".",
}


def render_rank(spans: Iterable[Span], rank: int, *, width: int = 100,
                window: Optional[Tuple[float, float]] = None) -> str:
    """ASCII rendering of one rank's lanes (Fig.-5 style).

    Each lane is a row of ``width`` characters; the dominant kernel kind
    within each time bin picks the glyph.  ``window`` defaults to the
    overall span bounds of *all* the given spans (all ranks), matching
    the historical Timeline behaviour so side-by-side rank renders share
    a time axis.
    """
    if width < 1:
        raise ConfigurationError("width must be positive")
    spans = list(spans)
    if window is not None:
        start, end = window
    elif spans:
        start = min(s.start for s in spans)
        end = max(s.end for s in spans)
    else:
        start, end = (0.0, 0.0)
    if end <= start:
        return ""
    bin_width = (end - start) / width
    rows = []
    for lane in Lane:
        occupancy: List[Dict[KernelKind, float]] = [
            defaultdict(float) for _ in range(width)
        ]
        for r in spans:
            if r.rank != rank or r.lane is not lane:
                continue
            lo = max(r.start, start)
            hi = min(r.end, end)
            if hi <= lo:
                continue
            first = int((lo - start) / bin_width)
            last = min(int((hi - start) / bin_width), width - 1)
            for b in range(first, last + 1):
                b_lo = start + b * bin_width
                b_hi = b_lo + bin_width
                overlap = min(hi, b_hi) - max(lo, b_lo)
                if overlap > 0:
                    occupancy[b][r.kind] += overlap
        chars = []
        for cell in occupancy:
            if not cell:
                chars.append(" ")
                continue
            kind = max(cell, key=lambda k: cell[k])
            chars.append(GLYPHS.get(kind, "?"))
        rows.append(f"{lane.name.lower():>13} |{''.join(chars)}|")
    return "\n".join(rows)


def legend_text() -> str:
    return "  ".join(
        f"{glyph}={kind.value}" for kind, glyph in GLYPHS.items()
    )
