"""Structured tracing & trace export — the simulator's observability spine.

The paper's core evidence is *time-resolved*: Fig. 5's nsys timelines and
Figs. 9/10/12's per-link bandwidth patterns explain every headline
number.  This package turns one simulated run into an inspectable trace:

* :mod:`~repro.trace.model` — spans (kernels, collective phases, flow
  transfers, fault windows), per-link byte accounts, and counter tracks
  in one :class:`Trace` container with a stable native JSON schema;
* :mod:`~repro.trace.recorder` — the opt-in :class:`TraceRecorder`
  threaded through the flow network and executor (zero-cost when
  absent, schedule-invariant when present) plus :func:`build_trace`;
* :mod:`~repro.trace.ascii` — the Fig.-5 ASCII lane renderer (the
  :class:`~repro.telemetry.timeline.Timeline` facade consumes it);
* :mod:`~repro.trace.query` — busy/idle/overlap fractions, span
  filtering, per-link byte accounting;
* :mod:`~repro.trace.export` — Chrome Trace Event JSON (Perfetto /
  ``chrome://tracing`` loadable) with the native schema embedded, and a
  schema validator;
* :mod:`~repro.trace.diff` — field-level comparison of two traces (span
  counts, per-kind busy time, counter integrals) for the golden harness
  and the determinism differ;
* :mod:`~repro.trace.reconcile` — validation pass asserting the trace's
  per-link bytes equal the flow-ledger totals (``TRC0xx`` findings).

CLI front ends: ``repro run --trace out.json`` and ``repro trace
diff/summary/check``.
"""

from .ascii import GLYPHS, legend_text, render_rank
from .diff import TraceDiff, diff_traces, summarize
from .export import (
    CHROME_COLORS,
    load_document,
    load_trace,
    to_chrome,
    trace_from_document,
    validate_chrome_trace,
    write_trace,
)
from .model import (
    TRACE_SCHEMA,
    CollectiveSpan,
    CounterTrack,
    FaultSpan,
    FlowSpan,
    Lane,
    LinkAccount,
    Span,
    Trace,
)
from .query import (
    busy_time_by_kind,
    communication_time,
    compute_busy_fraction,
    filter_spans,
    flow_bytes_by_link,
    idle_fraction,
    overlap_fraction,
    per_link_bytes,
    span_bounds,
)
from .recorder import DEFAULT_COUNTER_SAMPLES, TraceRecorder, build_trace
from .reconcile import (
    TRACE_RECONCILE_PASS,
    reconcile_findings,
    reconcile_report,
)

__all__ = [
    "CHROME_COLORS",
    "CollectiveSpan",
    "CounterTrack",
    "DEFAULT_COUNTER_SAMPLES",
    "FaultSpan",
    "FlowSpan",
    "GLYPHS",
    "Lane",
    "LinkAccount",
    "Span",
    "TRACE_RECONCILE_PASS",
    "TRACE_SCHEMA",
    "Trace",
    "TraceDiff",
    "TraceRecorder",
    "build_trace",
    "busy_time_by_kind",
    "communication_time",
    "compute_busy_fraction",
    "diff_traces",
    "filter_spans",
    "flow_bytes_by_link",
    "idle_fraction",
    "legend_text",
    "load_document",
    "load_trace",
    "overlap_fraction",
    "per_link_bytes",
    "reconcile_findings",
    "reconcile_report",
    "render_rank",
    "span_bounds",
    "summarize",
    "to_chrome",
    "trace_from_document",
    "validate_chrome_trace",
    "write_trace",
]
