"""Opt-in live recorder plus the post-run trace builder.

:class:`TraceRecorder` is the only live instrumentation tracing adds.
It is deliberately inert: every hook appends to a Python list and never
touches the engine (no events, no timeouts, no ``note_touch``), so an
attached recorder cannot perturb the schedule — the tracing-invariance
test pins this with the perturbation differ.  When no recorder is
attached the hook sites are a single ``is None`` check, which is the
zero-cost-when-disabled guarantee.

Everything else a trace holds is *derived after the run ends* by
:func:`build_trace`: rank-lane spans come from the executor's timeline,
fault windows from the injector's materialized plan, link accounts and
counter tracks from the bandwidth ledgers (sampled on a
:data:`DEFAULT_COUNTER_SAMPLES`-bin grid), and per-rank memory from the
pools.  Post-run derivation keeps the recording surface minimal and
guarantees the accounts reconcile with the ledgers by construction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from .model import (
    CollectiveSpan,
    CounterTrack,
    FaultSpan,
    FlowSpan,
    LinkAccount,
    Span,
    Trace,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hardware.cluster import Cluster
    from ..runtime.executor import ExecutionResult
    from ..sim.flows import Flow

#: Bins in each per-link utilization counter track.
DEFAULT_COUNTER_SAMPLES = 200


class TraceRecorder:
    """Collects flow and collective phases as they happen.

    Attach one to :class:`~repro.runtime.executor.Executor` via its
    ``trace_recorder`` argument; it threads the recorder into the flow
    network.  All methods are append-only.
    """

    def __init__(self) -> None:
        self.flows: List[FlowSpan] = []
        self.collectives: List[CollectiveSpan] = []
        self._open_flows: Dict[int, "Flow"] = {}

    # -- flow network hooks ----------------------------------------------------
    def flow_started(self, flow: "Flow") -> None:
        self._open_flows[flow.id] = flow

    def flow_finished(self, flow: "Flow", end: float) -> None:
        self._open_flows.pop(flow.id, None)
        self.flows.append(self._span_of(flow, end, completed=True))

    # -- executor hook ---------------------------------------------------------
    def collective_phase(self, comm: str, group_index: int, kind: str,
                         payload_bytes: float, launch_count: int,
                         ranks: Tuple[int, ...], start: float,
                         end: float) -> None:
        self.collectives.append(CollectiveSpan(
            comm=comm,
            group_index=group_index,
            kind=kind,
            payload_bytes=payload_bytes,
            launch_count=launch_count,
            ranks=ranks,
            start=start,
            end=end,
        ))

    def open_flow_ids(self) -> List[int]:
        """IDs of spans opened but not yet closed or drained.

        Non-empty after the run only if teardown skipped
        :meth:`drain_open_flows` — the trace-span leak the runtime
        sanitizer audits (``RES007``).
        """
        return sorted(self._open_flows)

    # -- finalization ----------------------------------------------------------
    def drain_open_flows(self, end: float) -> None:
        """Close out flows still streaming when the run ended.

        Their spans cover only the bytes that actually moved, and are
        marked ``completed=False``.
        """
        for flow_id in sorted(self._open_flows):
            flow = self._open_flows[flow_id]
            self.flows.append(self._span_of(flow, end, completed=False))
        self._open_flows.clear()

    @staticmethod
    def _span_of(flow: "Flow", end: float, *, completed: bool) -> FlowSpan:
        moved = flow.bytes_total - (0.0 if completed else flow.bytes_remaining)
        return FlowSpan(
            flow_id=flow.id,
            label=flow.label,
            source=flow.route.source,
            destination=flow.route.destination,
            links=tuple(link.name for link in flow.route.links),
            num_bytes=moved,
            start=flow.started_at if flow.started_at is not None else end,
            end=end,
            completed=completed,
        )


def build_trace(cluster: "Cluster", result: "ExecutionResult",
                recorder: Optional[TraceRecorder] = None, *,
                meta: Optional[Dict[str, object]] = None,
                counter_samples: int = DEFAULT_COUNTER_SAMPLES) -> Trace:
    """Assemble the full :class:`Trace` for one finished run.

    Call this *after* all ledger charges are in (in particular after
    :func:`repro.core.runner._record_host_background`), so the link
    accounts equal the final ledger state exactly.
    """
    trace = Trace(meta=dict(meta or {}))
    trace.meta.setdefault("total_time", result.total_time)
    trace.meta.setdefault("iterations", len(result.iteration_times))

    trace.spans = list(result.timeline.spans)
    if recorder is not None:
        recorder.drain_open_flows(result.total_time)
        trace.flows = list(recorder.flows)
        trace.collectives = list(recorder.collectives)

    trace.faults = [
        FaultSpan(
            kind=str(event.kind),
            target=event.target,
            magnitude=event.magnitude,
            start=event.start,
            end=event.end,
        )
        for event in result.fault_events
    ]

    duration = result.total_time
    for link in cluster.topology.links:
        ledger = link.ledger
        if len(ledger) == 0:
            continue
        trace.links.append(LinkAccount(
            name=link.name,
            link_class=str(link.link_class),
            total_bytes=ledger.total_bytes,
            record_count=len(ledger),
            degraded=tuple(ledger.degraded_intervals()),
        ))
        if duration > 0 and counter_samples > 0:
            trace.counters.append(CounterTrack(
                name=f"link:{link.name}",
                unit="bytes/s",
                start=0.0,
                period=duration / counter_samples,
                values=tuple(ledger.sample(0.0, duration, counter_samples)),
            ))

    for rank in range(cluster.num_gpus):
        gpu = cluster.gpu(rank)
        dram = cluster.dram_for_rank(rank)
        trace.counters.append(CounterTrack(
            name=f"rank{rank}:device_mem",
            unit="bytes",
            start=0.0,
            period=duration if duration > 0 else 1.0,
            values=(gpu.memory.used_bytes,),
        ))
        trace.counters.append(CounterTrack(
            name=f"rank{rank}:host_mem",
            unit="bytes",
            start=0.0,
            period=duration if duration > 0 else 1.0,
            values=(dram.memory.used_bytes,),
        ))
    return trace
