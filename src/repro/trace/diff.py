"""Trace summarization and field-level trace diffing.

:func:`summarize` flattens a trace into a stable ``{key: value}`` table
(span counts and busy seconds per lane/kind, flow and collective
totals, per-link bytes, counter integrals, fault counts) — the compact
artifact the golden harness snapshots.  :func:`diff_traces` compares two
summaries after rounding floats to :data:`SIG_FIGS` significant figures
(the same tolerance the determinism differ uses), reporting keys that
appeared, vanished, or changed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .model import Lane, Trace
from .query import busy_time_by_kind

#: Significant figures kept when comparing float fields (matches the
#: perturbation differ's tolerance; see repro.analysis.determinism).
SIG_FIGS = 6


def round_sig(value: float, sig_figs: int = SIG_FIGS) -> float:
    """Round to significant figures (0/NaN/inf pass through)."""
    if value == 0 or not math.isfinite(value):
        return value
    magnitude = math.floor(math.log10(abs(value)))
    return round(value, sig_figs - 1 - magnitude)


def summarize(trace: Trace) -> Dict[str, object]:
    """Flatten a trace into a deterministic, diffable key/value table."""
    out: Dict[str, object] = {
        "meta/total_time": trace.meta.get("total_time", 0.0),
        "meta/iterations": trace.meta.get("iterations", 0),
        "spans/count": len(trace.spans),
        "collectives/count": len(trace.collectives),
        "flows/count": len(trace.flows),
        "faults/count": len(trace.faults),
        "links/count": len(trace.links),
        "counters/count": len(trace.counters),
    }
    for lane in Lane:
        merged: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for rank in trace.ranks:
            for kind, busy in busy_time_by_kind(
                trace.spans, rank, lane
            ).items():
                merged[kind.value] = merged.get(kind.value, 0.0) + busy
            for span in trace.spans:
                if span.rank == rank and span.lane is lane:
                    counts[span.kind.value] = counts.get(span.kind.value, 0) + 1
        for kind_name in sorted(merged):
            prefix = f"spans/{lane}/{kind_name}"
            out[f"{prefix}/count"] = counts[kind_name]
            out[f"{prefix}/busy"] = merged[kind_name]
    out["flows/bytes"] = sum(f.num_bytes for f in trace.flows)
    out["collectives/payload_bytes"] = sum(
        c.payload_bytes for c in trace.collectives
    )
    for account in sorted(trace.links, key=lambda a: a.name):
        out[f"links/{account.name}/bytes"] = account.total_bytes
        out[f"links/{account.name}/records"] = account.record_count
    for track in sorted(trace.counters, key=lambda t: t.name):
        out[f"counters/{track.name}/integral"] = track.integral()
    return out


@dataclass
class TraceDiff:
    """Field-level differences between two trace summaries."""

    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    changed: Dict[str, Tuple[object, object]] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not (self.added or self.removed or self.changed)

    def render(self) -> str:
        if self.clean:
            return "traces match"
        lines: List[str] = []
        for key in self.removed:
            lines.append(f"- {key}")
        for key in self.added:
            lines.append(f"+ {key}")
        for key, (old, new) in self.changed.items():
            lines.append(f"~ {key}: {old!r} -> {new!r}")
        return "\n".join(lines)


def _normalize(value: object, sig_figs: int) -> object:
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return round_sig(value, sig_figs)
    return value


def diff_traces(a: Trace, b: Trace, *, sig_figs: int = SIG_FIGS) -> TraceDiff:
    """Compare two traces via their summaries (floats rounded)."""
    summary_a = summarize(a)
    summary_b = summarize(b)
    diff = TraceDiff()
    for key in sorted(set(summary_a) | set(summary_b)):
        if key not in summary_a:
            diff.added.append(key)
        elif key not in summary_b:
            diff.removed.append(key)
        else:
            old = _normalize(summary_a[key], sig_figs)
            new = _normalize(summary_b[key], sig_figs)
            if old != new:
                diff.changed[key] = (summary_a[key], summary_b[key])
    return diff
