"""Hardware substrate: devices, links, topology, and the paper's cluster.

The public surface re-exports the pieces most users need; deeper knobs live
in the individual modules.
"""

from .cluster import Cluster, ClusterSpec
from .cpu import CpuSpec, cpu_adam_step_time, make_cpu, make_dram
from .devices import Device, DeviceKind, MemoryPool
from .gpu import GpuSpec, make_gpu
from .link import BandwidthLedger, Link, LinkClass, LinkSpec, SERDES_CLASSES
from .nic import NicSpec, SwitchSpec, make_nic, make_switch
from .node import Node, NodeSpec
from .nvme import NvmeDrive, NvmeSpec, Raid0Volume
from .presets import (
    INTERFACE_TO_CLASS,
    TABLE_III,
    InterconnectEntry,
    dual_node_cluster,
    nvme_placement_node_spec,
    paper_cluster,
    paper_node_spec,
    single_node_cluster,
    uncontended_cluster,
)
from .serdes import (
    SerdesContentionModel,
    TrafficProfile,
    disabled_contention_model,
    route_crosses_socket,
)
from .topology import Route, Topology

__all__ = [
    "BandwidthLedger",
    "Cluster",
    "ClusterSpec",
    "CpuSpec",
    "Device",
    "DeviceKind",
    "GpuSpec",
    "INTERFACE_TO_CLASS",
    "InterconnectEntry",
    "Link",
    "LinkClass",
    "LinkSpec",
    "MemoryPool",
    "NicSpec",
    "Node",
    "NodeSpec",
    "NvmeDrive",
    "NvmeSpec",
    "Raid0Volume",
    "Route",
    "SERDES_CLASSES",
    "SerdesContentionModel",
    "SwitchSpec",
    "TABLE_III",
    "Topology",
    "TrafficProfile",
    "cpu_adam_step_time",
    "disabled_contention_model",
    "dual_node_cluster",
    "make_cpu",
    "make_dram",
    "make_gpu",
    "make_nic",
    "make_switch",
    "nvme_placement_node_spec",
    "paper_cluster",
    "paper_node_spec",
    "route_crosses_socket",
    "single_node_cluster",
    "uncontended_cluster",
]
