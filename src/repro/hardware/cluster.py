"""Multi-node cluster assembly (paper Fig. 2-a).

A :class:`Cluster` is N :class:`~repro.hardware.node.Node` instances whose
NICs connect through one Spectrum-class Ethernet switch running RoCE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import ConfigurationError, TopologyError
from ..units import US
from .devices import Device
from .link import Link, LinkClass, LinkSpec
from .nic import SwitchSpec, make_switch
from .node import Node, NodeSpec
from .serdes import SerdesContentionModel
from .topology import Topology


@dataclass(frozen=True)
class ClusterSpec:
    """Configuration for a cluster build."""

    num_nodes: int = 2
    node: NodeSpec = NodeSpec()
    switch: SwitchSpec = SwitchSpec()
    roce_latency: float = 1.0 * US
    contention: SerdesContentionModel = SerdesContentionModel()

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigurationError("cluster needs at least one node")
        if self.num_nodes * self.node.nics_per_node > self.switch.ports:
            raise ConfigurationError("not enough switch ports for the NICs")


class Cluster:
    """The full simulated machine: nodes, switch, and topology graph."""

    def __init__(self, spec: ClusterSpec = ClusterSpec()) -> None:
        self.spec = spec
        self.topology = Topology(contention=spec.contention)
        self.nodes: List[Node] = [
            Node(i, spec.node, self.topology) for i in range(spec.num_nodes)
        ]
        self.switch: Optional[Device] = None
        if spec.num_nodes > 1:
            self._wire_switch()

    def _wire_switch(self) -> None:
        self.switch = make_switch("switch0", self.spec.switch)
        self.topology.add_device(self.switch)
        roce_spec = LinkSpec(
            link_class=LinkClass.ROCE,
            bandwidth_per_direction=self.spec.switch.port_bandwidth_per_direction,
            latency=self.spec.roce_latency,
            efficiency=self.spec.node.nic.efficiency,
        )
        for node in self.nodes:
            for nic in node.nics:
                self.topology.add_link(Link(
                    f"{nic.name}/roce",
                    roce_spec,
                    nic.name,
                    self.switch.name,
                ))

    # -- convenience views -----------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def gpus_per_node(self) -> int:
        return self.spec.node.gpus_per_node

    @property
    def num_gpus(self) -> int:
        return sum(len(n.gpus) for n in self.nodes)

    def all_gpus(self) -> List[Device]:
        return [gpu for node in self.nodes for gpu in node.gpus]

    def gpu(self, rank: int) -> Device:
        """Global-rank to GPU device (rank = node * gpus_per_node + local)."""
        if not 0 <= rank < self.num_gpus:
            raise TopologyError(f"GPU rank {rank} out of range (0..{self.num_gpus - 1})")
        node = self.nodes[rank // self.gpus_per_node]
        return node.gpus[rank % self.gpus_per_node]

    def node_of_rank(self, rank: int) -> Node:
        if not 0 <= rank < self.num_gpus:
            raise TopologyError(f"GPU rank {rank} out of range (0..{self.num_gpus - 1})")
        return self.nodes[rank // self.gpus_per_node]

    def dram_for_rank(self, rank: int) -> Device:
        """The host-memory endpoint on the same socket as a GPU rank."""
        node = self.node_of_rank(rank)
        gpu = self.gpu(rank)
        return node.drams[gpu.socket_index or 0]

    def total_gpu_memory(self) -> float:
        return sum(n.total_gpu_memory() for n in self.nodes)

    def total_host_memory(self) -> float:
        return sum(n.total_host_memory() for n in self.nodes)

    def reset(self) -> None:
        """Clear every ledger, memory pool, NVMe cache, and injected fault
        state (link degradations, drive slowdowns) for a fresh run."""
        self.topology.reset_ledgers()
        for link in self.topology.links:
            link.reset_capacity()
        for device in self.topology.devices:
            if device.memory is not None:
                device.memory.reset()
        for node in self.nodes:
            for drive in node.nvme_drives:
                drive.reset_cache()
                drive.clear_slowdown()
