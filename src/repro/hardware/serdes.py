"""AMD EPYC I/O-die SerDes contention model.

Section III-C4 of the paper observes that any data path that is forwarded
*between two x16 SerDes sets on the same I/O die* (PCIe<->PCIe, PCIe<->xGMI,
xGMI<->xGMI) attains roughly half the expected bandwidth under a sustained
streaming load, while paths between a SerDes set and the DRAM controllers
run at full speed.  The authors hypothesize contention in the
Infinity-Fabric intra-die crossbar between SerDes pairs.

We make that hypothesis an explicit, ablatable model.  A route is a
sequence of links joined at intermediate devices; every *joint* whose two
adjacent links are both SerDes-backed (xGMI or any PCIe flavour) is one
SerDes-to-SerDes forwarding event on one IOD.  NVLink, RoCE-wire, and DRAM
hops never count.  The derate is ``base ** 1 * extra ** (joints - 1)`` so
one contended IOD costs the calibrated base factor and each further
contended IOD erodes a bit more.

Published calibration points (Figs. 3 and 4; attained fraction of
theoretical RoCE bandwidth):

* same-socket CPU-RoCE  (DRAM->NIC both ends;       0 joints): 93 %
* cross-socket CPU-RoCE (DRAM->xGMI->NIC, one side; 1-2 joints): 47 %
* same-socket GPU-RoCE  (GPU->NIC both ends;        2 joints): 52 %
* cross-socket GPU-RoCE (GPU->xGMI->NIC both ends;  4 joints): 42 %
* cross-socket small-message latency is ~7x same-socket (Fig. 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from .link import Link, LinkClass, SERDES_CLASSES


class TrafficProfile(enum.Enum):
    """How a flow loads the fabric over time.

    SUSTAINED — a constant stream (stress-test kernels, Megatron-LM's
    continuous all-reduce traffic).  BURSTY — peak-and-trough collectives
    (DDP gradient buckets, ZeRO's phase-aligned all-gathers), which the
    paper found less prone to the crossbar contention (Section IV-E2).
    """

    SUSTAINED = "sustained"
    BURSTY = "bursty"


def serdes_joints(route: Sequence[Link]) -> int:
    """Count SerDes-to-SerDes forwarding joints along a route.

    Links appear in traversal order; consecutive links meet at one
    intermediate device (an EPYC IOD whenever both neighbours are
    SerDes-backed).  Each such meeting is one contended crossbar traversal.
    """
    joints = 0
    for previous, current in zip(route, list(route)[1:]):
        if (previous.link_class in SERDES_CLASSES
                and current.link_class in SERDES_CLASSES):
            joints += 1
    return joints


@dataclass(frozen=True)
class SerdesContentionModel:
    """Derating policy for SerDes-to-SerDes forwarding on EPYC IODs.

    Parameters
    ----------
    enabled:
        Master switch — the ablation bench disables it to show dual-node
        Megatron-LM recovering most of its lost throughput.
    sustained_factor:
        Bandwidth multiplier for the first contended joint under a
        SUSTAINED profile.  Calibrated to Fig. 4.
    bursty_factor:
        First-joint multiplier for BURSTY flows; the paper observes these
        are "somehow less prone" to the contention.
    per_extra_joint_factor:
        Additional multiplier for every contended joint past the first.
    latency_inflation:
        Small-message latency multiplier once any joint is contended
        (Fig. 3: cross-socket ~7x same-socket).
    """

    enabled: bool = True
    sustained_factor: float = 0.58
    bursty_factor: float = 0.88
    per_extra_joint_factor: float = 0.90
    latency_inflation: float = 5.6

    def contended_joints(self, route: Sequence[Link]) -> int:
        if not self.enabled:
            return 0
        return serdes_joints(route)

    def is_contended(self, route: Sequence[Link]) -> bool:
        return self.contended_joints(route) > 0

    def derate(self, route: Sequence[Link],
               profile: TrafficProfile = TrafficProfile.SUSTAINED) -> float:
        """Bandwidth multiplier in (0, 1] for ``route`` under ``profile``."""
        joints = self.contended_joints(route)
        if joints == 0:
            return 1.0
        base = (
            self.sustained_factor
            if profile is TrafficProfile.SUSTAINED
            else self.bursty_factor
        )
        return base * (self.per_extra_joint_factor ** (joints - 1))

    def latency_factor(self, route: Sequence[Link]) -> float:
        """Latency multiplier for contended routes."""
        joints = self.contended_joints(route)
        if joints == 0:
            return 1.0
        return self.latency_inflation * (1.05 ** (joints - 1))


def disabled_contention_model() -> SerdesContentionModel:
    """A no-op contention model for ablation studies."""
    return SerdesContentionModel(enabled=False)


def route_crosses_socket(route: Sequence[Link]) -> bool:
    """True when the route traverses an xGMI (inter-socket) hop."""
    return any(link.link_class is LinkClass.XGMI for link in route)
