"""Cluster topology graph and route resolution.

Devices are vertices; :class:`~repro.hardware.link.Link` objects are edges.
A :class:`Route` is the ordered list of links a transfer traverses between
two devices, e.g. for cross-socket GPU-RoCE traffic::

    node0/gpu0 --PCIe-GPU--> node0/cpu0 --xGMI--> node0/cpu1
               --PCIe-NIC--> node0/nic1 --RoCE--> switch0 ...

Routing is shortest-path by a weight that prefers fewer hops, then higher
bandwidth — which reproduces NCCL's transport selection (NVLink inside a
node, the same-socket NIC for inter-node traffic).  Each Route knows its
end-to-end latency and attainable bandwidth, including the EPYC SerDes
contention derate of :mod:`repro.hardware.serdes`.
"""

from __future__ import annotations

import hashlib
import heapq
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import TopologyError
from ..units import GB, Bytes, BytesPerSecond, Seconds
from .devices import Device
from .link import BandwidthLedger, Link, LinkClass
from .serdes import SerdesContentionModel, TrafficProfile


class Route:
    """An ordered path of links between two devices."""

    def __init__(self, source: str, destination: str, links: Sequence[Link],
                 contention: SerdesContentionModel) -> None:
        self.source = source
        self.destination = destination
        self.links: Tuple[Link, ...] = tuple(links)
        self._contention = contention

    def __len__(self) -> int:
        return len(self.links)

    def __iter__(self):
        return iter(self.links)

    @property
    def is_loopback(self) -> bool:
        return not self.links

    @property
    def link_classes(self) -> Tuple[LinkClass, ...]:
        return tuple(link.link_class for link in self.links)

    def crosses(self, link_class: LinkClass) -> bool:
        return any(link.link_class is link_class for link in self.links)

    @property
    def base_latency(self) -> Seconds:
        """Sum of per-hop latencies, before contention inflation."""
        return sum(link.latency for link in self.links)

    def latency(self) -> Seconds:
        """End-to-end small-message latency including SerDes queueing."""
        return self.base_latency * self._contention.latency_factor(self.links)

    def bandwidth(self, profile: TrafficProfile = TrafficProfile.SUSTAINED
                  ) -> BytesPerSecond:
        """Attainable bytes/s: bottleneck link x contention derate."""
        if self.is_loopback:
            return float("inf")
        bottleneck = min(link.capacity_per_direction for link in self.links)
        return bottleneck * self._contention.derate(self.links, profile)

    def transfer_time(self, num_bytes: Bytes,
                      profile: TrafficProfile = TrafficProfile.SUSTAINED
                      ) -> Seconds:
        """Seconds to move ``num_bytes`` over the route (latency + streaming)."""
        if self.is_loopback or num_bytes <= 0:
            return 0.0
        return self.latency() + num_bytes / self.bandwidth(profile)

    def record(self, start: Seconds, end: Seconds,
               num_bytes: Bytes) -> None:
        """Charge ``num_bytes`` over [start, end] to every link's ledger.

        Each link's record is stamped with its *current* degradation
        state; the flow network settles intervals before any capacity
        change is applied, so the stamp is valid for the whole interval.
        """
        for link in self.links:
            link.ledger.record(start, end, num_bytes,
                               degraded=link.is_degraded)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        hops = " -> ".join(str(link.link_class) for link in self.links)
        return f"Route({self.source} -> {self.destination}: {hops or 'loopback'})"


class Topology:
    """The device/link graph for one cluster."""

    def __init__(self, contention: Optional[SerdesContentionModel] = None) -> None:
        self.contention = contention if contention is not None else SerdesContentionModel()
        self._devices: Dict[str, Device] = {}
        self._links: List[Link] = []
        self._adjacency: Dict[str, List[Link]] = {}
        self._route_cache: Dict[Tuple[str, str], Route] = {}
        self._fingerprint: Optional[str] = None

    # -- construction -------------------------------------------------------
    def add_device(self, device: Device) -> Device:
        if device.name in self._devices:
            raise TopologyError(f"duplicate device name {device.name!r}")
        self._devices[device.name] = device
        self._adjacency.setdefault(device.name, [])
        return device

    def add_link(self, link: Link) -> Link:
        for end in (link.endpoint_a, link.endpoint_b):
            if end not in self._devices:
                raise TopologyError(
                    f"link {link.name!r} references unknown device {end!r}"
                )
        self._links.append(link)
        self._adjacency[link.endpoint_a].append(link)
        self._adjacency[link.endpoint_b].append(link)
        self._route_cache.clear()
        self._fingerprint = None
        return link

    # -- lookup --------------------------------------------------------------
    def device(self, name: str) -> Device:
        try:
            return self._devices[name]
        except KeyError:
            raise TopologyError(f"unknown device {name!r}") from None

    def has_device(self, name: str) -> bool:
        return name in self._devices

    @property
    def devices(self) -> Iterable[Device]:
        return self._devices.values()

    @property
    def links(self) -> Sequence[Link]:
        return tuple(self._links)

    def link_between(self, a: str, b: str) -> Link:
        """The direct link joining two adjacent devices."""
        for link in self._adjacency.get(a, ()):
            if link.connects(a, b):
                return link
        raise TopologyError(f"no direct link between {a!r} and {b!r}")

    def links_of_class(self, link_class: LinkClass) -> List[Link]:
        return [link for link in self._links if link.link_class is link_class]

    def links_of_device(self, name: str) -> List[Link]:
        """Every link with ``name`` as an endpoint (fault-injection blast
        radius of a device outage: a dark NIC takes its PCIe and RoCE
        attachments with it)."""
        if name not in self._devices:
            raise TopologyError(f"unknown device {name!r}")
        return list(self._adjacency.get(name, ()))

    # -- identity ------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable identity of the *static* fabric.

        A SHA-256 over every link's name, endpoints, multiplicity, and
        spec (class, rated bandwidth, latency, efficiency, duplexity)
        plus the SerDes contention parameters — everything a collective
        cost evaluation reads that does not vary during a run.  Two
        clusters built from the same preset share a fingerprint, so the
        fast path's collective-cost memo (:mod:`repro.sim.fastpath.memo`)
        can reuse entries across jobs; any wiring or calibration
        difference separates them.  Time-varying capacity (fault
        degradation) is deliberately excluded: that is the degradation
        stamp's job (:meth:`degradation_stamp`).
        """
        if self._fingerprint is None:
            contention = self.contention
            parts = [
                "contention|{}|{!r}|{!r}|{!r}|{!r}".format(
                    contention.enabled, contention.sustained_factor,
                    contention.bursty_factor,
                    contention.per_extra_joint_factor,
                    contention.latency_inflation,
                )
            ]
            for link in sorted(self._links, key=lambda item: item.name):
                spec = link.spec
                parts.append("|".join((
                    link.name, link.endpoint_a, link.endpoint_b,
                    str(link.count), str(spec.link_class),
                    repr(spec.bandwidth_per_direction), repr(spec.latency),
                    repr(spec.efficiency), repr(spec.duplex),
                )))
            body = "\n".join(parts)
            self._fingerprint = hashlib.sha256(
                body.encode("utf-8")
            ).hexdigest()
        return self._fingerprint

    def degradation_stamp(self) -> Tuple[Tuple[str, float], ...]:
        """The current fault-degradation state of the fabric.

        ``(link name, capacity fraction)`` for every link currently held
        below rated capacity, sorted by name; a healthy fabric stamps
        ``()``.  Combined with :meth:`fingerprint` this keys the
        collective-cost memo: degrading a link changes the stamp (so
        healthy-fabric entries cannot be served stale), and a fault
        reverting restores the empty stamp, re-validating them.
        """
        degraded = [(link.name, link.capacity_fraction)
                    for link in self._links if link.is_degraded]
        degraded.sort()
        return tuple(degraded)

    def ledgers_by_class(self) -> Dict[LinkClass, List[BandwidthLedger]]:
        out: Dict[LinkClass, List[BandwidthLedger]] = {}
        for link in self._links:
            out.setdefault(link.link_class, []).append(link.ledger)
        return out

    def reset_ledgers(self) -> None:
        for link in self._links:
            link.ledger.clear()

    # -- routing --------------------------------------------------------------
    def route(self, source: str, destination: str) -> Route:
        """Resolve (and cache) the preferred route between two devices."""
        key = (source, destination)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        if source not in self._devices:
            raise TopologyError(f"unknown source device {source!r}")
        if destination not in self._devices:
            raise TopologyError(f"unknown destination device {destination!r}")
        if source == destination:
            route = Route(source, destination, (), self.contention)
            self._route_cache[key] = route
            return route
        links = self._shortest_path(source, destination)
        route = Route(source, destination, links, self.contention)
        self._route_cache[key] = route
        return route

    def route_via(self, source: str, destination: str,
                  waypoints: Sequence[str]) -> Route:
        """Resolve a route forced through ``waypoints`` in order.

        The stress tests of Section III-C pin a test kernel's traffic
        through a *specific* NIC (same-socket vs. cross-socket); natural
        shortest-path routing would always pick the local NIC, so forced
        waypoints are required to reproduce the cross-socket scenarios.
        """
        stops = [source, *waypoints, destination]
        links: List[Link] = []
        for a, b in zip(stops, stops[1:]):
            if a == b:
                continue
            links.extend(self._shortest_path(a, b))
        return Route(source, destination, links, self.contention)

    def _shortest_path(self, source: str, destination: str) -> List[Link]:
        """Dijkstra over hop-dominant weights.

        Weight per edge = 1 + epsilon/bandwidth, so fewer hops always win
        and ties break toward the fattest pipe (NVLink over PCIe).
        """
        dist: Dict[str, float] = {source: 0.0}
        prev: Dict[str, Tuple[str, Link]] = {}
        heap: List[Tuple[float, str]] = [(0.0, source)]
        visited = set()
        while heap:
            d, name = heapq.heappop(heap)
            if name in visited:
                continue
            visited.add(name)
            if name == destination:
                break
            for link in self._adjacency[name]:
                neighbor = link.other_end(name)
                weight = 1.0 + 1e-3 / max(link.capacity_per_direction / GB, 1e-9)
                nd = d + weight
                if nd < dist.get(neighbor, float("inf")):
                    dist[neighbor] = nd
                    prev[neighbor] = (name, link)
                    heapq.heappush(heap, (nd, neighbor))
        if destination not in prev:
            raise TopologyError(f"no route from {source!r} to {destination!r}")
        path: List[Link] = []
        cursor = destination
        while cursor != source:
            parent, link = prev[cursor]
            path.append(link)
            cursor = parent
        path.reverse()
        return path
