"""Rendering of the cluster topology (paper Fig. 2 analog).

``render_node`` draws one XE8545's internal wiring — sockets, DRAM,
GPUs with their NVLink mesh, NICs, and NVMe drives with their socket
attachment — and ``render_cluster`` adds the switch fan-in.  Used by the
``repro topology`` CLI subcommand and handy when debugging placement
configurations.  ``render_cluster_json`` emits the same wiring as a
structured document (every device and link with its class, endpoints,
and rated bandwidth) for tooling: ``repro topology --json``.
"""

from __future__ import annotations

from typing import Dict, List

from .cluster import Cluster
from ..units import GB
from .devices import Device
from .link import Link, LinkClass
from .node import Node


def _gbps(value: float) -> str:
    return f"{value / GB:.0f}GB/s"


def render_node(node: Node) -> str:
    """One node's internal topology, Fig. 2-b style."""
    spec = node.spec
    lines: List[str] = []
    lines.append(f"+--- {node.name} (Dell PowerEdge XE8545) " + "-" * 24)
    dram_bw = _gbps(spec.cpu.dram_bandwidth)
    xgmi_bw = _gbps(2 * spec.xgmi_links * spec.xgmi_bandwidth_per_direction)
    lines.append(f"|  DRAM {dram_bw} x8ch == [cpu0] <= xGMI x{spec.xgmi_links} "
                 f"{xgmi_bw} => [cpu1] == x8ch {dram_bw} DRAM")
    for socket in range(2):
        gpus = [g for g in node.gpus if g.socket_index == socket]
        nics = [n for n in node.nics if n.socket_index == socket]
        drives = [d for d in node.nvme_drives
                  if d.device.socket_index == socket]
        parts = []
        if gpus:
            names = ",".join(g.name.split("/")[-1] for g in gpus)
            parts.append(f"{names} (PCIe4 x16 each)")
        if nics:
            names = ",".join(n.name.split("/")[-1] for n in nics)
            parts.append(f"{names} (PCIe4 x16)")
        if drives:
            names = ",".join(d.name.split("/")[-1] for d in drives)
            parts.append(f"{names} (PCIe4 x4 each)")
        lines.append(f"|  cpu{socket}: " + "; ".join(parts))
    pair_bw = _gbps(2 * spec.nvlink_links_per_pair
                    * spec.nvlink_bandwidth_per_direction)
    lines.append(f"|  NVLink mesh: every GPU pair x{spec.nvlink_links_per_pair} "
                 f"links = {pair_bw} bidirectional")
    lines.append("+" + "-" * 62)
    return "\n".join(lines)


def render_cluster(cluster: Cluster) -> str:
    """The whole cluster, Fig. 2-a style."""
    blocks = [render_node(node) for node in cluster.nodes]
    if cluster.switch is not None:
        roce = cluster.topology.links_of_class(LinkClass.ROCE)
        per_port = _gbps(roce[0].capacity_bidirectional) if roce else "?"
        fan_in = " | ".join(
            f"{node.name}:{len(node.nics)}xNIC" for node in cluster.nodes
        )
        blocks.append(
            f"[{cluster.switch.name}] NVIDIA Spectrum SN3700 "
            f"({per_port} RoCE per port) <== {fan_in}"
        )
    summary = (
        f"{cluster.num_nodes} node(s), {cluster.num_gpus} GPUs, "
        f"{cluster.total_gpu_memory() / GB:.0f} GB HBM, "
        f"{cluster.total_host_memory() / GB:.0f} GB DRAM"
    )
    return "\n\n".join(blocks + [summary])


def _device_json(device: Device) -> Dict[str, object]:
    out: Dict[str, object] = {
        "name": device.name,
        "kind": str(device.kind),
        "node": device.node_index,
        "socket": device.socket_index,
    }
    if device.memory is not None:
        out["memory_capacity_bytes"] = device.memory.capacity_bytes
    return out


def _link_json(link: Link) -> Dict[str, object]:
    return {
        "name": link.name,
        "class": str(link.link_class),
        "endpoints": [link.endpoint_a, link.endpoint_b],
        "count": link.count,
        "duplex": link.spec.duplex,
        "bandwidth_per_direction_bytes_per_s": link.spec.bandwidth_per_direction,
        "attainable_per_direction_bytes_per_s": link.base_capacity_per_direction,
        "latency_s": link.latency,
    }


def render_cluster_json(cluster: Cluster) -> Dict[str, object]:
    """The cluster wiring as a structured JSON-ready document.

    Mirrors what :func:`render_cluster` draws: every device (with kind,
    node/socket placement, and memory capacity where present) and every
    link (class, endpoints, aggregated lane count, rated and attainable
    per-direction bandwidth, latency), plus the headline summary counts.
    """
    return {
        "nodes": [
            {
                "name": node.name,
                "devices": [
                    _device_json(device)
                    for device in (node.cpus + node.drams + node.gpus
                                   + node.nics
                                   + [d.device for d in node.nvme_drives])
                ],
            }
            for node in cluster.nodes
        ],
        "switch": (_device_json(cluster.switch)
                   if cluster.switch is not None else None),
        "links": [
            _link_json(link)
            for link in sorted(cluster.topology.links,
                               key=lambda link: link.name)
        ],
        "summary": {
            "num_nodes": cluster.num_nodes,
            "num_gpus": cluster.num_gpus,
            "total_gpu_memory_bytes": cluster.total_gpu_memory(),
            "total_host_memory_bytes": cluster.total_host_memory(),
        },
    }
