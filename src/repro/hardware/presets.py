"""Paper hardware presets (Tables II and III, Figs. 2 and 14).

``paper_node_spec``/``paper_cluster`` reconstruct the two-node XE8545
cluster of Section III-A.  ``TABLE_III`` captures the published
interconnect inventory so the Table III bench can verify the built
topology link-for-link.  ``nvme_placement_node_spec`` builds the Fig. 14
variants with four scratch drives.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from ..units import GB
from .cluster import Cluster, ClusterSpec
from .link import LinkClass
from .node import NodeSpec
from .serdes import SerdesContentionModel, disabled_contention_model


@dataclass(frozen=True)
class InterconnectEntry:
    """One row of the paper's Table III."""

    interconnect: str
    interface: str
    links_per_node: int
    devices_per_node: int
    bandwidth_per_link: float  # theoretical bidirectional, bytes/s
    tool: str

    @property
    def aggregate_bandwidth(self) -> float:
        """Aggregate theoretical bidirectional bandwidth per node."""
        return self.links_per_node * self.devices_per_node * self.bandwidth_per_link


#: Paper Table III, verbatim.
TABLE_III: Tuple[InterconnectEntry, ...] = (
    InterconnectEntry("CPU-DRAM", "DRAM", 8, 2, 25.6 * GB, "AMD uProf"),
    InterconnectEntry("CPU-CPU", "xGMI", 3, 1, 72 * GB, "AMD uProf"),
    InterconnectEntry("CPU-GPU", "PCIe-GPU", 1, 4, 64 * GB, "NVIDIA SMI"),
    InterconnectEntry("GPU-GPU", "NVLink", 12, 4, 50 * GB, "NVIDIA SMI"),
    InterconnectEntry("CPU-NIC", "PCIe-NIC", 1, 2, 64 * GB, "AMD uProf"),
    InterconnectEntry("CPU-NVME", "PCIe-NVME", 1, 8, 16 * GB, "AMD uProf"),
    InterconnectEntry("Internode", "RoCE", 1, 2, 50 * GB, "HW Counter"),
)

#: Map from Table III interface names to the simulator's link classes.
INTERFACE_TO_CLASS: Dict[str, LinkClass] = {
    "DRAM": LinkClass.DRAM,
    "xGMI": LinkClass.XGMI,
    "PCIe-GPU": LinkClass.PCIE_GPU,
    "NVLink": LinkClass.NVLINK,
    "PCIe-NIC": LinkClass.PCIE_NIC,
    "PCIe-NVME": LinkClass.PCIE_NVME,
    "RoCE": LinkClass.ROCE,
}


def paper_node_spec() -> NodeSpec:
    """The XE8545 node exactly as configured in the paper's Table II."""
    return NodeSpec()


def nvme_placement_node_spec(sockets_for_scratch: Tuple[int, ...]) -> NodeSpec:
    """A node spec with scratch NVMe drives on the given sockets.

    ``sockets_for_scratch`` lists the socket of each *scratch* drive; the
    OS drive stays on socket 0 as drive 0.  The Fig. 14 study uses
    ``(1, 1)`` (baseline dual-drive) and ``(0, 0, 1, 1)`` (quad-drive).
    """
    return replace(paper_node_spec(), nvme_sockets=(0,) + tuple(sockets_for_scratch))


def paper_cluster(num_nodes: int = 2, *,
                  contention: SerdesContentionModel = SerdesContentionModel(),
                  node_spec: Optional[NodeSpec] = None) -> Cluster:
    """Build the paper's cluster: ``num_nodes`` XE8545s behind an SN3700."""
    spec = ClusterSpec(
        num_nodes=num_nodes,
        node=node_spec if node_spec is not None else paper_node_spec(),
        contention=contention,
    )
    return Cluster(spec)


def single_node_cluster(**kwargs) -> Cluster:
    """One XE8545, no switch — the single-node experiments of Section IV."""
    return paper_cluster(num_nodes=1, **kwargs)


def dual_node_cluster(**kwargs) -> Cluster:
    """Two XE8545s behind the switch — Section IV's dual-node experiments."""
    return paper_cluster(num_nodes=2, **kwargs)


def uncontended_cluster(num_nodes: int = 2) -> Cluster:
    """Ablation: the same cluster with SerDes contention disabled."""
    return paper_cluster(num_nodes=num_nodes,
                         contention=disabled_contention_model())
