"""Base device abstractions shared by all hardware components.

A *device* is any endpoint that can source or sink traffic in the topology
graph: CPUs (their DRAM controllers), GPUs, NICs, NVMe drives, and the
inter-node switch.  Devices with byte-addressable capacity additionally
expose a :class:`MemoryPool` that the memory-usage telemetry (paper Figs. 11
and 13) draws from.
"""

from __future__ import annotations

import enum
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from ..errors import ConfigurationError, OutOfMemoryError
from ..units import GB


class DeviceKind(enum.Enum):
    CPU = "cpu"      # the socket hub (I/O die); routing vertex, no memory
    DRAM = "dram"    # the socket's memory endpoint (holds the host pool)
    GPU = "gpu"
    NIC = "nic"
    NVME = "nvme"
    SWITCH = "switch"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class MemoryPool:
    """A byte-accounted memory capacity with named allocations.

    Allocations are labelled so the telemetry layer can report memory
    *composition* (parameters vs. gradients vs. optimizer states vs.
    buffers), mirroring the stacked bars of Figs. 11-b and 13-c.
    """

    def __init__(self, capacity_bytes: float, *, owner: str = "") -> None:
        if capacity_bytes <= 0:
            raise ConfigurationError("memory capacity must be positive")
        self.capacity_bytes = float(capacity_bytes)
        self.owner = owner
        self._allocations: Dict[str, float] = {}
        #: optional lifecycle observer (:class:`repro.sim.leaksan.
        #: LeakSanitizer`); ``None`` keeps every hook a single check
        self.observer = None

    @property
    def used_bytes(self) -> float:
        return sum(self._allocations.values())

    @property
    def free_bytes(self) -> float:
        return self.capacity_bytes - self.used_bytes

    def allocate(self, label: str, num_bytes: float) -> None:
        """Allocate ``num_bytes`` under ``label`` (labels accumulate)."""
        if num_bytes < 0:
            raise ConfigurationError("allocation size must be non-negative")
        if num_bytes > self.free_bytes + 1e-6:
            raise OutOfMemoryError(
                f"{self.owner or 'memory pool'}: cannot allocate "
                f"{num_bytes / GB:.2f} GB for {label!r}; "
                f"{self.free_bytes / GB:.2f} GB free of "
                f"{self.capacity_bytes / GB:.2f} GB",
                device=self.owner,
                required_bytes=num_bytes,
                available_bytes=self.free_bytes,
            )
        self._allocations[label] = self._allocations.get(label, 0.0) + num_bytes
        if self.observer is not None:
            self.observer.pool_allocated(self, label, num_bytes)

    def free(self, label: str, *, missing_ok: bool = False) -> float:
        """Release every byte held under ``label``; returns the amount.

        **Contract.**  Freeing a label with no live allocation raises
        :class:`~repro.errors.ConfigurationError`: it is either a
        double-free or a never-allocated label, and both mean the
        caller's byte accounting has drifted — exactly the bug class the
        lifecycle analysis (``RES003``/``RES005``) exists to catch, so
        the runtime must not paper over it.  Callers that legitimately
        tear down labels that *may* be absent (idempotent cleanup paths)
        pass ``missing_ok=True`` and get the documented sentinel
        ``0.0`` back instead.
        """
        if label not in self._allocations:
            if missing_ok:
                return 0.0
            if self.observer is not None:
                self.observer.pool_free_missing(self, label)
            raise ConfigurationError(
                f"{self.owner or 'memory pool'}: free of unknown label "
                f"{label!r}; live labels: {sorted(self._allocations)} "
                f"(double-free or never allocated; pass missing_ok=True "
                f"for idempotent teardown)"
            )
        amount = self._allocations.pop(label)
        if self.observer is not None:
            self.observer.pool_freed(self, label, amount)
        return amount

    @contextmanager
    def lease(self, label: str, num_bytes: float) -> Iterator["MemoryPool"]:
        """Scope-guarded allocation: freed on exit, even on error.

        ``label`` must be exclusive to the lease (``free`` releases the
        whole label, and labels accumulate), so use a unique transient
        label rather than one of the long-lived plan labels.
        """
        self.allocate(label, num_bytes)
        try:
            yield self
        finally:
            self.free(label)

    def usage_by_label(self) -> Dict[str, float]:
        return dict(self._allocations)

    def reset(self) -> None:
        self._allocations.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MemoryPool({self.owner!r}, used {self.used_bytes / GB:.1f} / "
            f"{self.capacity_bytes / GB:.1f} GB)"
        )


@dataclass
class Device:
    """A named vertex in the cluster topology.

    ``name`` is globally unique and hierarchical (``node0/gpu2``).
    ``numa_domain`` places the device for socket-affinity decisions
    (same-socket vs. cross-socket, Section III-C); it is the index of the
    socket the device hangs off, or ``None`` for the switch.
    """

    name: str
    kind: DeviceKind
    node_index: Optional[int] = None
    socket_index: Optional[int] = None
    memory: Optional[MemoryPool] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("device name must be non-empty")
        if self.memory is not None and not self.memory.owner:
            self.memory.owner = self.name

    def __hash__(self) -> int:
        return hash(self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Device({self.name!r}, {self.kind})"
