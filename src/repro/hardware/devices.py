"""Base device abstractions shared by all hardware components.

A *device* is any endpoint that can source or sink traffic in the topology
graph: CPUs (their DRAM controllers), GPUs, NICs, NVMe drives, and the
inter-node switch.  Devices with byte-addressable capacity additionally
expose a :class:`MemoryPool` that the memory-usage telemetry (paper Figs. 11
and 13) draws from.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ConfigurationError, OutOfMemoryError
from ..units import GB


class DeviceKind(enum.Enum):
    CPU = "cpu"      # the socket hub (I/O die); routing vertex, no memory
    DRAM = "dram"    # the socket's memory endpoint (holds the host pool)
    GPU = "gpu"
    NIC = "nic"
    NVME = "nvme"
    SWITCH = "switch"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class MemoryPool:
    """A byte-accounted memory capacity with named allocations.

    Allocations are labelled so the telemetry layer can report memory
    *composition* (parameters vs. gradients vs. optimizer states vs.
    buffers), mirroring the stacked bars of Figs. 11-b and 13-c.
    """

    def __init__(self, capacity_bytes: float, *, owner: str = "") -> None:
        if capacity_bytes <= 0:
            raise ConfigurationError("memory capacity must be positive")
        self.capacity_bytes = float(capacity_bytes)
        self.owner = owner
        self._allocations: Dict[str, float] = {}

    @property
    def used_bytes(self) -> float:
        return sum(self._allocations.values())

    @property
    def free_bytes(self) -> float:
        return self.capacity_bytes - self.used_bytes

    def allocate(self, label: str, num_bytes: float) -> None:
        """Allocate ``num_bytes`` under ``label`` (labels accumulate)."""
        if num_bytes < 0:
            raise ConfigurationError("allocation size must be non-negative")
        if num_bytes > self.free_bytes + 1e-6:
            raise OutOfMemoryError(
                f"{self.owner or 'memory pool'}: cannot allocate "
                f"{num_bytes / GB:.2f} GB for {label!r}; "
                f"{self.free_bytes / GB:.2f} GB free of "
                f"{self.capacity_bytes / GB:.2f} GB",
                device=self.owner,
                required_bytes=num_bytes,
                available_bytes=self.free_bytes,
            )
        self._allocations[label] = self._allocations.get(label, 0.0) + num_bytes

    def free(self, label: str) -> float:
        """Release every byte held under ``label``; returns the amount."""
        return self._allocations.pop(label, 0.0)

    def usage_by_label(self) -> Dict[str, float]:
        return dict(self._allocations)

    def reset(self) -> None:
        self._allocations.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MemoryPool({self.owner!r}, used {self.used_bytes / GB:.1f} / "
            f"{self.capacity_bytes / GB:.1f} GB)"
        )


@dataclass
class Device:
    """A named vertex in the cluster topology.

    ``name`` is globally unique and hierarchical (``node0/gpu2``).
    ``numa_domain`` places the device for socket-affinity decisions
    (same-socket vs. cross-socket, Section III-C); it is the index of the
    socket the device hangs off, or ``None`` for the switch.
    """

    name: str
    kind: DeviceKind
    node_index: Optional[int] = None
    socket_index: Optional[int] = None
    memory: Optional[MemoryPool] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("device name must be non-empty")
        if self.memory is not None and not self.memory.owner:
            self.memory.owner = self.name

    def __hash__(self) -> int:
        return hash(self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Device({self.name!r}, {self.kind})"
