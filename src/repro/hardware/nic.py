"""ConnectX-6 NIC and RoCE model.

Each node has two NVIDIA ConnectX-6 NICs, one per socket, each running
200 Gbps Ethernet with RoCE (RDMA over Converged Ethernet).  RoCE gives the
cluster lossless RDMA semantics; GPUDirect RDMA lets a NIC DMA straight
into GPU memory so inter-node GPU traffic bypasses DRAM (paper Section
III-A1 and the Fig. 4-b observation of no DRAM activity).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import GB, US
from .devices import Device, DeviceKind


@dataclass(frozen=True)
class NicSpec:
    """Static NIC datasheet numbers (defaults: ConnectX-6, 200 GbE)."""

    name: str = "NVIDIA ConnectX-6"
    # 200 Gbps = 25 GB/s per direction at the wire.
    wire_bandwidth_per_direction: float = 25 * GB
    # Fraction attainable after Ethernet/RoCE framing (Fig. 4-a: 93 %).
    efficiency: float = 0.93
    # One-way RoCE latency for small messages, same-socket (Fig. 3: < 6 us).
    base_latency: float = 4.0 * US
    supports_gpudirect: bool = True

    def __post_init__(self) -> None:
        if self.wire_bandwidth_per_direction <= 0:
            raise ConfigurationError("NIC bandwidth must be positive")
        if not 0 < self.efficiency <= 1:
            raise ConfigurationError("NIC efficiency must be in (0, 1]")


def make_nic(name: str, *, node_index: int, socket_index: int,
             spec: NicSpec = NicSpec()) -> Device:
    device = Device(
        name=name,
        kind=DeviceKind.NIC,
        node_index=node_index,
        socket_index=socket_index,
    )
    device.spec = spec  # type: ignore[attr-defined]
    return device


@dataclass(frozen=True)
class SwitchSpec:
    """Static switch datasheet numbers (defaults: Spectrum SN3700).

    12.8 Tbps switching capacity over 32x 200 GbE ports; for a two-node
    cluster it is never the bottleneck, but the model keeps it explicit so
    larger synthetic clusters oversubscribe realistically.
    """

    name: str = "NVIDIA Spectrum SN3700"
    ports: int = 32
    port_bandwidth_per_direction: float = 25 * GB
    switching_capacity: float = 1600 * GB  # 12.8 Tbps
    port_latency: float = 0.3 * US

    def __post_init__(self) -> None:
        if self.ports <= 0 or self.port_bandwidth_per_direction <= 0:
            raise ConfigurationError("switch spec values must be positive")


def make_switch(name: str, spec: SwitchSpec = SwitchSpec()) -> Device:
    device = Device(name=name, kind=DeviceKind.SWITCH)
    device.spec = spec  # type: ignore[attr-defined]
    return device
