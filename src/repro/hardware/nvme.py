"""NVMe SSD model with DRAM write cache, plus software-RAID0 volumes.

The paper uses Intel D7-P5600 3.2 TB PCIe 4.0 x4 drives.  Section V-B3
attributes ZeRO-Infinity's "abrupt peak and low average" PCIe-NVME pattern
to the drive's internal DRAM cache: bursts land in the cache at near-link
speed, but once the cache is full (or on cache misses) throughput collapses
to NAND speed.  We model exactly that two-regime behaviour.

RAID0 (Linux mdadm) stripes requests round-robin over member drives; the
volume's bandwidth is the sum of the members', but — as Fig. 14/Table VI
shows — a volume whose members hang off *different* sockets forces part of
every stripe across xGMI, inheriting the SerDes contention penalty.  The
placement study in :mod:`repro.parallel.placement` builds on this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..errors import ConfigurationError
from ..units import GB, TB
from .devices import Device, DeviceKind, MemoryPool


@dataclass(frozen=True)
class NvmeSpec:
    """Static SSD datasheet numbers (defaults: Intel D7-P5600 3.2 TB).

    The D7-P5600 is rated ~7 GB/s sequential read and ~4.3 GB/s sequential
    write at the link level; sustained mixed read/write through the FTL with
    a full DRAM cache lands near the NAND figures below.  ZeRO-Infinity's
    optimizer swap traffic is large sequential reads+writes of tensor
    partitions, so the sustained mixed figure dominates.
    """

    name: str = "Intel D7-P5600 3.2TB"
    capacity_bytes: float = 3.2 * TB
    # Burst (DRAM-cache) bandwidth: bounded by PCIe 4.0 x4 minus protocol.
    cache_read_bandwidth: float = 6.8 * GB
    cache_write_bandwidth: float = 4.3 * GB
    # Steady-state NAND bandwidth once the cache no longer absorbs traffic.
    nand_read_bandwidth: float = 3.2 * GB
    nand_write_bandwidth: float = 1.8 * GB
    dram_cache_bytes: float = 4 * GB
    # Latency of one NVMe command (queueing + FTL), dominating small I/O.
    command_latency: float = 90e-6

    def __post_init__(self) -> None:
        if min(self.cache_read_bandwidth, self.cache_write_bandwidth,
               self.nand_read_bandwidth, self.nand_write_bandwidth) <= 0:
            raise ConfigurationError("NVMe bandwidths must be positive")
        if self.dram_cache_bytes < 0 or self.capacity_bytes <= 0:
            raise ConfigurationError("NVMe capacities must be non-negative")


class NvmeDrive:
    """One SSD with the two-regime (cache vs. NAND) transfer model."""

    def __init__(self, name: str, spec: NvmeSpec = NvmeSpec(), *,
                 node_index: int = 0, socket_index: int = 0) -> None:
        self.name = name
        self.spec = spec
        self.device = Device(
            name=name,
            kind=DeviceKind.NVME,
            node_index=node_index,
            socket_index=socket_index,
            memory=MemoryPool(spec.capacity_bytes, owner=name),
        )
        self._cache_fill_bytes = 0.0
        self._slowdown = 1.0

    @property
    def memory(self) -> MemoryPool:
        assert self.device.memory is not None
        return self.device.memory

    def reset_cache(self) -> None:
        self._cache_fill_bytes = 0.0

    # -- fault injection ----------------------------------------------------
    @property
    def slowdown(self) -> float:
        """Current media-bandwidth slowdown factor (>= 1; 1 is healthy)."""
        return self._slowdown

    def set_slowdown(self, factor: float) -> None:
        """Throttle the NAND media to ``1/factor`` of rated bandwidth.

        Models firmware backpressure under thermal throttling or a
        congested FTL: commands still complete, but sustained throughput
        collapses (see :mod:`repro.faults`).
        """
        if factor < 1.0:
            raise ConfigurationError("NVMe slowdown factor must be >= 1")
        self._slowdown = factor

    def clear_slowdown(self) -> None:
        self._slowdown = 1.0

    @property
    def effective_nand_read_bandwidth(self) -> float:
        return self.spec.nand_read_bandwidth / self._slowdown

    @property
    def effective_nand_write_bandwidth(self) -> float:
        return self.spec.nand_write_bandwidth / self._slowdown

    def drain_cache(self, elapsed: float) -> None:
        """Background FTL flush: the cache drains to NAND between bursts."""
        if elapsed < 0:
            raise ConfigurationError("elapsed time must be non-negative")
        drained = elapsed * self.spec.nand_write_bandwidth
        self._cache_fill_bytes = max(0.0, self._cache_fill_bytes - drained)

    def write_time(self, num_bytes: float) -> float:
        """Seconds to absorb a write burst of ``num_bytes``.

        Bytes up to the remaining cache headroom land at cache speed; the
        remainder is throttled to NAND speed.  The cache fill persists
        across calls until :meth:`drain_cache`/:meth:`reset_cache`.
        """
        if num_bytes < 0:
            raise ConfigurationError("num_bytes must be non-negative")
        headroom = max(0.0, self.spec.dram_cache_bytes - self._cache_fill_bytes)
        fast_bytes = min(num_bytes, headroom)
        slow_bytes = num_bytes - fast_bytes
        self._cache_fill_bytes += fast_bytes
        return (
            self.spec.command_latency
            + fast_bytes / self.spec.cache_write_bandwidth
            + slow_bytes / self.spec.nand_write_bandwidth
        )

    def read_time(self, num_bytes: float, *, cached_fraction: float = 0.0) -> float:
        """Seconds to read ``num_bytes``; ``cached_fraction`` hits DRAM."""
        if num_bytes < 0:
            raise ConfigurationError("num_bytes must be non-negative")
        if not 0.0 <= cached_fraction <= 1.0:
            raise ConfigurationError("cached_fraction must be in [0, 1]")
        fast = num_bytes * cached_fraction
        slow = num_bytes - fast
        return (
            self.spec.command_latency
            + fast / self.spec.cache_read_bandwidth
            + slow / self.spec.nand_read_bandwidth
        )

    def sustained_bandwidth(self, *, read_fraction: float = 0.5) -> float:
        """Steady-state mixed read/write bytes/s (harmonic blend)."""
        if not 0.0 <= read_fraction <= 1.0:
            raise ConfigurationError("read_fraction must be in [0, 1]")
        r = self.effective_nand_read_bandwidth
        w = self.effective_nand_write_bandwidth
        if read_fraction == 0.0:
            return w
        if read_fraction == 1.0:
            return r
        return 1.0 / (read_fraction / r + (1.0 - read_fraction) / w)


class Raid0Volume:
    """A Linux-mdadm-style stripe set over one or more NVMe drives.

    A single drive is represented as a one-member "volume" so the offload
    engines can treat every target uniformly.  ``sockets`` reports the set
    of sockets the members hang off — spanning more than one socket is the
    configuration Fig. 14 flags as xGMI-hostile.
    """

    def __init__(self, name: str, drives: Sequence[NvmeDrive]) -> None:
        if not drives:
            raise ConfigurationError("a RAID0 volume needs at least one drive")
        self.name = name
        self.drives: List[NvmeDrive] = list(drives)

    @property
    def capacity_bytes(self) -> float:
        # RAID0 capacity is members x smallest member.
        return len(self.drives) * min(d.spec.capacity_bytes for d in self.drives)

    @property
    def sockets(self) -> frozenset:
        return frozenset(d.device.socket_index for d in self.drives)

    @property
    def spans_sockets(self) -> bool:
        return len(self.sockets) > 1

    def sustained_bandwidth(self, *, read_fraction: float = 0.5) -> float:
        """Aggregate steady-state bytes/s (sum over stripe members)."""
        return sum(
            d.sustained_bandwidth(read_fraction=read_fraction) for d in self.drives
        )

    def write_time(self, num_bytes: float) -> float:
        """Seconds for a striped write (each member takes 1/N of the bytes)."""
        per_member = num_bytes / len(self.drives)
        return max(d.write_time(per_member) for d in self.drives)

    def read_time(self, num_bytes: float, *, cached_fraction: float = 0.0) -> float:
        per_member = num_bytes / len(self.drives)
        return max(
            d.read_time(per_member, cached_fraction=cached_fraction)
            for d in self.drives
        )

    def reset(self) -> None:
        for d in self.drives:
            d.reset_cache()
            d.clear_slowdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Raid0Volume({self.name!r}, {len(self.drives)} drives)"
