"""Interconnect link model.

Every interconnect in the paper's Table III (DRAM channels, xGMI, PCIe to
GPU/NIC/NVMe, NVLink, RoCE) is represented by :class:`Link` instances built
from a :class:`LinkSpec`.  A link is a full-duplex channel with a
per-direction theoretical bandwidth, a base latency, and an attainable
efficiency (protocol overhead).  Links carry a :class:`BandwidthLedger` that
accumulates every byte moved over them, timestamped, so the telemetry layer
can reconstruct the avg/90th-percentile/peak utilization figures the paper
reports (Table IV) and the time-series plots (Figs. 9, 10, 12).
"""

from __future__ import annotations

import enum
import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from ..errors import ConfigurationError
from ..units import GB, Bytes, BytesPerSecond, Seconds


class LinkClass(enum.Enum):
    """Interconnect classes as grouped in the paper's Table III / Table IV."""

    DRAM = "DRAM"
    XGMI = "xGMI"
    PCIE_GPU = "PCIe-GPU"
    PCIE_NVME = "PCIe-NVME"
    PCIE_NIC = "PCIe-NIC"
    NVLINK = "NVLink"
    ROCE = "RoCE"
    INTERNAL = "Internal"  # on-package paths not reported by the paper

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Link classes that terminate in an EPYC IOD I/O SerDes set.  Traffic whose
#: route enters *and* leaves through SerDes suffers the contention the paper
#: hypothesizes in Section III-C4.
SERDES_CLASSES = frozenset(
    {LinkClass.XGMI, LinkClass.PCIE_GPU, LinkClass.PCIE_NVME, LinkClass.PCIE_NIC}
)


@dataclass(frozen=True)
class LinkSpec:
    """Static description of one link type.

    Parameters
    ----------
    link_class:
        Which Table III interconnect class the link belongs to.
    bandwidth_per_direction:
        Theoretical bandwidth in bytes/s for each direction (the paper's
        Table III footnotes give these: e.g. 32 GBps/direction for PCIe 4.0
        x16, 25 GBps/direction for one NVLink 3.0 link).
    latency:
        Base one-way latency in seconds for a minimum-size message.
    efficiency:
        Fraction of the theoretical bandwidth attainable by a single
        well-behaved stream (protocol/encoding overhead).
    duplex:
        ``True`` for full-duplex links (everything except DRAM, which the
        paper's footnote 2 marks half-duplex).
    """

    link_class: LinkClass
    bandwidth_per_direction: BytesPerSecond
    latency: Seconds
    efficiency: float = 1.0
    duplex: bool = True

    def __post_init__(self) -> None:
        if self.bandwidth_per_direction <= 0:
            raise ConfigurationError("link bandwidth must be positive")
        if not 0.0 < self.efficiency <= 1.0:
            raise ConfigurationError("link efficiency must be in (0, 1]")
        if self.latency < 0:
            raise ConfigurationError("link latency must be non-negative")

    @property
    def bandwidth_bidirectional(self) -> BytesPerSecond:
        """Theoretical bidirectional bandwidth (the paper's headline figure)."""
        if self.duplex:
            return 2.0 * self.bandwidth_per_direction
        return self.bandwidth_per_direction

    @property
    def attainable_per_direction(self) -> BytesPerSecond:
        """Single-stream attainable bandwidth per direction."""
        return self.bandwidth_per_direction * self.efficiency


@dataclass(slots=True)
class TransferRecord:
    """One completed transfer interval over a link (one direction).

    ``degraded`` marks intervals settled while the link's capacity was
    reduced by an injected fault (see :mod:`repro.faults`), so bandwidth
    timelines can show the fault window.  Slotted: ledgers hold hundreds
    of thousands of these on long runs.
    """

    start: Seconds
    end: Seconds
    num_bytes: Bytes
    degraded: bool = field(default=False, compare=False)

    @property
    def duration(self) -> Seconds:
        return self.end - self.start

    @property
    def rate(self) -> BytesPerSecond:
        """Average bytes/s over the interval (0 for instantaneous records)."""
        if self.duration <= 0:
            return 0.0
        return self.num_bytes / self.duration


@dataclass(frozen=True)
class Reservation:
    """A claim against a ledger for bytes that *will* be charged.

    Returned by :meth:`BandwidthLedger.reserve` and consumed exactly once
    by :meth:`BandwidthLedger.settle` (normal completion) or
    :meth:`BandwidthLedger.cancel` (abort).  Reservations are pure
    accounting — they never affect recorded transfers or sampling — but
    they give the leak sanitizer (:mod:`repro.sim.leaksan`) and the
    lifecycle analysis (``RES0xx``) a closed acquire/release protocol:
    every reservation a job opens must be settled or cancelled, or the
    ledger's :attr:`~BandwidthLedger.outstanding_bytes` stays non-zero at
    teardown.
    """

    reservation_id: int
    num_bytes: Bytes
    owner: str = ""


class BandwidthLedger:
    """Append-only record of transfers over one link.

    The ledger stores ``(start, end, bytes)`` intervals.  Utilization at any
    instant is the sum of the rates of the intervals covering it; the
    telemetry layer samples this on a regular grid to produce the paper's
    average/90th/peak statistics and time-series plots.

    Ledgers additionally carry a reservation table (see
    :class:`Reservation`): opt-in byte claims with a strict
    reserve/settle lifecycle, used by the runtime leak sanitizer to
    prove that per-job accounting closes to zero.
    """

    def __init__(self) -> None:
        self._records: List[TransferRecord] = []
        #: open reservations by id; strictly balanced reserve/settle
        self._reservations: Dict[int, Reservation] = {}
        self._reservation_ids = itertools.count()
        #: lazy replication blocks ``(template, period, count)`` appended
        #: by :meth:`replicate_shifted`: the k-th copy (k = 1..count) of
        #: each template record is shifted by ``k * period``.  Blocks are
        #: expanded on demand, so a hybrid run never materializes the
        #: hundreds of thousands of records it extrapolates unless a
        #: consumer actually walks them.
        self._replicas: List[Tuple[Tuple[TransferRecord, ...],
                                   Seconds, int]] = []

    def record(self, start: Seconds, end: Seconds, num_bytes: Bytes, *,
               degraded: bool = False) -> None:
        """Record a transfer of ``num_bytes`` between ``start`` and ``end``."""
        if end < start:
            raise ConfigurationError(
                f"transfer interval is reversed: start={start} end={end}"
            )
        if num_bytes < 0:
            raise ConfigurationError("cannot record a negative byte count")
        if num_bytes == 0:
            return
        self._records.append(
            TransferRecord(start, end, num_bytes, degraded=degraded)
        )

    def replicate_shifted(self, template: List[TransferRecord],
                          period: Seconds, count: int) -> None:
        """Lazily append ``count`` copies of ``template``, the k-th copy
        shifted forward by ``k * period``.

        The hybrid extrapolator replicates one steady iteration's records
        tens of times; storing the block instead of materializing every
        shifted :class:`TransferRecord` keeps extrapolation O(template)
        rather than O(template x count).  Length, byte totals, sampling,
        and iteration all account for the replicas.
        """
        if count <= 0 or not template:
            return
        self._replicas.append((tuple(template), period, count))

    def __len__(self) -> int:
        return (len(self._records)
                + sum(len(t) * c for t, _, c in self._replicas))

    def __iter__(self):
        yield from self._records
        for template, period, count in self._replicas:
            for k in range(1, count + 1):
                shift = k * period
                for r in template:
                    yield TransferRecord(r.start + shift, r.end + shift,
                                         r.num_bytes, degraded=r.degraded)

    @property
    def total_bytes(self) -> Bytes:
        total = sum(r.num_bytes for r in self._records)
        for template, _, count in self._replicas:
            total += count * sum(r.num_bytes for r in template)
        return total

    def clear(self) -> None:
        self._records.clear()
        self._replicas.clear()
        self._reservations.clear()

    # -- reservations ------------------------------------------------------
    def reserve(self, num_bytes: Bytes, *, owner: str = "") -> Reservation:
        """Open a claim for ``num_bytes`` of future transfer accounting.

        The returned token must be passed to exactly one of
        :meth:`settle` or :meth:`cancel`; anything else is a leak the
        sanitizer reports at teardown.  Reservations do not gate
        :meth:`record` — they are ownership bookkeeping, not admission
        control — so attaching them cannot change simulated physics.
        """
        if num_bytes < 0:
            raise ConfigurationError("cannot reserve a negative byte count")
        reservation = Reservation(next(self._reservation_ids),
                                  float(num_bytes), owner)
        self._reservations[reservation.reservation_id] = reservation
        return reservation

    def settle(self, reservation: Reservation) -> None:
        """Close ``reservation`` after its bytes were charged.

        Raises :class:`~repro.errors.ConfigurationError` if the token is
        unknown to this ledger or was already settled/cancelled (the
        runtime analog of the static ``RES003`` double-release finding).
        """
        self._close_reservation(reservation, verb="settle")

    def cancel(self, reservation: Reservation) -> None:
        """Close ``reservation`` without its bytes having moved.

        Same strictness as :meth:`settle`; the two verbs exist so
        callers can distinguish completion from abort on exception
        paths.
        """
        self._close_reservation(reservation, verb="cancel")

    def _close_reservation(self, reservation: Reservation, *,
                           verb: str) -> None:
        if not isinstance(reservation, Reservation):
            raise ConfigurationError(
                f"cannot {verb} {reservation!r}: not a Reservation token"
            )
        if reservation.reservation_id not in self._reservations:
            raise ConfigurationError(
                f"cannot {verb} reservation #{reservation.reservation_id} "
                f"({reservation.owner or 'unowned'}): unknown to this "
                f"ledger or already settled/cancelled"
            )
        del self._reservations[reservation.reservation_id]

    @property
    def outstanding_bytes(self) -> Bytes:
        """Bytes claimed by reservations not yet settled or cancelled."""
        return sum(r.num_bytes for r in self._reservations.values())

    @property
    def outstanding_reservations(self) -> int:
        return len(self._reservations)

    def open_reservations(self) -> List[Reservation]:
        """The open reservations, ordered by id (for leak reports)."""
        return [self._reservations[rid]
                for rid in sorted(self._reservations)]

    @contextmanager
    def reserving(self, num_bytes: Bytes, *,
                  owner: str = "") -> Iterator[Reservation]:
        """Scope-guarded reservation: settled on exit, even on error."""
        reservation = self.reserve(num_bytes, owner=owner)
        try:
            yield reservation
        finally:
            self.settle(reservation)

    def degraded_intervals(self) -> List[Tuple[float, float]]:
        """Merged ``(start, end)`` windows covered by degraded records."""
        return merge_intervals(
            (r.start, r.end) for r in self if r.degraded
        )

    def utilization_at(self, instant: Seconds) -> BytesPerSecond:
        """Instantaneous bytes/s at ``instant`` (sum of covering intervals)."""
        return sum(
            r.rate for r in self if r.start <= instant < r.end
        )

    def sample(self, start: Seconds, end: Seconds,
               num_samples: int) -> List[BytesPerSecond]:
        """Sample utilization on a regular grid of ``num_samples`` bins.

        Each bin reports the *average* bytes/s within it (bytes transferred
        in-bin divided by bin width), which matches how hardware counters
        sampled at a fixed period behave.
        """
        if num_samples <= 0:
            raise ConfigurationError("num_samples must be positive")
        if end <= start:
            raise ConfigurationError("sample window must have positive width")
        width = (end - start) / num_samples
        bins = [0.0] * num_samples
        last_bin = num_samples - 1
        # Hot loop (hundreds of thousands of records on long runs):
        # locals instead of attribute/property lookups, arithmetic kept
        # expression-identical so results stay bit-exact.
        for r in self._records:
            r_start = r.start
            r_end = r.end
            if r_end <= start or r_start >= end:
                continue
            lo = r_start if r_start > start else start
            hi = r_end if r_end < end else end
            duration = r_end - r_start
            if duration <= 0:
                # Instantaneous transfer: deposit in the containing bin.
                idx = int((lo - start) / width)
                bins[idx if idx < last_bin else last_bin] += r.num_bytes
                continue
            rate = r.num_bytes / duration
            first = int((lo - start) / width)
            last = int((hi - start) / width)
            if last > last_bin:
                last = last_bin
            for idx in range(first, last + 1):
                b_lo = start + idx * width
                b_hi = b_lo + width
                overlap = min(hi, b_hi) - max(lo, b_lo)
                if overlap > 0:
                    bins[idx] += rate * overlap
        # Replica blocks: same deposit arithmetic on (template + shift)
        # floats, without materializing the shifted records.
        for template, period, count in self._replicas:
            for k in range(1, count + 1):
                shift = k * period
                for t in template:
                    r_start = t.start + shift
                    r_end = t.end + shift
                    if r_end <= start or r_start >= end:
                        continue
                    lo = r_start if r_start > start else start
                    hi = r_end if r_end < end else end
                    duration = r_end - r_start
                    if duration <= 0:
                        idx = int((lo - start) / width)
                        bins[idx if idx < last_bin else last_bin] += t.num_bytes
                        continue
                    rate = t.num_bytes / duration
                    first = int((lo - start) / width)
                    last = int((hi - start) / width)
                    if last > last_bin:
                        last = last_bin
                    for idx in range(first, last + 1):
                        b_lo = start + idx * width
                        b_hi = b_lo + width
                        overlap = min(hi, b_hi) - max(lo, b_lo)
                        if overlap > 0:
                            bins[idx] += rate * overlap
        return [b / width for b in bins]


def merge_intervals(intervals) -> List[Tuple[float, float]]:
    """Coalesce overlapping/touching ``(start, end)`` intervals, sorted."""
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


class Link:
    """One physical link instance between two devices.

    ``endpoint_a``/``endpoint_b`` are device names (see
    :mod:`repro.hardware.topology`).  ``count`` aggregates identical parallel
    links (e.g. the four NVLink lanes between one GPU pair, or the three
    xGMI links between sockets) into a single simulated channel with summed
    bandwidth, which is how NCCL and the Infinity Fabric stripe traffic.
    """

    def __init__(
        self,
        name: str,
        spec: LinkSpec,
        endpoint_a: str,
        endpoint_b: str,
        *,
        count: int = 1,
    ) -> None:
        if count < 1:
            raise ConfigurationError("link count must be >= 1")
        self.name = name
        self.spec = spec
        self.endpoint_a = endpoint_a
        self.endpoint_b = endpoint_b
        self.count = count
        self.ledger = BandwidthLedger()
        #: current usable fraction of the rated capacity (faults lower it)
        self._capacity_fraction = 1.0
        #: piecewise-constant history of (time, fraction) change points,
        #: so post-run validation can reconstruct the capacity in effect
        #: at any instant of the simulation.
        self._capacity_history: List[Tuple[float, float]] = [(0.0, 1.0)]

    # -- capacity ----------------------------------------------------------
    @property
    def link_class(self) -> LinkClass:
        return self.spec.link_class

    @property
    def base_capacity_per_direction(self) -> BytesPerSecond:
        """Rated aggregate attainable bytes/s per direction (fault-free)."""
        return self.spec.attainable_per_direction * self.count

    @property
    def capacity_per_direction(self) -> BytesPerSecond:
        """Aggregate attainable bytes/s in each direction, right now."""
        return self.base_capacity_per_direction * self._capacity_fraction

    @property
    def capacity_fraction(self) -> float:
        return self._capacity_fraction

    @property
    def is_degraded(self) -> bool:
        """True while an injected fault is holding capacity below rated."""
        return self._capacity_fraction < 1.0

    @property
    def is_down(self) -> bool:
        """True while the link carries no traffic at all (hard outage)."""
        return self._capacity_fraction <= 0.0

    def set_capacity_fraction(self, fraction: float,
                              at_time: Seconds = 0.0) -> None:
        """Degrade (or restore) the link to ``fraction`` of rated capacity.

        ``at_time`` stamps the change point into the capacity history;
        callers must apply changes in non-decreasing time order.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(
                f"capacity fraction must be in [0, 1], got {fraction}"
            )
        last_time, last_fraction = self._capacity_history[-1]
        if at_time < last_time:
            raise ConfigurationError(
                f"capacity change at t={at_time} precedes the last change "
                f"at t={last_time}"
            )
        self._capacity_fraction = fraction
        if at_time > last_time:
            if fraction != last_fraction:
                self._capacity_history.append((at_time, fraction))
        else:
            # Same instant as the last change point: overwrite it, so
            # stacked faults applied in one callback leave one entry.
            self._capacity_history[-1] = (last_time, fraction)

    def reset_capacity(self) -> None:
        """Restore rated capacity and forget the degradation history."""
        self._capacity_fraction = 1.0
        self._capacity_history = [(0.0, 1.0)]

    def capacity_fraction_at(self, instant: Seconds) -> float:
        """The capacity fraction in effect at ``instant``."""
        fraction = self._capacity_history[0][1]
        for time, value in self._capacity_history:
            if time > instant:
                break
            fraction = value
        return fraction

    def max_capacity_over(self, start: Seconds,
                          end: Seconds) -> BytesPerSecond:
        """Highest per-direction capacity in effect anywhere in [start, end).

        This is the tightest *sound* bound for a ledger record spanning the
        interval: a record overlapping both healthy and degraded regimes may
        legitimately average up to the healthy rate for part of its span.
        """
        if end < start:
            raise ConfigurationError(
                f"capacity window is reversed: start={start} end={end}"
            )
        if not end > start:
            # Degenerate [t, t) window: the fraction in effect at t.
            return (self.base_capacity_per_direction
                    * self.capacity_fraction_at(start))
        history = self._capacity_history
        best = 0.0
        for index, (time, fraction) in enumerate(history):
            segment_end = (
                history[index + 1][0] if index + 1 < len(history)
                else float("inf")
            )
            if time < end and segment_end > start:
                best = max(best, fraction)
        return self.base_capacity_per_direction * best

    @property
    def capacity_bidirectional(self) -> BytesPerSecond:
        """Aggregate theoretical bidirectional bytes/s (Table III numbers)."""
        return self.spec.bandwidth_bidirectional * self.count

    @property
    def latency(self) -> Seconds:
        return self.spec.latency

    def other_end(self, endpoint: str) -> str:
        if endpoint == self.endpoint_a:
            return self.endpoint_b
        if endpoint == self.endpoint_b:
            return self.endpoint_a
        raise ConfigurationError(
            f"{endpoint!r} is not an endpoint of link {self.name!r}"
        )

    def connects(self, a: str, b: str) -> bool:
        return {a, b} == {self.endpoint_a, self.endpoint_b}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Link({self.name!r}, {self.link_class}, "
            f"{self.capacity_per_direction / GB:.1f} GB/s/dir x{self.count})"
        )
