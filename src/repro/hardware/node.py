"""Dell PowerEdge XE8545 compute-node builder (paper Fig. 2-b).

One node contains:

* two EPYC 7763 sockets joined by three xGMI links,
* eight DDR4-3200 channels per socket (the DRAM endpoint),
* four A100 SXM4 GPUs — GPUs 0/1 on socket 0, GPUs 2/3 on socket 1,
  each on its own PCIe 4.0 x16 root,
* an all-to-all NVLink 3.0 mesh (four links per GPU pair),
* one ConnectX-6 NIC per socket on PCIe 4.0 x16,
* NVMe drives on PCIe 4.0 x4 (bifurcated x16), placed per configuration —
  the paper's baseline is one OS drive on socket 0 and two scratch drives
  on socket 1; the Fig. 14 placement study adds two more on socket 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import ConfigurationError
from ..units import GB, US
from .cpu import CpuSpec, make_cpu, make_dram
from .devices import Device
from .gpu import GpuSpec, make_gpu
from .link import Link, LinkClass, LinkSpec
from .nic import NicSpec, make_nic
from .nvme import NvmeDrive, NvmeSpec
from .topology import Topology


@dataclass(frozen=True)
class NodeSpec:
    """Configuration for one XE8545-class node."""

    cpu: CpuSpec = CpuSpec()
    gpu: GpuSpec = GpuSpec()
    nic: NicSpec = NicSpec()
    nvme: NvmeSpec = NvmeSpec()
    gpus_per_node: int = 4
    nics_per_node: int = 2
    #: Socket index for each NVMe drive, in drive order.  Drive 0 is the OS
    #: drive; the rest are scratch.  The paper's baseline: OS on socket 0,
    #: two scratch drives on socket 1.
    nvme_sockets: Tuple[int, ...] = (0, 1, 1)
    nvlink_links_per_pair: int = 4
    nvlink_bandwidth_per_direction: float = 25 * GB
    pcie_bandwidth_per_direction: float = 32 * GB  # PCIe 4.0 x16
    pcie_nvme_bandwidth_per_direction: float = 8 * GB  # PCIe 4.0 x4
    xgmi_bandwidth_per_direction: float = 36 * GB
    xgmi_links: int = 3
    # Hop latencies.
    dram_latency: float = 0.09 * US
    pcie_latency: float = 0.6 * US
    nvlink_latency: float = 0.7 * US
    xgmi_latency: float = 0.5 * US
    # Single-stream attainable efficiency per hop (protocol overhead).
    pcie_efficiency: float = 0.88
    nvlink_efficiency: float = 0.90
    xgmi_efficiency: float = 0.85
    dram_efficiency: float = 0.80

    def __post_init__(self) -> None:
        if self.gpus_per_node < 1:
            raise ConfigurationError("a node needs at least one GPU")
        if self.nics_per_node < 1:
            raise ConfigurationError("a node needs at least one NIC")
        if any(s not in (0, 1) for s in self.nvme_sockets):
            raise ConfigurationError("NVMe sockets must be 0 or 1")

    def gpu_socket(self, gpu_index: int) -> int:
        """Socket a GPU hangs off: the first half on 0, the rest on 1."""
        return 0 if gpu_index < self.gpus_per_node // 2 else 1


class Node:
    """All devices, links, and drives of one compute node."""

    def __init__(self, index: int, spec: NodeSpec, topology: Topology) -> None:
        self.index = index
        self.spec = spec
        self.topology = topology
        self.cpus: List[Device] = []
        self.drams: List[Device] = []
        self.gpus: List[Device] = []
        self.nics: List[Device] = []
        self.nvme_drives: List[NvmeDrive] = []
        self._build()

    # -- naming ---------------------------------------------------------------
    @property
    def name(self) -> str:
        return f"node{self.index}"

    def _dev(self, suffix: str) -> str:
        return f"{self.name}/{suffix}"

    # -- construction -----------------------------------------------------------
    def _build(self) -> None:
        spec = self.spec
        topo = self.topology
        # Sockets and their DRAM endpoints.
        for socket in range(2):
            cpu = make_cpu(self._dev(f"cpu{socket}"), node_index=self.index,
                           socket_index=socket, spec=spec.cpu)
            dram = make_dram(self._dev(f"dram{socket}"), node_index=self.index,
                             socket_index=socket, spec=spec.cpu)
            topo.add_device(cpu)
            topo.add_device(dram)
            self.cpus.append(cpu)
            self.drams.append(dram)
            topo.add_link(Link(
                self._dev(f"dram-link{socket}"),
                LinkSpec(
                    link_class=LinkClass.DRAM,
                    bandwidth_per_direction=spec.cpu.dram_channel_bandwidth,
                    latency=spec.dram_latency,
                    efficiency=spec.dram_efficiency,
                    duplex=False,
                ),
                cpu.name, dram.name, count=spec.cpu.dram_channels,
            ))
        # Inter-socket xGMI.
        topo.add_link(Link(
            self._dev("xgmi"),
            LinkSpec(
                link_class=LinkClass.XGMI,
                bandwidth_per_direction=spec.xgmi_bandwidth_per_direction,
                latency=spec.xgmi_latency,
                efficiency=spec.xgmi_efficiency,
            ),
            self.cpus[0].name, self.cpus[1].name, count=spec.xgmi_links,
        ))
        # GPUs and their PCIe roots.
        for g in range(spec.gpus_per_node):
            socket = spec.gpu_socket(g)
            gpu = make_gpu(self._dev(f"gpu{g}"), node_index=self.index,
                           socket_index=socket, spec=spec.gpu)
            topo.add_device(gpu)
            self.gpus.append(gpu)
            topo.add_link(Link(
                self._dev(f"pcie-gpu{g}"),
                LinkSpec(
                    link_class=LinkClass.PCIE_GPU,
                    bandwidth_per_direction=spec.pcie_bandwidth_per_direction,
                    latency=spec.pcie_latency,
                    efficiency=spec.pcie_efficiency,
                ),
                gpu.name, self.cpus[socket].name,
            ))
        # NVLink mesh (every GPU pair).
        for a in range(spec.gpus_per_node):
            for b in range(a + 1, spec.gpus_per_node):
                topo.add_link(Link(
                    self._dev(f"nvlink{a}-{b}"),
                    LinkSpec(
                        link_class=LinkClass.NVLINK,
                        bandwidth_per_direction=spec.nvlink_bandwidth_per_direction,
                        latency=spec.nvlink_latency,
                        efficiency=spec.nvlink_efficiency,
                    ),
                    self.gpus[a].name, self.gpus[b].name,
                    count=spec.nvlink_links_per_pair,
                ))
        # NICs, one per socket (round-robin if more).
        for n in range(spec.nics_per_node):
            socket = n % 2
            nic = make_nic(self._dev(f"nic{n}"), node_index=self.index,
                           socket_index=socket, spec=spec.nic)
            topo.add_device(nic)
            self.nics.append(nic)
            topo.add_link(Link(
                self._dev(f"pcie-nic{n}"),
                LinkSpec(
                    link_class=LinkClass.PCIE_NIC,
                    bandwidth_per_direction=spec.pcie_bandwidth_per_direction,
                    latency=spec.pcie_latency,
                    efficiency=spec.pcie_efficiency,
                ),
                nic.name, self.cpus[socket].name,
            ))
        # NVMe drives.
        for d, socket in enumerate(spec.nvme_sockets):
            drive = NvmeDrive(self._dev(f"nvme{d}"), spec.nvme,
                              node_index=self.index, socket_index=socket)
            topo.add_device(drive.device)
            self.nvme_drives.append(drive)
            topo.add_link(Link(
                self._dev(f"pcie-nvme{d}"),
                LinkSpec(
                    link_class=LinkClass.PCIE_NVME,
                    bandwidth_per_direction=spec.pcie_nvme_bandwidth_per_direction,
                    latency=spec.pcie_latency,
                    efficiency=spec.pcie_efficiency,
                ),
                drive.device.name, self.cpus[socket].name,
            ))

    # -- accessors ----------------------------------------------------------------
    @property
    def scratch_drives(self) -> List[NvmeDrive]:
        """Drives available for ZeRO-Infinity swap (everything but the OS drive)."""
        return self.nvme_drives[1:]

    def gpu_name(self, index: int) -> str:
        return self.gpus[index].name

    def dram_name(self, socket: int) -> str:
        return self.drams[socket].name

    def nic_name(self, index: int) -> str:
        return self.nics[index].name

    def nic_for_socket(self, socket: int) -> Device:
        """The NIC local to ``socket`` (NCCL's preferred NIC)."""
        for nic in self.nics:
            if nic.socket_index == socket:
                return nic
        return self.nics[0]

    def total_gpu_memory(self) -> float:
        return sum(g.memory.capacity_bytes for g in self.gpus)

    def total_host_memory(self) -> float:
        return sum(d.memory.capacity_bytes for d in self.drams)
