"""NVIDIA A100 SXM4 40 GB GPU model.

The paper trains in mixed precision on A100s; the compute side of the
simulator only needs peak Tensor-Core throughput, memory capacity, and the
NVLink port count.  Kernel efficiency (fraction of peak a real GEMM-heavy
training step attains) is a calibrated property of the *strategy*, not the
GPU — see :mod:`repro.core.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import GB, GBPS, Bytes, BytesPerSecond, FlopsPerSecond, tflops
from .devices import Device, DeviceKind, MemoryPool


@dataclass(frozen=True)
class GpuSpec:
    """Static GPU datasheet numbers.

    Defaults are the NVIDIA A100 SXM4 40 GB 400 W part used in the paper:
    312 TFLOP/s FP16 Tensor Core peak (dense), 40 GB HBM2 at 1555 GB/s,
    12 NVLink 3.0 links (25 GB/s per direction each).
    """

    name: str = "NVIDIA A100 SXM4 40GB"
    memory_bytes: Bytes = 40 * GB
    peak_fp16_flops: FlopsPerSecond = tflops(312)
    peak_fp32_flops: FlopsPerSecond = tflops(19.5)
    hbm_bandwidth: BytesPerSecond = 1555 * GBPS
    nvlink_ports: int = 12
    # Memory the CUDA context + framework reserves before the first tensor
    # (CUDA context, cuBLAS/cuDNN workspaces, NCCL channels).  ~2.5 GB is
    # typical for PyTorch 1.12 + NCCL on A100.
    reserved_bytes: Bytes = 2.5 * GB

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0 or self.peak_fp16_flops <= 0:
            raise ConfigurationError("GPU spec values must be positive")
        if self.reserved_bytes >= self.memory_bytes:
            raise ConfigurationError("reserved memory exceeds GPU capacity")

    @property
    def usable_memory_bytes(self) -> Bytes:
        """Bytes available to tensors after framework reservations."""
        return self.memory_bytes - self.reserved_bytes


def make_gpu(name: str, *, node_index: int, socket_index: int,
             spec: GpuSpec = GpuSpec()) -> Device:
    """Create a GPU device with its HBM memory pool attached."""
    pool = MemoryPool(spec.usable_memory_bytes, owner=name)
    device = Device(
        name=name,
        kind=DeviceKind.GPU,
        node_index=node_index,
        socket_index=socket_index,
        memory=pool,
    )
    # Stash the spec on the device for the runtime's compute model.
    device.spec = spec  # type: ignore[attr-defined]
    return device
