"""AMD EPYC 7763 CPU and host-memory model.

Each XE8545 socket is one EPYC 7763: 64 cores across eight CCDs, one I/O
die (IOD) with eight DDR4-3200 channels and eight x16 SerDes sets (three
used as xGMI to the peer socket, the rest as PCIe 4.0 x16 roots).  For the
simulator the CPU is (a) a DRAM endpoint with aggregate channel bandwidth,
(b) a compute resource for ZeRO-Offload's CPU Adam, and (c) the SerDes hub
whose contention the paper characterizes.

CPU Adam throughput: DeepSpeed's CPU Adam is AVX-vectorized and in practice
DRAM-bandwidth-bound — each fp32 parameter update streams ~48 bytes
(read param+m+v+grad, write param+m+v plus the fp16 copy).  We model the
optimizer step time as ``bytes_touched / effective_dram_bandwidth`` with a
calibrated efficiency, which reproduces the paper's observation that the
GPUs sit idle while "the CPU is busy computing the optimizers" (Section
V-A3).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import GB, GFLOPS
from .devices import Device, DeviceKind, MemoryPool


@dataclass(frozen=True)
class CpuSpec:
    """Static CPU/socket datasheet numbers (EPYC 7763 + 8x 64 GB DIMMs)."""

    name: str = "AMD EPYC 7763"
    cores: int = 64
    threads: int = 128
    numa_domains: int = 4  # NPS4 as configured in the paper
    dram_channels: int = 8
    dram_channel_bandwidth: float = 25.6 * GB  # DDR4-3200, per channel
    dram_bytes: float = 8 * 64 * GB  # eight 64 GB RDIMMs per socket
    xgmi_links: int = 3
    serdes_sets: int = 8
    # Sustained AVX2 throughput for streaming fp32 kernels per core; only
    # used as a secondary bound on CPU Adam (the primary bound is DRAM).
    avx_flops_per_core: float = 32 * GFLOPS
    # Fraction of theoretical DRAM bandwidth a streaming optimizer attains.
    dram_efficiency: float = 0.75

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.dram_channels <= 0:
            raise ConfigurationError("CPU spec values must be positive")
        if not 0 < self.dram_efficiency <= 1:
            raise ConfigurationError("dram_efficiency must be in (0, 1]")

    @property
    def dram_bandwidth(self) -> float:
        """Aggregate theoretical DRAM bandwidth for the socket (bytes/s)."""
        return self.dram_channels * self.dram_channel_bandwidth

    @property
    def effective_dram_bandwidth(self) -> float:
        return self.dram_bandwidth * self.dram_efficiency

    @property
    def peak_flops(self) -> float:
        return self.cores * self.avx_flops_per_core


#: Bytes of DRAM traffic per parameter for one CPU Adam step: read fp32
#: master param, momentum, variance and the fp16 gradient; write the three
#: fp32 states and the fp16 parameter copy (4*3 + 2) + (4*3 + 2) = 28... in
#: practice DeepSpeed also converts/copies staging buffers; 48 B/param
#: reproduces measured CPU-Adam step times on EPYC-class machines.
CPU_ADAM_BYTES_PER_PARAM = 48.0


def cpu_adam_step_time(num_params: float, spec: CpuSpec) -> float:
    """Seconds for one CPU Adam step over ``num_params`` parameters.

    The step is modelled as the max of the DRAM-streaming bound and the
    vector-FLOP bound (~25 FLOPs per parameter for Adam).
    """
    if num_params < 0:
        raise ConfigurationError("num_params must be non-negative")
    dram_time = num_params * CPU_ADAM_BYTES_PER_PARAM / spec.effective_dram_bandwidth
    flop_time = num_params * 25.0 / spec.peak_flops
    return max(dram_time, flop_time)


def make_cpu(name: str, *, node_index: int, socket_index: int,
             spec: CpuSpec = CpuSpec()) -> Device:
    """Create a CPU/socket hub device (the I/O die routing vertex).

    Host memory lives on the companion DRAM device from :func:`make_dram`,
    reached over the CPU-DRAM link, so that flows sourcing or sinking in
    host memory traverse — and are accounted against — the DRAM channels.
    """
    device = Device(
        name=name,
        kind=DeviceKind.CPU,
        node_index=node_index,
        socket_index=socket_index,
    )
    device.spec = spec  # type: ignore[attr-defined]
    return device


def make_dram(name: str, *, node_index: int, socket_index: int,
              spec: CpuSpec = CpuSpec()) -> Device:
    """Create the DRAM endpoint for one socket, holding the host pool."""
    pool = MemoryPool(spec.dram_bytes, owner=name)
    device = Device(
        name=name,
        kind=DeviceKind.DRAM,
        node_index=node_index,
        socket_index=socket_index,
        memory=pool,
    )
    device.spec = spec  # type: ignore[attr-defined]
    return device
