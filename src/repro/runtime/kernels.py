"""GPU kernel taxonomy and compute-time model (paper Fig. 5 categories).

The paper's nsys characterization groups kernels into GEMM (Tensor-Core
matrix multiplies, the majority), element-wise, transform/memory
(memory-heavy layout ops), weight update (optimizer), and the NCCL
communication kernels.  The executor emits steps tagged with these kinds
so the timeline telemetry can render Fig.-5-style traces.

Compute times come from the analytic FLOP model divided by a calibrated
attained fraction of the A100's Tensor-Core peak; element-wise and
optimizer kernels are HBM-bandwidth-bound.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..hardware.gpu import GpuSpec
from ..units import Bytes, Flops, Scalar, Seconds


class KernelKind(enum.Enum):
    """Kernel categories matching the paper's Fig. 5 legend."""

    GEMM = "gemm"
    ELEMENTWISE = "elementwise"
    TRANSFORM = "transform"
    MEMORY = "memory"
    OPTIMIZER = "optimizer"
    NCCL_ALL_REDUCE = "nccl_all_reduce"
    NCCL_REDUCE = "nccl_reduce"
    NCCL_ALL_GATHER = "nccl_all_gather"
    NCCL_BROADCAST = "nccl_broadcast"
    NCCL_SEND_RECV = "nccl_send_recv"
    HOST_TRANSFER = "host_transfer"
    NVME_IO = "nvme_io"
    CPU_OPTIMIZER = "cpu_optimizer"
    IDLE = "idle"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_communication(self) -> bool:
        return self.value.startswith("nccl_") or self in (
            KernelKind.HOST_TRANSFER, KernelKind.NVME_IO
        )


#: Kernel kinds a straggler GPU's degraded clocks stretch.  Communication,
#: host I/O, and idle time are paced by the fabric or by other ranks, not
#: by this GPU's SMs, so a straggler fault leaves them untouched.
STRAGGLER_KINDS = frozenset({
    KernelKind.GEMM,
    KernelKind.ELEMENTWISE,
    KernelKind.TRANSFORM,
    KernelKind.MEMORY,
    KernelKind.OPTIMIZER,
})


def straggler_multiplier(kind: "KernelKind", factor: float) -> float:
    """Duration multiplier a straggler fault applies to one kernel.

    ``factor`` is the rank's current compute slowdown (>= 1, where 1 is
    healthy); only SM-bound kernel kinds are stretched.
    """
    if factor < 1.0:
        raise ConfigurationError(
            f"straggler slowdown factor must be >= 1, got {factor}"
        )
    return factor if kind in STRAGGLER_KINDS else 1.0


@dataclass(frozen=True)
class GpuComputeModel:
    """Turns FLOPs/bytes into kernel durations for one GPU.

    ``gemm_efficiency`` is the attained fraction of FP16 Tensor-Core peak
    for the training step's GEMM mix; it is a per-strategy calibration
    constant (model-parallel strategies run narrower GEMMs and attain
    less).  ``hbm_efficiency`` covers element-wise/optimizer kernels.
    """

    gpu: GpuSpec
    gemm_efficiency: Scalar
    hbm_efficiency: Scalar = 0.70

    def __post_init__(self) -> None:
        if not 0 < self.gemm_efficiency <= 1:
            raise ConfigurationError("gemm_efficiency must be in (0, 1]")
        if not 0 < self.hbm_efficiency <= 1:
            raise ConfigurationError("hbm_efficiency must be in (0, 1]")

    def gemm_time(self, flops: Flops) -> Seconds:
        """Seconds of Tensor-Core time for ``flops`` dense FLOPs."""
        if flops < 0:
            raise ConfigurationError("flops must be non-negative")
        return flops / (self.gpu.peak_fp16_flops * self.gemm_efficiency)

    def memory_bound_time(self, num_bytes: Bytes) -> Seconds:
        """Seconds for an HBM-bandwidth-bound kernel touching ``num_bytes``."""
        if num_bytes < 0:
            raise ConfigurationError("num_bytes must be non-negative")
        return num_bytes / (self.gpu.hbm_bandwidth * self.hbm_efficiency)

    def optimizer_time(self, num_params: float) -> Seconds:
        """GPU Adam step: streams ~32 B/param through HBM (fp32 states
        read+write, fp16 param write, fp16 grad read)."""
        return self.memory_bound_time(num_params * 32.0)
