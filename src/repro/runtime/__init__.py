"""Runtime layer: kernel models and the schedule executor.

``Executor``/``ExecutionResult`` are exposed lazily: the executor imports
the telemetry layer, which itself needs :mod:`repro.runtime.kernels`, so
an eager re-export here would create an import cycle.
"""

from .kernels import GpuComputeModel, KernelKind

__all__ = ["ExecutionResult", "Executor", "GpuComputeModel", "KernelKind"]


def __getattr__(name):
    if name in ("Executor", "ExecutionResult"):
        from . import executor

        return getattr(executor, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
