"""Schedule executor: runs a strategy's iteration schedule on the DES.

One simulated process per GPU rank interprets the strategy's
:mod:`~repro.parallel.schedule` steps:

* compute steps advance the rank's clock (the GPU is busy);
* collective steps rendezvous all ranks of the group, then run as flows
  through the :class:`~repro.collectives.nccl.NcclCommunicator`;
* host transfers and NVMe I/O become flows over the topology, so PCIe,
  xGMI, DRAM, and NVMe ledgers fill in automatically;
* CPU optimizer work charges the socket's DRAM channels.

The run produces iteration times, a Fig.-5-style :class:`Timeline`, and
fully populated per-link bandwidth ledgers — everything the paper's
experiments need in a single pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.liveness import check_liveness
from ..collectives.nccl import NcclCommunicator, RetryPolicy
from ..collectives.primitives import CollectiveOp
from .. import calibration
from ..errors import ConfigurationError, SimulationError
from ..faults.events import FaultEvent
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..hardware.cluster import Cluster
from ..hardware.cpu import CPU_ADAM_BYTES_PER_PARAM, cpu_adam_step_time
from ..hardware.nvme import Raid0Volume
from ..hardware.serdes import TrafficProfile
from ..parallel.schedule import (
    CollectiveStep,
    ComputeStep,
    CpuWorkStep,
    HostTransferStep,
    IdleStep,
    IterationSchedule,
    Location,
    WaitForStep,
    WaitPendingStep,
)
from ..sim.engine import BaseEvent, Engine, TieOrder
from ..sim.flows import FlowNetwork
from ..sim.leaksan import LeakReport, LeakSanitizer
from ..sim.sanitizer import SanitizerReport, ScheduleSanitizer
from ..telemetry.timeline import Lane, Timeline
from ..trace.recorder import TraceRecorder
from .kernels import KernelKind, straggler_multiplier


@dataclass
class ExecutionResult:
    """Everything one simulated training run produced."""

    iteration_times: List[float]
    timeline: Timeline
    total_time: float
    #: populated only for sanitized runs (``Executor(..., sanitize=True)``)
    sanitizer: Optional[SanitizerReport] = None
    #: populated only for leak-checked runs
    #: (``run_training(..., leak_check=True)``); the runner fills it in
    #: after teardown releases the memory plan
    leaks: Optional["LeakReport"] = None
    #: the materialized fault windows the injector applied (empty for
    #: fault-free runs); the trace builder turns these into fault spans
    fault_events: List[FaultEvent] = field(default_factory=list)
    #: DES callbacks executed over the whole run — the numerator of the
    #: events/sec figure the perf benchmarks track (``benchmarks/perf.py``).
    #: Batched dispatches count at their original multiplicity (a fold of
    #: N occurrences contributes N), so the figure is comparable across
    #: folded and unfolded runs.
    events_processed: int = 0
    #: occurrences absorbed by homogeneous-event batching (a fold of N
    #: contributes N-1); 0 when batching is off or never fired
    events_folded: int = 0
    #: analytic event-equivalents added by the hybrid extrapolator —
    #: kept separate from ``events_processed`` so the DES throughput
    #: figure never mixes simulated and extrapolated work
    events_extrapolated: int = 0
    #: iterations the hybrid fast path appended analytically (0 for full
    #: fidelity runs)
    extrapolated_iterations: int = 0

    @property
    def mean_iteration_time(self) -> float:
        if not self.iteration_times:
            return 0.0
        return sum(self.iteration_times) / len(self.iteration_times)


class _CollectiveGate:
    """Rendezvous for one keyed collective across its group's ranks."""

    def __init__(self, executor: "Executor", comm: NcclCommunicator,
                 op: CollectiveOp, kernel: KernelKind,
                 group: List[int], launch_count: int = 1,
                 comm_name: str = "", group_index: int = 0) -> None:
        self.executor = executor
        self.comm = comm
        self.op = op
        self.kernel = kernel
        self.group = group
        self.launch_count = launch_count
        self.comm_name = comm_name
        self.group_index = group_index
        self.arrived = 0
        self.event = executor.engine.event()

    def arrive(self) -> BaseEvent:
        self.arrived += 1
        if self.arrived > len(self.group):
            raise SimulationError(
                f"collective gate {self.comm_name!r}[{self.group_index}]: "
                f"more arrivals than group members "
                f"({self.arrived} observed, {len(self.group)} expected "
                f"for ranks {self.group})"
            )
        if self.arrived == len(self.group):
            started_at = self.executor.engine.now
            inner = self.comm.run(self.op, launch_count=self.launch_count)
            inner.add_callback(lambda _ev: self._finish(started_at))
        return self.event

    def _finish(self, started_at: float) -> None:
        now = self.executor.engine.now
        for rank in self.group:
            self.executor.timeline.record(
                rank, Lane.COMMUNICATION, self.kernel, str(self.op.kind),
                started_at, now,
            )
        recorder = self.executor.recorder
        if recorder is not None:
            recorder.collective_phase(
                self.comm_name, self.group_index, str(self.op.kind),
                self.op.payload_bytes, self.launch_count,
                tuple(self.group), started_at, now,
            )
        self.event.succeed(None)


class Executor:
    """Runs an :class:`IterationSchedule` on a cluster for N iterations.

    Standalone use builds a private :class:`~repro.sim.engine.Engine` and
    :class:`~repro.sim.flows.FlowNetwork` per run (the historical
    behaviour).  The cluster service (:mod:`repro.cluster`) instead
    passes a *shared* ``engine``/``network`` so many jobs run
    concurrently on one event loop and one set of link ledgers; in that
    mode ``flow_tag`` prefixes every flow label the job launches (host
    transfers and collective traffic alike), keeping per-job traffic
    attributable in the shared ledgers and trace.
    """

    def __init__(self, cluster: Cluster, schedule: IterationSchedule, *,
                 traffic_profile: TrafficProfile = TrafficProfile.BURSTY,
                 swap_volumes: Optional[Dict[int, Raid0Volume]] = None,
                 internode_rate_efficiency: float = 0.35,
                 fault_plan: Optional[FaultPlan] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 tie_order: Optional[TieOrder] = None,
                 sanitize: bool = False,
                 trace_recorder: Optional[TraceRecorder] = None,
                 leak_sanitizer: Optional[LeakSanitizer] = None,
                 engine: Optional[Engine] = None,
                 network: Optional[FlowNetwork] = None,
                 flow_tag: str = "") -> None:
        schedule.validate()
        self.cluster = cluster
        self.schedule = schedule
        self.traffic_profile = traffic_profile
        self.swap_volumes = swap_volumes or {}
        owns_network = network is None
        self.engine = engine if engine is not None else Engine(tie_order=tie_order)
        self.sanitizer = ScheduleSanitizer(self.engine) if sanitize else None
        self.network = network if network is not None else FlowNetwork(self.engine)
        self.timeline = Timeline()
        self.flow_tag = flow_tag
        # The recorder's hooks are append-only (no engine interaction),
        # so attaching one cannot change the schedule; when absent every
        # hook site is a single None check.
        self.recorder = trace_recorder
        # Like the recorder, the leak sanitizer's hooks are pure
        # bookkeeping (ledger reservations, never admission control), so
        # attaching one cannot change the schedule either.  A shared
        # network's hooks belong to whoever built it (the cluster
        # service); only a privately built network is wired here.
        self.leaksan = leak_sanitizer
        if owns_network:
            self.network.recorder = trace_recorder
            self.network.leaksan = leak_sanitizer
        self.retry_policy = retry_policy
        # An empty (or absent) plan registers no hooks and schedules no
        # events, so a fault-free run is bit-identical with or without it.
        self.faults: Optional[FaultInjector] = (
            FaultInjector(fault_plan, cluster, self.engine, self.network)
            if fault_plan is not None else None
        )
        self._gates: Dict[Tuple[str, int, str], _CollectiveGate] = {}
        self._keyed_events: Dict[Tuple[int, str], BaseEvent] = {}
        self._communicators = self._build_communicators(internode_rate_efficiency)

    # -- setup ---------------------------------------------------------------
    def _build_communicators(
        self, internode_rate_efficiency: float
    ) -> Dict[Tuple[str, int], NcclCommunicator]:
        comms: Dict[Tuple[str, int], NcclCommunicator] = {}
        for name, spec in self.schedule.communicators.items():
            for index, group in enumerate(spec.groups):
                comms[(name, index)] = NcclCommunicator(
                    self.cluster, self.engine, self.network, group,
                    profile=self.traffic_profile,
                    internode_rate_efficiency=internode_rate_efficiency,
                    retry_policy=self.retry_policy,
                    label_prefix=self.flow_tag,
                )
        return comms

    # -- run -------------------------------------------------------------------
    def execute(self, num_iterations: int, *, should_stop=None):
        """The run as a schedulable generator (a *job body*).

        Standalone callers use :meth:`run`; the cluster service instead
        spawns this generator as one process among many on a shared
        engine (``engine.process(executor.execute(n))`` or ``yield
        from`` inside a larger job body).  ``should_stop`` is polled at
        iteration boundaries — the preemption hook: returning true stops
        the run cleanly after the current iteration, and the returned
        :class:`ExecutionResult` simply carries fewer iteration times.
        """
        if num_iterations < 1:
            raise ConfigurationError("need at least one iteration")
        return self._execute(num_iterations, should_stop)

    def _execute(self, num_iterations: int, should_stop):
        iteration_times: List[float] = []
        started_at = self.engine.now
        for iteration in range(num_iterations):
            started = self.engine.now
            processes = [
                self.engine.process(
                    self._rank_process(rank, iteration),
                    name=f"{self.flow_tag}rank{rank}/it{iteration}",
                )
                for rank in self.schedule.ranks
            ]
            yield self.engine.all_of(processes)
            iteration_times.append(self.engine.now - started)
            if should_stop is not None and should_stop():
                break
        # Training ends when the driver does.  engine.run() keeps draining
        # whatever else is queued (e.g. fault-revert callbacks scheduled
        # past the last iteration), and that trailing housekeeping must
        # not stretch total_time and dilute the bandwidth statistics.
        return ExecutionResult(
            iteration_times=iteration_times,
            timeline=self.timeline,
            total_time=self.engine.now - started_at,
        )

    def run(self, num_iterations: int) -> ExecutionResult:
        proc = self.engine.process(self.execute(num_iterations), name="driver")
        self.engine.run()
        check_liveness(self.engine)
        result: ExecutionResult = proc.value
        result.sanitizer = (
            self.sanitizer.finalize(self.cluster)
            if self.sanitizer is not None else None
        )
        result.fault_events = (
            list(self.faults.applied_events)
            if self.faults is not None else []
        )
        result.events_processed = self.engine.events_processed
        result.events_folded = self.engine.events_folded
        return result

    # -- per-rank interpretation ------------------------------------------------
    def _rank_process(self, rank: int, iteration: int):
        pending: List[BaseEvent] = []
        for step in self.schedule.steps_by_rank[rank]:
            if isinstance(step, ComputeStep):
                start = self.engine.now
                duration = step.duration
                if self.faults is not None:
                    # Sampled at kernel launch: a straggler window opening
                    # mid-kernel stretches the *next* kernel, matching how
                    # a clock drop only affects instructions not yet run.
                    duration *= straggler_multiplier(
                        step.kind, self.faults.compute_multiplier(rank)
                    )
                yield self.engine.timeout(duration)
                self.timeline.record(rank, Lane.COMPUTE, step.kind, step.name,
                                     start, self.engine.now)
            elif isinstance(step, IdleStep):
                start = self.engine.now
                yield self.engine.timeout(step.duration)
                self.timeline.record(rank, Lane.COMPUTE, KernelKind.IDLE,
                                     step.name, start, self.engine.now)
            elif isinstance(step, CollectiveStep):
                event = self._join_collective(rank, iteration, step)
                self._keyed_events[(rank, self._iter_key(iteration, step.key))] = event
                if step.blocking:
                    start = self.engine.now
                    yield event
                    self._record_idle(rank, start, step.key)
                else:
                    pending.append(event)
            elif isinstance(step, WaitPendingStep):
                if pending:
                    start = self.engine.now
                    yield self.engine.all_of(pending)
                    pending = []
                    self._record_idle(rank, start, step.name)
            elif isinstance(step, WaitForStep):
                event = self._keyed_events.get(
                    (rank, self._iter_key(iteration, step.key))
                )
                if event is None:
                    raise SimulationError(
                        f"rank {rank} waits for unknown key {step.key!r}"
                    )
                if not event.triggered:
                    start = self.engine.now
                    yield event
                    self._record_idle(rank, start, step.key)
                if event in pending:
                    pending.remove(event)
            elif isinstance(step, HostTransferStep):
                events = self._host_transfer(rank, step)
                if step.blocking:
                    start = self.engine.now
                    yield self.engine.all_of(events)
                    kind = (
                        KernelKind.NVME_IO
                        if Location.NVME in (step.src, step.dst)
                        else KernelKind.HOST_TRANSFER
                    )
                    self.timeline.record(rank, Lane.HOST_IO, kind, step.name,
                                         start, self.engine.now)
                    self._record_idle(rank, start, step.name)
                else:
                    pending.extend(events)
            elif isinstance(step, CpuWorkStep):
                start = self.engine.now
                duration = self._cpu_work_duration(rank, step)
                yield self.engine.timeout(duration)
                self._record_cpu_work(rank, step, start, self.engine.now)
            else:  # pragma: no cover - exhaustive over the IR
                raise SimulationError(f"unknown step type {type(step).__name__}")
        if pending:
            start = self.engine.now
            yield self.engine.all_of(pending)
            self._record_idle(rank, start, "drain_pending")

    # -- step helpers -------------------------------------------------------------
    @staticmethod
    def _iter_key(iteration: int, key: str) -> str:
        return f"it{iteration}/{key}"

    def _record_idle(self, rank: int, start: float, name: str) -> None:
        now = self.engine.now
        if now > start:
            self.timeline.record(rank, Lane.COMPUTE, KernelKind.IDLE,
                                 f"wait:{name}", start, now)

    def _join_collective(self, rank: int, iteration: int,
                         step: CollectiveStep) -> BaseEvent:
        spec = self.schedule.communicators[step.comm]
        group_index, group = spec.group_of(rank)
        gate_key = (step.comm, group_index, self._iter_key(iteration, step.key))
        self.engine.note_touch(f"stream:{step.comm}[{group_index}]")
        gate = self._gates.get(gate_key)
        if gate is None:
            comm = self._communicators[(step.comm, group_index)]
            op = CollectiveOp(step.kind, step.payload_bytes, comm.size)
            gate = _CollectiveGate(self, comm, op, step.kernel_kind, group,
                                   launch_count=step.op_count,
                                   comm_name=step.comm,
                                   group_index=group_index)
            self._gates[gate_key] = gate
        return gate.arrive()

    def _host_transfer(self, rank: int, step: HostTransferStep) -> List[BaseEvent]:
        gpu = self.cluster.gpu(rank).name
        dram = self.cluster.dram_for_rank(rank).name
        topology = self.cluster.topology

        def endpoint(loc: Location) -> Optional[str]:
            if loc is Location.GPU:
                return gpu
            if loc is Location.DRAM:
                return dram
            return None  # NVMe resolves per stripe member

        src = endpoint(step.src)
        dst = endpoint(step.dst)
        if src is not None and dst is not None:
            route = topology.route(src, dst)
            return [self.network.transfer(route, step.payload_bytes,
                                          profile=self.traffic_profile,
                                          label=self.flow_tag + step.name)]
        # One endpoint is the rank's NVMe swap volume: stripe the payload
        # across member drives, capping each flow at the drive's media
        # bandwidth under the aio layer.
        volume = self.swap_volumes.get(rank)
        if volume is None:
            raise ConfigurationError(
                f"rank {rank} performs NVMe I/O but has no swap volume"
            )
        reading = step.src is Location.NVME
        per_member = step.payload_bytes / len(volume.drives)
        events = []
        for drive in volume.drives:
            if reading:
                route = topology.route(drive.device.name, dram)
                media = (drive.effective_nand_read_bandwidth
                         * calibration.AIO_EFFICIENCY)
            else:
                route = topology.route(dram, drive.device.name)
                media = (drive.effective_nand_write_bandwidth
                         * calibration.AIO_EFFICIENCY)
            # The drive's NAND media, not its PCIe x4 link, bounds
            # sustained swap traffic; scale the flow's pool consumption so
            # aggregate throughput stays at media rate no matter how many
            # ranks swap against the drive concurrently.
            pcie_link = route.links[0] if reading else route.links[-1]
            multiplier = max(1.0, pcie_link.capacity_per_direction / media)
            events.append(
                self.network.transfer(route, per_member,
                                      profile=self.traffic_profile,
                                      weight_multiplier=multiplier,
                                      label=self.flow_tag + step.name)
            )
        return events

    def _ranks_per_socket(self, rank: int) -> int:
        """How many ranks' CPU work shares this rank's socket DRAM."""
        node = self.cluster.node_of_rank(rank)
        socket = self.cluster.gpu(rank).socket_index
        return max(1, sum(
            1 for gpu in node.gpus if gpu.socket_index == socket
        ))

    def _cpu_work_duration(self, rank: int, step: CpuWorkStep) -> float:
        cpu_spec = self.cluster.nodes[0].spec.cpu
        base = cpu_adam_step_time(step.num_params, cpu_spec)
        sharing = self._ranks_per_socket(rank)
        return base * sharing / calibration.CPU_ADAM_SHARE_EFFICIENCY

    def _record_cpu_work(self, rank: int, step: CpuWorkStep,
                         start: float, end: float) -> None:
        self.timeline.record(rank, Lane.HOST_IO, KernelKind.CPU_OPTIMIZER,
                             step.name, start, end)
        self.timeline.record(rank, Lane.COMPUTE, KernelKind.IDLE,
                             f"wait:{step.name}", start, end)
        # Charge the streamed optimizer bytes to the socket's DRAM channels.
        node = self.cluster.node_of_rank(rank)
        socket = self.cluster.gpu(rank).socket_index or 0
        link = self.cluster.topology.link_between(
            node.cpus[socket].name, node.drams[socket].name
        )
        link.ledger.record(start, end, step.num_params * CPU_ADAM_BYTES_PER_PARAM)
