"""Collective scheduling algorithms: ring vs. (binomial) tree.

NCCL selects between ring and tree schedules per operation: rings are
bandwidth-optimal (every byte crosses each link once per phase) but pay
``2(n-1)`` sequential latency steps for an all-reduce; binomial trees pay
only ``O(log n)`` steps at up to 2x the per-link traffic, winning for
small, latency-bound payloads — especially across nodes, where a hop
costs tens of microseconds.  ``Algorithm.AUTO`` mirrors NCCL's heuristic:
tree below a payload threshold, ring above.
"""

from __future__ import annotations

import enum
import math
from typing import List, Sequence, Tuple

from ..errors import ConfigurationError
from .primitives import CollectiveKind


class Algorithm(enum.Enum):
    RING = "ring"
    TREE = "tree"
    AUTO = "auto"


#: AUTO picks the tree schedule below this payload (NCCL's crossover for
#: multi-node all-reduce sits in the hundreds of kilobytes).
TREE_PAYLOAD_THRESHOLD = 512 * 1024

#: Collectives with a tree schedule; the rest always use the ring.
TREE_CAPABLE = frozenset({
    CollectiveKind.ALL_REDUCE,
    CollectiveKind.REDUCE,
    CollectiveKind.BROADCAST,
})


def choose_algorithm(algorithm: Algorithm, kind: CollectiveKind,
                     payload_bytes: float) -> Algorithm:
    """Resolve AUTO into RING or TREE for one operation."""
    if algorithm is Algorithm.RING:
        return Algorithm.RING
    if kind not in TREE_CAPABLE:
        return Algorithm.RING
    if algorithm is Algorithm.TREE:
        return Algorithm.TREE
    return (Algorithm.TREE if payload_bytes <= TREE_PAYLOAD_THRESHOLD
            else Algorithm.RING)


def tree_depth(group_size: int) -> int:
    """Levels in a binomial tree over ``group_size`` ranks."""
    if group_size < 1:
        raise ConfigurationError("group_size must be >= 1")
    if group_size == 1:
        return 0
    return math.ceil(math.log2(group_size))


def tree_edges(order: Sequence[int]) -> List[Tuple[int, int]]:
    """(child, parent) rank pairs of a binary tree over ``order``.

    The tree is built over the node-aware ring order, so subtrees stay
    node-local and only O(1) edges cross the inter-node fabric — the same
    property NCCL's dual binary trees have.
    """
    n = len(order)
    edges = []
    for index in range(1, n):
        parent_index = (index - 1) // 2
        edges.append((order[index], order[parent_index]))
    return edges


def tree_step_count(kind: CollectiveKind, group_size: int) -> int:
    """Sequential latency steps for the tree schedule."""
    depth = tree_depth(group_size)
    if kind is CollectiveKind.ALL_REDUCE:
        return 2 * depth  # reduce up + broadcast down
    return depth


def tree_edge_traffic_factor(kind: CollectiveKind) -> float:
    """Bytes each tree edge carries, as a multiple of the payload."""
    if kind is CollectiveKind.ALL_REDUCE:
        return 2.0  # full payload up (reduce) and down (broadcast)
    return 1.0
