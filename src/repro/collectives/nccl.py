"""Topology-aware NCCL communicator over the fluid-flow network.

A :class:`NcclCommunicator` binds a group of GPU ranks to the cluster
topology and executes collectives as simulated flows.

Scheduling mirrors NCCL's behaviour on the paper's hardware:

* **Node-aware ring ordering** — ranks are ordered so GPUs within a node
  are adjacent, limiting inter-node hops to one crossing per node boundary
  per ring direction.
* **Multiple rings (channels)** — NCCL stripes a collective over several
  rings to use all 12 NVLinks per GPU and both directions of every link.
  We build forward+backward rings plus a shuffled ring intra-node
  (~3x a single ring's bandwidth, matching measured NCCL bus bandwidth on
  4x A100), and forward+backward rings per within-node rotation across
  nodes so both ConnectX-6 NICs carry traffic.
* **Inter-node launch overhead** — collectives that cross RoCE pay a
  per-operation setup cost (QP scheduling, proxy-thread handoff), which is
  what makes fine-grained per-layer collectives (ZeRO-3, Megatron-LM TP)
  so expensive across nodes in the paper's dual-node results.

Collectives return simulation events; callers (the executor's per-rank
processes) yield them.  ``estimate_*`` variants cost an operation without
running the DES, for analytic planning and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError, TransportTimeoutError
from ..hardware.cluster import Cluster
from ..hardware.link import Link
from ..hardware.serdes import TrafficProfile
from ..hardware.topology import Route
from ..sim.engine import BaseEvent, Engine
from ..sim.fastpath.memo import COST_CACHE, collective_cost_key
from ..sim.flows import FlowNetwork
from .algorithms import (
    Algorithm,
    choose_algorithm,
    tree_edge_traffic_factor,
    tree_edges,
    tree_step_count,
)
from .primitives import CollectiveKind, CollectiveOp


#: Per-operation launch overhead for collectives whose ring crosses RoCE.
#: Calibrated so per-layer collectives across nodes reproduce the paper's
#: dual-node throughput collapse (Section IV-C2).
DEFAULT_INTERNODE_LAUNCH_OVERHEAD = 2.5e-3
#: Launch overhead for NVLink-only collectives (kernel launch + protocol).
DEFAULT_INTRANODE_LAUNCH_OVERHEAD = 25e-6


@dataclass(frozen=True)
class RetryPolicy:
    """Transport-level retry semantics for transient path outages.

    When a collective is launched while a link on one of its ring routes
    is fully down (a flapping NIC, an injected outage — see
    :mod:`repro.faults`), the communicator behaves like NCCL's IB/RoCE
    transport: it waits ``timeout`` seconds, re-probes, and backs off
    geometrically by ``backoff`` per failed probe, up to ``max_retries``
    probes.  Exhausting the budget raises
    :class:`~repro.errors.TransportTimeoutError` — the simulated analog
    of a communicator abort killing the training job.
    """

    timeout: float = 250e-6
    backoff: float = 2.0
    max_retries: int = 20

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ConfigurationError("retry timeout must be positive")
        if self.backoff < 1.0:
            raise ConfigurationError("retry backoff must be >= 1")
        if self.max_retries < 1:
            raise ConfigurationError("max_retries must be >= 1")

    def delays(self) -> List[float]:
        """The wait before each probe, in order."""
        return [
            self.timeout * self.backoff ** attempt
            for attempt in range(self.max_retries)
        ]


@dataclass(frozen=True)
class Ring:
    """One NCCL channel: a cyclic rank order and its hop routes."""

    order: Tuple[int, ...]
    routes: Tuple[Route, ...]


@dataclass(frozen=True)
class _LaunchPlan:
    """Memoized flow schedule for one collective shape on one communicator.

    Everything here is *capacity-independent*: routes, per-transfer
    bytes, pool-consumption weights, and the launch+step-latency
    overhead are all static properties of the ring/tree structure.
    Time-varying link capacity (fault degradation) enters at execution
    time through :meth:`repro.sim.flows.Flow.refresh_capacity`, which
    re-derives every flow's rate ceiling on each allocation — so a plan
    computed on a healthy fabric stays valid under degradation.
    """

    #: ``(route, bytes, weight_multiplier)`` per flow to launch.
    transfers: Tuple[Tuple[Route, float, float], ...]
    label: str
    #: launch overhead + sequential-step latency, per real NCCL launch.
    base_overhead: float


class NcclCommunicator:
    """One NCCL communicator (process group) over a set of GPU ranks."""

    def __init__(self, cluster: Cluster, engine: Engine, network: FlowNetwork,
                 ranks: Sequence[int], *,
                 profile: TrafficProfile = TrafficProfile.BURSTY,
                 internode_launch_overhead: float = DEFAULT_INTERNODE_LAUNCH_OVERHEAD,
                 intranode_launch_overhead: float = DEFAULT_INTRANODE_LAUNCH_OVERHEAD,
                 internode_rate_efficiency: float = 0.55,
                 retry_policy: Optional[RetryPolicy] = None,
                 label_prefix: str = "") -> None:
        if not ranks:
            raise ConfigurationError("communicator needs at least one rank")
        if len(set(ranks)) != len(ranks):
            raise ConfigurationError("duplicate ranks in communicator")
        self.cluster = cluster
        self.engine = engine
        self.network = network
        self.profile = profile
        # Applied at transfer-launch time (not baked into the memoized
        # launch plans) so plans stay shareable across identically keyed
        # collectives while the shared-ledger flows stay attributable to
        # the job that launched them.
        self.label_prefix = label_prefix
        self.internode_launch_overhead = internode_launch_overhead
        self.intranode_launch_overhead = intranode_launch_overhead
        if not 0 < internode_rate_efficiency <= 1:
            raise ConfigurationError(
                "internode_rate_efficiency must be in (0, 1]"
            )
        self.internode_rate_efficiency = internode_rate_efficiency
        self.retry_policy = retry_policy or RetryPolicy()
        self.ranks = self._node_aware_order(cluster, list(ranks))
        self.rings = self._build_rings()
        # The unique links of the ring structure, in traversal order —
        # the outage probe (:meth:`_down_links`) runs before *every*
        # collective, so it must not re-walk rings x routes each time.
        self._ring_links: Tuple[Link, ...] = tuple(dict.fromkeys(
            link
            for ring in self.rings
            for route in ring.routes
            for link in route.links
        ))
        #: memoized launch plans keyed on (schedule, kind, payload) —
        #: identical collective calls across iterations reuse the plan
        #: instead of re-deriving routes, payload splits, and weights.
        self._plan_cache: Dict[Tuple[str, object, float], _LaunchPlan] = {}

    # -- construction -------------------------------------------------------------
    @staticmethod
    def _node_aware_order(cluster: Cluster, ranks: List[int]) -> Tuple[int, ...]:
        """Order ranks so same-node GPUs are ring-adjacent (NCCL behaviour)."""
        return tuple(sorted(ranks, key=lambda r: (r // cluster.gpus_per_node, r)))

    def _routes_for_order(self, order: Sequence[int],
                          cross_socket_nic: bool = False) -> Tuple[Route, ...]:
        """Hop routes for a ring order.

        ``cross_socket_nic`` forces node-boundary hops through the NIC on
        the *other* socket, modelling NCCL's imperfect NIC affinity with
        multiple channels — the source of the xGMI traffic the paper
        observes in dual-node training ("a portion of inter-node traffic
        from the GPUs goes through the NIC connected to the neighboring
        CPU", Section IV-E2).
        """
        topology = self.cluster.topology
        per_node = self.cluster.gpus_per_node
        routes = []
        n = len(order)
        for i in range(n):
            src_rank = order[i]
            dst_rank = order[(i + 1) % n]
            src = self.cluster.gpu(src_rank)
            dst = self.cluster.gpu(dst_rank)
            crosses_nodes = src_rank // per_node != dst_rank // per_node
            if crosses_nodes and cross_socket_nic:
                src_node = self.cluster.node_of_rank(src_rank)
                dst_node = self.cluster.node_of_rank(dst_rank)
                waypoints = [
                    src_node.nic_for_socket(1 - (src.socket_index or 0)).name,
                    dst_node.nic_for_socket(1 - (dst.socket_index or 0)).name,
                ]
                routes.append(topology.route_via(src.name, dst.name,
                                                 waypoints))
            else:
                routes.append(topology.route(src.name, dst.name))
        return tuple(routes)

    def _build_rings(self) -> List[Ring]:
        n = len(self.ranks)
        if n < 2:
            return []
        base = self.ranks
        rings: List[Ring] = [
            Ring(base, self._routes_for_order(base)),
            Ring(tuple(reversed(base)),
                 self._routes_for_order(tuple(reversed(base)))),
        ]
        if self.spans_nodes:
            # Rotate within each node block so the node-boundary crossings
            # land on GPUs of the other socket; these channels exit via
            # the cross-socket NIC (imperfect NIC affinity).
            rotated = self._rotate_within_nodes(base, 2)
            rings.append(Ring(rotated, self._routes_for_order(
                rotated, cross_socket_nic=True)))
            reversed_rotated = tuple(reversed(rotated))
            rings.append(Ring(reversed_rotated, self._routes_for_order(
                reversed_rotated, cross_socket_nic=True)))
        elif n >= 4:
            # A third intra-node ring over a shuffled order engages the
            # NVLink pairs the identity ring leaves idle.
            shuffled = base[0::2] + base[1::2]
            rings.append(Ring(shuffled, self._routes_for_order(shuffled)))
        return rings

    def _rotate_within_nodes(self, order: Tuple[int, ...], shift: int) -> Tuple[int, ...]:
        per_node = self.cluster.gpus_per_node
        blocks: List[List[int]] = []
        for start in range(0, len(order), per_node):
            block = list(order[start:start + per_node])
            k = shift % len(block)
            blocks.append(block[k:] + block[:k])
        return tuple(rank for block in blocks for rank in block)

    @property
    def size(self) -> int:
        return len(self.ranks)

    @property
    def spans_nodes(self) -> bool:
        nodes = {r // self.cluster.gpus_per_node for r in self.ranks}
        return len(nodes) > 1

    @property
    def launch_overhead(self) -> float:
        return (
            self.internode_launch_overhead
            if self.spans_nodes
            else self.intranode_launch_overhead
        )

    # -- execution (DES) ------------------------------------------------------------
    def run(self, op: CollectiveOp, *, launch_count: int = 1,
            algorithm: Algorithm = Algorithm.AUTO) -> BaseEvent:
        """Execute ``op`` on the flow network; returns the completion event.

        ``launch_count`` is the number of real NCCL launches this payload
        stands for (layer-fused schedule steps pass the fused count so
        per-operation launch overheads stay faithful).  ``algorithm``
        selects ring vs. binomial-tree scheduling; AUTO mirrors NCCL's
        payload-based heuristic.
        """
        if op.group_size != self.size:
            raise ConfigurationError(
                f"op group size {op.group_size} != communicator size {self.size}"
            )
        if launch_count < 1:
            raise ConfigurationError("launch_count must be >= 1")
        if self.size == 1 or op.payload_bytes <= 0:
            return self.engine.timeout(0.0)
        if self._down_links():
            # A link on the collective's path is dark: enter the
            # transport's probe/backoff loop before launching any flows.
            return self.engine.process(
                self._retry_until_path_up(op, launch_count, algorithm),
                name=f"nccl-retry/{op.kind}",
            )
        return self._dispatch(op, launch_count, algorithm)

    def _dispatch(self, op: CollectiveOp, launch_count: int,
                  algorithm: Algorithm) -> BaseEvent:
        chosen = choose_algorithm(
            algorithm, op.kind, op.payload_bytes / launch_count
        )
        if chosen is Algorithm.TREE:
            return self._run_tree(op, launch_count)
        return self._run_ring(op, launch_count)

    def _down_links(self) -> List[str]:
        """Names of fully-down links on any of this communicator's rings."""
        return [link.name for link in self._ring_links if link.is_down]

    def _retry_until_path_up(self, op: CollectiveOp, launch_count: int,
                             algorithm: Algorithm):
        """Probe/backoff process wrapping a collective behind an outage."""
        for delay in self.retry_policy.delays():
            yield self.engine.timeout(delay)
            if not self._down_links():
                result = yield self._dispatch(op, launch_count, algorithm)
                return result
        down = ", ".join(self._down_links())
        raise TransportTimeoutError(
            f"collective {op.kind} aborted after "
            f"{self.retry_policy.max_retries} retries; links still down: "
            f"{down or '(recovered too late)'}"
        )

    #: Distinct collective shapes per communicator stay tiny (a schedule
    #: reuses a handful of payload sizes); the cap is a leak guard, not a
    #: working-set tuning knob.
    _PLAN_CACHE_MAX = 512

    def _launch_plan(self, schedule: str, op: CollectiveOp) -> _LaunchPlan:
        """The memoized flow schedule for one (schedule, kind, payload)."""
        key = (schedule, op.kind, float(op.payload_bytes))
        plan = self._plan_cache.get(key)
        if plan is None:
            plan = (self._ring_plan(op) if schedule == "ring"
                    else self._tree_plan(op))
            if len(self._plan_cache) < self._PLAN_CACHE_MAX:
                self._plan_cache[key] = plan
        return plan

    def _ring_plan(self, op: CollectiveOp) -> _LaunchPlan:
        per_ring_payload = op.payload_bytes / len(self.rings)
        per_link = per_ring_payload * (op.per_link_bytes / op.payload_bytes)
        transfers: List[Tuple[Route, float, float]] = []
        max_latency = 0.0
        for ring in self.rings:
            for route in ring.routes:
                max_latency = max(max_latency, route.latency())
                transfers.append(
                    (route, per_link, self._route_weight(route))
                )
        # Sequential ring steps each pay a hop latency beyond the one the
        # flow itself charges; launch overhead per real operation.
        step_latency = max(0, op.steps - 1) * max_latency
        return _LaunchPlan(tuple(transfers), str(op.kind),
                           self.launch_overhead + step_latency)

    def _tree_plan(self, op: CollectiveOp) -> _LaunchPlan:
        per_edge = op.payload_bytes * tree_edge_traffic_factor(op.kind)
        topology = self.cluster.topology
        transfers: List[Tuple[Route, float, float]] = []
        max_latency = 0.0
        for child, parent in tree_edges(self.ranks):
            route = topology.route(self.cluster.gpu(child).name,
                                   self.cluster.gpu(parent).name)
            max_latency = max(max_latency, route.latency())
            transfers.append((route, per_edge, self._route_weight(route)))
        steps = tree_step_count(op.kind, self.size)
        step_latency = max(0, steps - 1) * max_latency
        return _LaunchPlan(tuple(transfers), f"{op.kind}(tree)",
                           self.launch_overhead + step_latency)

    def _launch(self, plan: _LaunchPlan, launch_count: int) -> BaseEvent:
        events: List[BaseEvent] = [
            self.network.transfer(
                route, num_bytes, profile=self.profile,
                weight_multiplier=weight,
                label=self.label_prefix + plan.label,
            )
            for route, num_bytes, weight in plan.transfers
        ]
        events.append(self.engine.timeout(plan.base_overhead * launch_count))
        return self.engine.all_of(events)

    def _run_ring(self, op: CollectiveOp, launch_count: int) -> BaseEvent:
        return self._launch(self._launch_plan("ring", op), launch_count)

    def _run_tree(self, op: CollectiveOp, launch_count: int) -> BaseEvent:
        """Binomial-tree schedule over the node-aware order."""
        return self._launch(self._launch_plan("tree", op), launch_count)

    def all_reduce(self, payload_bytes: float) -> BaseEvent:
        return self.run(CollectiveOp(CollectiveKind.ALL_REDUCE, payload_bytes, self.size))

    def all_gather(self, payload_bytes: float) -> BaseEvent:
        return self.run(CollectiveOp(CollectiveKind.ALL_GATHER, payload_bytes, self.size))

    def reduce_scatter(self, payload_bytes: float) -> BaseEvent:
        return self.run(CollectiveOp(CollectiveKind.REDUCE_SCATTER, payload_bytes, self.size))

    def broadcast(self, payload_bytes: float) -> BaseEvent:
        return self.run(CollectiveOp(CollectiveKind.BROADCAST, payload_bytes, self.size))

    def reduce(self, payload_bytes: float) -> BaseEvent:
        return self.run(CollectiveOp(CollectiveKind.REDUCE, payload_bytes, self.size))

    def _route_weight(self, route: Route) -> float:
        """Pool-consumption multiplier: NCCL's inter-node protocol
        efficiency.  Scaling *weight* (not a per-flow cap) means the
        aggregate attainable RoCE rate is ``efficiency x`` the raw link
        rate no matter how many outstanding collectives there are — the
        proxy thread, not the wire, is the bottleneck."""
        from ..hardware.link import LinkClass

        if any(link.link_class is LinkClass.ROCE for link in route.links):
            return 1.0 / self.internode_rate_efficiency
        return 1.0

    def send_recv(self, src_rank: int, dst_rank: int,
                  payload_bytes: float) -> BaseEvent:
        """Point-to-point transfer (pipeline-parallel stage boundaries)."""
        src = self.cluster.gpu(src_rank).name
        dst = self.cluster.gpu(dst_rank).name
        route = self.cluster.topology.route(src, dst)
        return self.network.transfer(route, payload_bytes, profile=self.profile,
                                     label=self.label_prefix + "send_recv")

    # -- analytic estimation (no DES) --------------------------------------------
    def estimate(self, op: CollectiveOp, *,
                 algorithm: Algorithm = Algorithm.AUTO) -> float:
        """Closed-form seconds for ``op``, assuming an otherwise idle fabric.

        Mirrors :meth:`run`'s ring/tree selection so planners comparing
        estimates against executions see consistent costs.  Evaluations
        are memoized in the process-wide
        :data:`~repro.sim.fastpath.memo.COST_CACHE`, keyed on everything
        the closed form reads — collective shape, participant order,
        communicator calibration, the static fabric fingerprint, and the
        current degradation stamp — so repeated planner queries over the
        same fabric are dictionary lookups.
        """
        if self.size == 1 or op.payload_bytes <= 0:
            return 0.0
        topology = self.cluster.topology
        key = collective_cost_key(
            kind=str(op.kind),
            payload_bytes=float(op.payload_bytes),
            participants=self.ranks,
            algorithm=str(algorithm),
            profile=str(self.profile),
            internode_launch_overhead=self.internode_launch_overhead,
            intranode_launch_overhead=self.intranode_launch_overhead,
            internode_rate_efficiency=self.internode_rate_efficiency,
            topology_fingerprint=topology.fingerprint(),
            degradation_stamp=topology.degradation_stamp(),
        )
        return COST_CACHE.lookup(
            key, lambda: self._estimate_uncached(op, algorithm)
        )

    def _estimate_uncached(self, op: CollectiveOp,
                           algorithm: Algorithm) -> float:
        """The actual closed form behind :meth:`estimate`.

        Rings run concurrently; links shared by several rings split
        their capacity, so the ring estimate scales each ring's time by
        how many rings reuse its slowest link.
        """
        if choose_algorithm(algorithm, op.kind,
                            op.payload_bytes) is Algorithm.TREE:
            return self._estimate_tree(op)
        per_link = op.per_link_bytes / len(self.rings)
        link_use: dict = {}
        for ring in self.rings:
            for route in ring.routes:
                for link in route.links:
                    link_use[link] = link_use.get(link, 0) + 1
        worst = 0.0
        for ring in self.rings:
            for route in ring.routes:
                sharing = max(link_use[link] for link in route.links)
                # Forward/backward rings use opposite directions: duplex
                # links only contend with same-direction reuse (~half).
                effective_sharing = max(1.0, sharing / 2.0)
                rate = route.bandwidth(self.profile) / self._route_weight(route)
                time = per_link * effective_sharing / rate
                worst = max(worst, time + route.latency())
        return worst + self.launch_overhead

    def _estimate_tree(self, op: CollectiveOp) -> float:
        """Closed-form cost of the binomial-tree schedule."""
        per_edge = op.payload_bytes * tree_edge_traffic_factor(op.kind)
        topology = self.cluster.topology
        worst = 0.0
        for child, parent in tree_edges(self.ranks):
            route = topology.route(self.cluster.gpu(child).name,
                                   self.cluster.gpu(parent).name)
            rate = route.bandwidth(self.profile) / self._route_weight(route)
            worst = max(worst, per_edge / rate + route.latency())
        steps = tree_step_count(op.kind, self.size)
        # Latency per sequential level beyond the first edge's own.
        level_latency = max(
            (topology.route(self.cluster.gpu(c).name,
                            self.cluster.gpu(p).name).latency()
             for c, p in tree_edges(self.ranks)), default=0.0,
        )
        return worst + max(0, steps - 1) * level_latency + self.launch_overhead

    def estimate_all_reduce(self, payload_bytes: float) -> float:
        return self.estimate(
            CollectiveOp(CollectiveKind.ALL_REDUCE, payload_bytes, self.size)
        )

    def estimate_all_gather(self, payload_bytes: float) -> float:
        return self.estimate(
            CollectiveOp(CollectiveKind.ALL_GATHER, payload_bytes, self.size)
        )
