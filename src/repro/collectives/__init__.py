"""Topology-aware collective-communication models (NCCL analog)."""

from .algorithms import (
    Algorithm,
    TREE_PAYLOAD_THRESHOLD,
    choose_algorithm,
    tree_depth,
    tree_edges,
    tree_step_count,
)
from .nccl import NcclCommunicator
from .primitives import (
    CollectiveKind,
    CollectiveOp,
    ring_step_count,
    ring_traffic_factor,
)

__all__ = [
    "Algorithm",
    "CollectiveKind",
    "CollectiveOp",
    "NcclCommunicator",
    "TREE_PAYLOAD_THRESHOLD",
    "choose_algorithm",
    "tree_depth",
    "tree_edges",
    "tree_step_count",
    "ring_step_count",
    "ring_traffic_factor",
]
