"""Collective-communication primitives (the NCCL operations of Fig. 5).

The paper's application-level characterization observes five NCCL kernels:
Reduce, Broadcast, All-Gather, All-Reduce (Section IV-A1), plus point-to-
point sends for pipeline parallelism.  Each primitive has a well-known
per-link traffic factor under ring scheduling, which the algorithms module
turns into simulated flows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import Bytes, Scalar


class CollectiveKind(enum.Enum):
    ALL_REDUCE = "all_reduce"
    ALL_GATHER = "all_gather"
    REDUCE_SCATTER = "reduce_scatter"
    BROADCAST = "broadcast"
    REDUCE = "reduce"
    SEND_RECV = "send_recv"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def ring_traffic_factor(kind: CollectiveKind, group_size: int) -> Scalar:
    """Bytes each ring link carries, as a multiple of the payload size.

    For a payload of ``B`` bytes over an ``n``-rank ring:

    * all-reduce:      2 (n-1)/n x B   (reduce-scatter + all-gather phases)
    * all-gather:        (n-1)/n x B
    * reduce-scatter:    (n-1)/n x B
    * broadcast/reduce:  (n-1)/n x B   (pipelined ring)
    * send/recv:                 1 x B  (single hop)
    """
    if group_size < 1:
        raise ConfigurationError("group_size must be >= 1")
    if group_size == 1:
        return 0.0
    n = group_size
    if kind is CollectiveKind.ALL_REDUCE:
        return 2.0 * (n - 1) / n
    if kind is CollectiveKind.SEND_RECV:
        return 1.0
    return (n - 1) / n


def ring_step_count(kind: CollectiveKind, group_size: int) -> int:
    """Number of sequential ring steps (latency terms)."""
    if group_size <= 1:
        return 0
    n = group_size
    if kind is CollectiveKind.ALL_REDUCE:
        return 2 * (n - 1)
    if kind is CollectiveKind.SEND_RECV:
        return 1
    return n - 1


@dataclass(frozen=True)
class CollectiveOp:
    """A single collective invocation to be costed/executed."""

    kind: CollectiveKind
    payload_bytes: Bytes
    group_size: int

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ConfigurationError("payload must be non-negative")
        if self.group_size < 1:
            raise ConfigurationError("group size must be >= 1")

    @property
    def per_link_bytes(self) -> Bytes:
        return self.payload_bytes * ring_traffic_factor(self.kind, self.group_size)

    @property
    def steps(self) -> int:
        return ring_step_count(self.kind, self.group_size)
