"""Inter-node bandwidth stress tests (paper Fig. 4).

Reproduces Section III-C's methodology on the simulator:

* **CPU-RoCE** — four perftest kernel instances, two per socket, each
  streaming bidirectionally between the two nodes' DRAM.  Same-socket
  uses the socket-local NIC; cross-socket forces the peer NIC over xGMI.
* **GPU-RoCE** — four instances, one per GPU, using GPUDirect RDMA so the
  NIC DMAs GPU memory directly (no DRAM traffic, as the paper observes).

Each test runs the flows on the DES for a fixed duration, then reports
average and peak attained bandwidth per interconnect class from the link
ledgers — the quantities plotted in Fig. 4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import ConfigurationError
from ..hardware.cluster import Cluster
from ..hardware.link import LinkClass
from ..hardware.serdes import TrafficProfile
from ..hardware.topology import Route
from ..sim.engine import Engine
from ..sim.flows import FlowNetwork
from ..telemetry.bandwidth import BandwidthMonitor, BandwidthStats
from .perftest import SocketPlacement


class TestKind(enum.Enum):
    CPU_ROCE = "cpu_roce"
    GPU_ROCE = "gpu_roce"


@dataclass(frozen=True)
class StressResult:
    """Fig. 4 panel: per-class average/peak attained bandwidth."""

    kind: TestKind
    placement: SocketPlacement
    duration: float
    stats: Dict[LinkClass, BandwidthStats]

    @property
    def roce_average_gbps(self) -> float:
        return self.stats[LinkClass.ROCE].average_gbps

    def attained_fraction(self, theoretical_bidirectional: float = 50e9) -> float:
        """Attained fraction of theoretical RoCE bandwidth (per NIC pair).

        The paper quotes 93 % same-socket CPU, 47 % cross-socket CPU,
        52 % / 42 % for GPU-RoCE.
        """
        per_nic = self.stats[LinkClass.ROCE].average / 2.0  # two NICs
        return per_nic / theoretical_bidirectional


def _cpu_routes(cluster: Cluster, placement: SocketPlacement) -> List[Route]:
    """Four kernel instances, two per socket (Section III-C2)."""
    routes = []
    topology = cluster.topology
    for socket in (0, 1):
        src = cluster.nodes[0].dram_name(socket)
        dst = cluster.nodes[1].dram_name(socket)
        if placement is SocketPlacement.SAME_SOCKET:
            nic = socket
        else:
            nic = 1 - socket
        waypoints = [cluster.nodes[0].nic_name(nic),
                     cluster.nodes[1].nic_name(nic)]
        route = topology.route_via(src, dst, waypoints)
        routes.extend([route, route])  # two instances per socket
    return routes


def _gpu_routes(cluster: Cluster, placement: SocketPlacement) -> List[Route]:
    """Four kernel instances, one per GPU (Section III-C3)."""
    routes = []
    topology = cluster.topology
    for local_rank in range(cluster.gpus_per_node):
        gpu_src = cluster.nodes[0].gpus[local_rank]
        gpu_dst = cluster.nodes[1].gpus[local_rank]
        socket = gpu_src.socket_index or 0
        nic = socket if placement is SocketPlacement.SAME_SOCKET else 1 - socket
        waypoints = [cluster.nodes[0].nic_name(nic),
                     cluster.nodes[1].nic_name(nic)]
        routes.append(topology.route_via(gpu_src.name, gpu_dst.name, waypoints))
    return routes


def run_stress_test(cluster: Cluster, kind: TestKind,
                    placement: SocketPlacement, *,
                    duration: float = 10.0) -> StressResult:
    """Stream bidirectional traffic for ``duration`` simulated seconds."""
    if cluster.num_nodes < 2:
        raise ConfigurationError("the stress test needs two nodes")
    if duration <= 0:
        raise ConfigurationError("duration must be positive")
    cluster.reset()
    engine = Engine()
    network = FlowNetwork(engine)
    if kind is TestKind.CPU_ROCE:
        routes = _cpu_routes(cluster, placement)
    else:
        routes = _gpu_routes(cluster, placement)
    # Bidirectional streaming: one long-lived flow each way per instance,
    # sized so it outlives the measurement window.
    generous = duration * 60e9
    for route in routes:
        network.transfer(route, generous, profile=TrafficProfile.SUSTAINED,
                         label=f"{kind.value}-fwd")
        network.transfer(_reverse_route(cluster, route), generous,
                         profile=TrafficProfile.SUSTAINED,
                         label=f"{kind.value}-rev")
    engine.run(until=duration)
    network.settle()
    monitor = BandwidthMonitor(cluster)
    stats = monitor.table(0.0, duration)
    return StressResult(kind=kind, placement=placement, duration=duration,
                        stats=stats)


def _reverse_route(cluster: Cluster, route: Route) -> Route:
    """The same path traversed in the opposite direction."""
    sequence = [route.source]
    cursor = route.source
    for link in route.links:
        cursor = link.other_end(cursor)
        sequence.append(cursor)
    reverse_inner = list(reversed(sequence[1:-1]))
    return cluster.topology.route_via(route.destination, route.source,
                                      reverse_inner)


def full_stress_suite(cluster: Cluster, *, duration: float = 10.0
                      ) -> Dict[Tuple[TestKind, SocketPlacement], StressResult]:
    """All four Fig. 4 panels."""
    return {
        (kind, placement): run_stress_test(cluster, kind, placement,
                                           duration=duration)
        for kind in TestKind
        for placement in SocketPlacement
    }
