"""OFED-perftest-style RoCE latency microbenchmarks (paper Fig. 3).

The paper measures one-way latency of channel-semantic SEND and
memory-semantic RDMA READ / RDMA WRITE between the two nodes for message
sizes from 2 B to 8 MB, in same-socket (NIC local to the pinned CPU) and
cross-socket (NIC behind the peer socket's xGMI) placements.

Latency decomposes as ``verb_overhead + route_latency + size / bandwidth``;
cross-socket routes inherit the SerDes-contention latency inflation from
:mod:`repro.hardware.serdes` (Fig. 3's ~7x gap below 64 kB).
RDMA READ pays one extra round trip (request + response); SEND adds the
receiver's CQ handling.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import ConfigurationError
from ..hardware.cluster import Cluster
from ..hardware.serdes import TrafficProfile
from ..hardware.topology import Route
from ..units import US


class Verb(enum.Enum):
    """RDMA verbs measured by the paper."""

    SEND = "send"
    RDMA_READ = "rdma_read"
    RDMA_WRITE = "rdma_write"


#: Per-verb software/NIC overhead added on top of the wire latency:
#: WRITE is fully offloaded; SEND involves the receive queue; READ is a
#: round trip initiated by the requester.
VERB_OVERHEAD = {
    Verb.SEND: 0.9 * US,
    Verb.RDMA_READ: 0.4 * US,
    Verb.RDMA_WRITE: 0.1 * US,
}

#: Fig. 3's message-size sweep (bytes), 2 B to 8 MB in powers of two.
MESSAGE_SIZES: Tuple[int, ...] = tuple(2 ** i for i in range(1, 24))


class SocketPlacement(enum.Enum):
    """Whether the test kernel's CPU uses its local or the peer NIC."""

    SAME_SOCKET = "same_socket"
    CROSS_SOCKET = "cross_socket"


@dataclass(frozen=True)
class LatencySample:
    verb: Verb
    placement: SocketPlacement
    message_bytes: int
    latency: float

    @property
    def latency_us(self) -> float:
        return self.latency / US


def _test_route(cluster: Cluster, placement: SocketPlacement) -> Route:
    """The route perftest traffic takes between the two nodes' DRAM.

    Same-socket pins the kernel on socket 0 using NIC 0 on both ends;
    cross-socket forces NIC 1 (behind xGMI) on both ends, matching the
    paper's numactl pinning (Section III-C).
    """
    if cluster.num_nodes < 2:
        raise ConfigurationError("the latency test needs two nodes")
    src = cluster.nodes[0].dram_name(0)
    dst = cluster.nodes[1].dram_name(0)
    if placement is SocketPlacement.SAME_SOCKET:
        return cluster.topology.route(src, dst)
    waypoints = [cluster.nodes[0].nic_name(1), cluster.nodes[1].nic_name(1)]
    return cluster.topology.route_via(src, dst, waypoints)


def measure_latency(cluster: Cluster, verb: Verb,
                    placement: SocketPlacement,
                    message_bytes: int) -> LatencySample:
    """One-way latency for one verb/placement/message size."""
    if message_bytes <= 0:
        raise ConfigurationError("message size must be positive")
    route = _test_route(cluster, placement)
    wire = route.latency()
    if verb is Verb.RDMA_READ:
        wire *= 2.0  # request + data response
    stream = message_bytes / route.bandwidth(TrafficProfile.SUSTAINED)
    return LatencySample(
        verb=verb,
        placement=placement,
        message_bytes=message_bytes,
        latency=VERB_OVERHEAD[verb] + wire + stream,
    )


def latency_sweep(cluster: Cluster,
                  sizes: Sequence[int] = MESSAGE_SIZES
                  ) -> Dict[Tuple[Verb, SocketPlacement], List[LatencySample]]:
    """The full Fig. 3 sweep: every verb x placement x size."""
    results: Dict[Tuple[Verb, SocketPlacement], List[LatencySample]] = {}
    for verb in Verb:
        for placement in SocketPlacement:
            results[(verb, placement)] = [
                measure_latency(cluster, verb, placement, size)
                for size in sizes
            ]
    return results
