"""Inter-node latency and bandwidth stress tests (paper Section III-C)."""

from .bandwidth_test import (
    StressResult,
    TestKind,
    full_stress_suite,
    run_stress_test,
)
from .perftest import (
    MESSAGE_SIZES,
    LatencySample,
    SocketPlacement,
    Verb,
    latency_sweep,
    measure_latency,
)

__all__ = [
    "LatencySample",
    "MESSAGE_SIZES",
    "SocketPlacement",
    "StressResult",
    "TestKind",
    "Verb",
    "full_stress_suite",
    "latency_sweep",
    "measure_latency",
    "run_stress_test",
]
