"""Canonical serializable inference workload: the :class:`InferenceSpec`.

The serving analog of :class:`repro.api.RunSpec` — and the second
implementation of the :class:`repro.api.workload.Workload` protocol.
An ``InferenceSpec`` pins one tensor-parallel serving instance (model
size, TP degree, node count), its open-loop traffic (seeded Poisson
parameters or an explicit request trace), the batching policy and
admission limits, and the latency SLOs the report scores against, with
the same round-trip and cache-key contract as ``RunSpec``, so
campaigns sweep and cache serving runs exactly like training runs.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, List, Mapping, Optional, Tuple

from ..api.spec import TIE_ORDERS, stable_key
from ..errors import ConfigurationError
from .requests import REQUEST_MIXES, Request, poisson_requests, trace_requests

#: Batch-admission policies the serving scheduler implements.
#: ``continuous`` admits at every token-level step (Orca/vLLM-style
#: continuous batching); ``static`` drains the whole running batch
#: before admitting the next one (the classical serving baseline).
BATCHING_POLICIES = ("continuous", "static")


@dataclass(frozen=True)
class InferenceSpec:
    """One simulated serving run, as pure serializable data.

    Exactly one of ``size_billions`` / ``num_layers`` selects the model
    depth, mirroring ``RunSpec``.  ``gpus`` is the tensor-parallel
    degree of the single serving instance; with ``nodes > 1`` the TP
    all-reduces cross the NIC exactly like training collectives.
    ``arrivals`` selects the traffic profile: ``"poisson"`` generates
    ``num_requests`` seeded arrivals at ``rate_per_second`` from
    ``request_mix``; ``"trace"`` replays ``trace_requests`` verbatim.
    """

    size_billions: Optional[float] = None
    num_layers: Optional[int] = None
    gpus: int = 4
    nodes: int = 1
    #: open-loop traffic
    arrivals: str = "poisson"
    rate_per_second: float = 4.0
    num_requests: int = 32
    arrival_seed: int = 7
    request_mix: str = "chat"
    trace_requests: Tuple[Dict[str, object], ...] = ()
    #: batching / admission
    batching: str = "continuous"
    max_batch_tokens: int = 8192
    max_batch_requests: int = 16
    #: fraction of post-weights free device memory given to the KV budget
    kv_fraction: float = 0.9
    #: latency SLOs the report scores attainment against
    slo_ttft_s: float = 1.0
    slo_tpot_s: float = 0.2
    precision_bytes: int = 2
    #: determinism / observability hooks (same semantics as RunSpec)
    tie_order: str = "fifo"
    tie_seed: int = 7
    trace: bool = False
    leak_check: bool = False

    def __post_init__(self) -> None:
        if (self.size_billions is None) == (self.num_layers is None):
            raise ConfigurationError(
                "InferenceSpec needs exactly one of size_billions / num_layers"
            )
        if self.size_billions is not None and self.size_billions <= 0:
            raise ConfigurationError("size_billions must be positive")
        if self.num_layers is not None and self.num_layers < 1:
            raise ConfigurationError("num_layers must be >= 1")
        if self.gpus < 1:
            raise ConfigurationError("gpus (tensor-parallel degree) must be >= 1")
        if self.nodes < 1:
            raise ConfigurationError("nodes must be >= 1")
        if self.arrivals not in ("poisson", "trace"):
            raise ConfigurationError(
                f"unknown arrival profile {self.arrivals!r} "
                f"(expected 'poisson' or 'trace')"
            )
        if self.arrivals == "poisson":
            if self.rate_per_second <= 0:
                raise ConfigurationError("rate_per_second must be positive")
            if self.num_requests < 1:
                raise ConfigurationError("num_requests must be >= 1")
            if self.request_mix not in REQUEST_MIXES:
                raise ConfigurationError(
                    f"unknown request mix {self.request_mix!r}; "
                    f"known: {sorted(REQUEST_MIXES)}"
                )
        elif not self.trace_requests:
            raise ConfigurationError(
                "trace arrivals need at least one trace_requests entry"
            )
        if self.batching not in BATCHING_POLICIES:
            raise ConfigurationError(
                f"unknown batching policy {self.batching!r} "
                f"(expected one of {BATCHING_POLICIES})"
            )
        if self.max_batch_tokens < 1:
            raise ConfigurationError("max_batch_tokens must be >= 1")
        if self.max_batch_requests < 1:
            raise ConfigurationError("max_batch_requests must be >= 1")
        if not 0 < self.kv_fraction <= 1:
            raise ConfigurationError("kv_fraction must be in (0, 1]")
        if self.slo_ttft_s <= 0 or self.slo_tpot_s <= 0:
            raise ConfigurationError("SLO targets must be positive")
        if self.precision_bytes not in (2, 4):
            raise ConfigurationError("precision must be fp16 (2) or fp32 (4)")
        if self.tie_order not in TIE_ORDERS:
            raise ConfigurationError(
                f"unknown tie order {self.tie_order!r} "
                f"(expected one of {TIE_ORDERS})"
            )
        if not isinstance(self.trace_requests, tuple):
            object.__setattr__(self, "trace_requests", tuple(
                dict(entry) for entry in self.trace_requests
            ))

    def expand_requests(self) -> List[Request]:
        """The spec's concrete request stream, deterministically.

        Also enforces the liveness invariant the scheduler relies on:
        every request must fit an *empty* batch (token budget), or it
        could never be admitted and the run would never terminate.
        """
        if self.arrivals == "poisson":
            stream = poisson_requests(
                self.rate_per_second, self.num_requests,
                seed=self.arrival_seed, mix=self.request_mix)
        else:
            stream = trace_requests(self.trace_requests)
        for request in stream:
            if request.total_tokens > self.max_batch_tokens:
                raise ConfigurationError(
                    f"request {request.name!r} needs {request.total_tokens} "
                    f"batch tokens but max_batch_tokens is "
                    f"{self.max_batch_tokens}; it could never be admitted"
                )
        return stream

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe dict holding every field."""
        payload: Dict[str, object] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if spec_field.name == "trace_requests":
                value = [dict(entry) for entry in value]
            payload[spec_field.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "InferenceSpec":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown InferenceSpec fields {unknown}; "
                f"known: {sorted(known)}"
            )
        data = dict(payload)
        entries = data.get("trace_requests")
        if entries is not None:
            data["trace_requests"] = tuple(dict(entry) for entry in entries)
        try:
            return cls(**data)  # type: ignore[arg-type]
        except TypeError as error:
            raise ConfigurationError(
                f"bad InferenceSpec payload: {error}"
            ) from None

    def cache_key(self, *, salt: Optional[str] = None) -> str:
        """Stable content hash (same contract as ``RunSpec.cache_key``)."""
        return stable_key({"kind": "inference", "spec": self.to_dict()},
                          salt=salt)

    def replace(self, **changes: object) -> "InferenceSpec":
        """A copy with ``changes`` applied, re-validated on construction."""
        known = {spec_field.name for spec_field in fields(self)}
        unknown = sorted(set(changes) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown {type(self).__name__} fields {unknown}; "
                f"known: {sorted(known)}"
            )
        return replace(self, **changes)  # type: ignore[arg-type]

    @property
    def label(self) -> str:
        """A short human-readable identity, used for job ids."""
        size = (f"{self.size_billions:g}b" if self.size_billions is not None
                else f"{self.num_layers}l")
        traffic = (f"p{self.rate_per_second:g}x{self.num_requests}"
                   if self.arrivals == "poisson"
                   else f"t{len(self.trace_requests)}")
        return (f"infer-{size}-tp{self.gpus}-n{self.nodes}"
                f"-{self.batching}-{traffic}")

    def run(self):
        """Simulate this spec (see :func:`repro.inference.run_inference`)."""
        from .service import run_inference

        return run_inference(self)
