"""Open-loop serving request streams: seeded Poisson and trace-driven.

Same regime as the cluster service's job arrivals
(:mod:`repro.cluster.arrivals`, whose seeded primitives this module
reuses): requests are generated up front from a seed or an explicit
trace and scheduled on the engine, independent of how the server is
coping.  A stream is a pure function of
``(seed, rate, num_requests, mix)``, so serving results are cacheable
and the tie-order differ sees identical traffic on every replay.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from ..cluster.arrivals import draw_weighted, poisson_times, validate_trace_times
from ..errors import ConfigurationError


@dataclass(frozen=True)
class Request:
    """One inference request hitting the server at one simulated time."""

    name: str
    time: float
    prompt_tokens: int
    output_tokens: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError("request time must be non-negative")
        if self.prompt_tokens < 1:
            raise ConfigurationError("prompt_tokens must be >= 1")
        if self.output_tokens < 1:
            raise ConfigurationError("output_tokens must be >= 1")

    @property
    def total_tokens(self) -> int:
        """Context length at completion: prompt plus generated tokens."""
        return self.prompt_tokens + self.output_tokens


#: Named request mixes: (weight, {prompt_tokens, output_tokens}) pairs.
#: Shapes stay within the paper model's 1024 max position embeddings so
#: every mix serves on the unmodified GPT-2-like config.  The three
#: mixes stress different phases: ``chat`` balances prefill and decode,
#: ``summarize`` is prefill-heavy (long prompt, short answer), and
#: ``generate`` is decode-heavy (short prompt, long completion).
REQUEST_MIXES: Dict[str, Tuple[Tuple[float, Dict[str, int]], ...]] = {
    "chat": (
        (0.6, {"prompt_tokens": 128, "output_tokens": 128}),
        (0.3, {"prompt_tokens": 384, "output_tokens": 192}),
        (0.1, {"prompt_tokens": 640, "output_tokens": 64}),
    ),
    "summarize": (
        (0.7, {"prompt_tokens": 768, "output_tokens": 64}),
        (0.3, {"prompt_tokens": 896, "output_tokens": 96}),
    ),
    "generate": (
        (0.7, {"prompt_tokens": 64, "output_tokens": 512}),
        (0.3, {"prompt_tokens": 128, "output_tokens": 768}),
    ),
}


def poisson_requests(rate_per_second: float, num_requests: int, *,
                     seed: int = 7,
                     mix: str = "chat") -> List[Request]:
    """``num_requests`` Poisson request arrivals at ``rate_per_second``.

    Arrival times come from :func:`repro.cluster.arrivals.poisson_times`
    and token shapes from the weighted ``mix``, all off one seeded
    :class:`random.Random` — never the process-global RNG.
    """
    templates = REQUEST_MIXES.get(mix)
    if templates is None:
        raise ConfigurationError(
            f"unknown request mix {mix!r}; known: {sorted(REQUEST_MIXES)}"
        )
    rng = random.Random(seed)
    times = poisson_times(rate_per_second, num_requests, rng)
    return [
        Request(name=f"{mix}-{index}", time=time,
                **draw_weighted(templates, rng))
        for index, time in enumerate(times)
    ]


def trace_requests(entries: Sequence[Mapping[str, object]]) -> List[Request]:
    """Requests from explicit trace entries.

    Each entry is ``{"time": seconds, "prompt_tokens": n,
    "output_tokens": n, "name"?: str}`` — the JSON shape
    ``repro serve --requests FILE.json`` reads.  Times must be
    non-negative and non-decreasing.
    """
    requests: List[Request] = []
    last = 0.0
    for index, entry in enumerate(entries):
        payload = dict(entry)
        try:
            time_s = float(payload.pop("time"))  # type: ignore[arg-type]
        except KeyError:
            raise ConfigurationError(
                f"request trace entry {index} has no arrival time"
            ) from None
        last = validate_trace_times(index, time_s, last)
        name = str(payload.pop("name", f"trace-{index}"))
        unknown = sorted(set(payload) - {"prompt_tokens", "output_tokens"})
        if unknown:
            raise ConfigurationError(
                f"request trace entry {index} has unknown fields {unknown}"
            )
        try:
            prompt = int(payload["prompt_tokens"])  # type: ignore[arg-type]
            output = int(payload["output_tokens"])  # type: ignore[arg-type]
        except KeyError as error:
            raise ConfigurationError(
                f"request trace entry {index} is missing {error.args[0]!r}"
            ) from None
        requests.append(Request(name=name, time=time_s,
                                prompt_tokens=prompt, output_tokens=output))
    if not requests:
        raise ConfigurationError("request trace is empty")
    return requests
