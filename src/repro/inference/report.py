"""The serving result payload: latency percentiles, goodput, SLOs.

:class:`InferenceReport` is to a serving run what
:class:`~repro.cluster.report.ClusterReport` is to a cluster run: a
JSON-safe, schema-versioned summary (the shared results
``SCHEMA_VERSION``) the CLI prints, campaigns cache, and the
determinism tests field-diff via :meth:`InferenceReport.headline`.
Percentiles use the cluster report's deterministic nearest-rank
:func:`~repro.cluster.report.percentile`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..cluster.report import percentile
from ..core.results import SCHEMA_VERSION, headline_from_payload
from ..sim.leaksan import LeakReport
from .batching import RequestRecord, ServingStats


@dataclass
class InferenceReport:
    """Everything one serving run measured."""

    spec_label: str
    batching: str
    nodes: int
    num_gpus: int
    total_time_s: float
    requests_submitted: int
    requests_completed: int
    ttft_p50_s: float
    ttft_p99_s: float
    tpot_p50_s: float
    tpot_p99_s: float
    queue_wait_p50_s: float
    queue_wait_p99_s: float
    goodput_requests_per_s: float
    goodput_tokens_per_s: float
    #: fraction of completed requests meeting both TTFT and TPOT SLOs
    slo_attainment: float
    prefill_steps: int
    decode_steps: int
    max_active_requests: int
    max_batch_tokens: int
    kv_budget_bytes: float
    kv_peak_bytes: float
    events_processed: int
    events_folded: int
    tokens_generated: int = 0
    leaks: Optional[LeakReport] = None
    extras: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "schema_version": SCHEMA_VERSION,
            "kind": "inference",
            "spec_label": self.spec_label,
            "batching": self.batching,
            "nodes": self.nodes,
            "num_gpus": self.num_gpus,
            "total_time_s": round(self.total_time_s, 9),
            "requests_submitted": self.requests_submitted,
            "requests_completed": self.requests_completed,
            "ttft_p50_s": round(self.ttft_p50_s, 9),
            "ttft_p99_s": round(self.ttft_p99_s, 9),
            "tpot_p50_s": round(self.tpot_p50_s, 9),
            "tpot_p99_s": round(self.tpot_p99_s, 9),
            "queue_wait_p50_s": round(self.queue_wait_p50_s, 9),
            "queue_wait_p99_s": round(self.queue_wait_p99_s, 9),
            "goodput_requests_per_s": round(self.goodput_requests_per_s, 9),
            "goodput_tokens_per_s": round(self.goodput_tokens_per_s, 9),
            "slo_attainment": round(self.slo_attainment, 9),
            "prefill_steps": self.prefill_steps,
            "decode_steps": self.decode_steps,
            "max_active_requests": self.max_active_requests,
            "max_batch_tokens": self.max_batch_tokens,
            "kv_budget_bytes": round(self.kv_budget_bytes, 3),
            "kv_peak_bytes": round(self.kv_peak_bytes, 3),
            "tokens_generated": self.tokens_generated,
            "events_processed": self.events_processed,
            "events_folded": self.events_folded,
            "leaks": self.leaks.to_dict() if self.leaks is not None else None,
        }
        payload.update(self.extras)
        return payload

    def headline(self) -> Dict[str, float]:
        """Flat *numeric* fields for the perturbation differ.

        Strings are spec identity, not measurement; ``leaks`` is
        provenance — same shape as the cluster report's headline.
        """
        payload = self.to_dict()
        payload.pop("leaks", None)
        return {
            key: float(value)
            for key, value in headline_from_payload(payload).items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }


def build_report(spec_label: str, batching: str, *,
                 nodes: int, num_gpus: int, total_time: float,
                 records: Sequence[RequestRecord], stats: ServingStats,
                 slo_ttft_s: float, slo_tpot_s: float,
                 kv_budget_bytes: float, kv_peak_bytes: float,
                 events_processed: int, events_folded: int,
                 leaks: Optional[LeakReport] = None) -> InferenceReport:
    """Assemble the report from the finished request records."""
    done = [record for record in records if record.done]
    ttfts: List[float] = [record.ttft_s for record in done
                          if record.ttft_s is not None]
    tpots: List[float] = [record.tpot_s for record in done
                          if record.tpot_s is not None]
    waits = [record.queue_wait_s for record in done]
    within_slo = sum(
        1 for record in done
        if record.ttft_s is not None and record.ttft_s <= slo_ttft_s
        and record.tpot_s is not None and record.tpot_s <= slo_tpot_s
    )
    tokens = sum(record.request.output_tokens for record in done)
    return InferenceReport(
        spec_label=spec_label,
        batching=batching,
        nodes=nodes,
        num_gpus=num_gpus,
        total_time_s=total_time,
        requests_submitted=len(records),
        requests_completed=len(done),
        ttft_p50_s=percentile(ttfts, 0.50),
        ttft_p99_s=percentile(ttfts, 0.99),
        tpot_p50_s=percentile(tpots, 0.50),
        tpot_p99_s=percentile(tpots, 0.99),
        queue_wait_p50_s=percentile(waits, 0.50),
        queue_wait_p99_s=percentile(waits, 0.99),
        goodput_requests_per_s=(
            len(done) / total_time if total_time else 0.0
        ),
        goodput_tokens_per_s=(tokens / total_time if total_time else 0.0),
        slo_attainment=(within_slo / len(done) if done else 0.0),
        prefill_steps=stats.prefill_steps,
        decode_steps=stats.decode_steps,
        max_active_requests=stats.max_active_requests,
        max_batch_tokens=stats.max_batch_tokens,
        kv_budget_bytes=kv_budget_bytes,
        kv_peak_bytes=kv_peak_bytes,
        tokens_generated=tokens,
        events_processed=events_processed,
        events_folded=events_folded,
        leaks=leaks,
    )
