"""KV-cache accounting: owner-tagged reservations in the memory pools.

The cache is a fixed byte *budget* carved out of each tensor-parallel
rank's device :class:`~repro.hardware.devices.MemoryPool` and handed
out to requests as owner-tagged labels (``{tag}kv/{request}``), so

* every resident request is visible in ``usage_by_label()`` exactly
  like a training run's parameter/gradient labels,
* the runtime leak sanitizer's pool audit (``RES007``) catches any
  request whose reservation outlives the run, and
* on the shared cluster fabric, the pools' byte conservation holds
  across concurrent train + inference jobs.

**Budget + slack.**  The unreserved remainder of the budget is held in
the pools under a ``{tag}kv/slack`` label, so the pool's *footprint* is
the full budget for the whole run: a co-scheduled job can never grab
bytes the server will need mid-decode (admission over-commit), and
reserve/release resize the slack label rather than changing the pool
total.  ``close()`` returns the slack and fails loudly if any request
label is still live.

**Reservation policy.**  A request reserves KV for its *full* context
(prompt + maximum output) at admission — the conservative vLLM-style
"reserve max" policy.  No reservation ever needs to grow mid-flight,
so a decode step can never hit OOM; the cost is admission pessimism,
which the report surfaces as ``kv_peak_bytes`` vs the budget.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..errors import ConfigurationError
from ..hardware.devices import MemoryPool

SLACK = "kv/slack"


class KvCache:
    """Per-request KV reservations over one serving instance's pools."""

    def __init__(self, pools: Sequence[MemoryPool], *,
                 budget_per_rank: float, bytes_per_token_per_rank: float,
                 tag: str = "") -> None:
        if not pools:
            raise ConfigurationError("KvCache needs at least one pool")
        if budget_per_rank <= 0:
            raise ConfigurationError("KV budget must be positive")
        if bytes_per_token_per_rank <= 0:
            raise ConfigurationError("KV bytes per token must be positive")
        self.pools = list(pools)
        self.budget_per_rank = float(budget_per_rank)
        self.bytes_per_token_per_rank = float(bytes_per_token_per_rank)
        self.tag = tag
        self._tokens: Dict[str, int] = {}
        self._reserved_per_rank = 0.0
        self.peak_reserved_per_rank = 0.0
        for pool in self.pools:
            pool.allocate(self._label(SLACK), self.budget_per_rank)

    def _label(self, name: str) -> str:
        return f"{self.tag}{name}"

    # -- accounting ------------------------------------------------------------
    @property
    def reserved_per_rank(self) -> float:
        return self._reserved_per_rank

    @property
    def resident_requests(self) -> List[str]:
        return sorted(self._tokens)

    def tokens_reserved(self, owner: str) -> int:
        return self._tokens.get(owner, 0)

    def bytes_for_tokens(self, tokens: int) -> float:
        """Per-rank reservation a ``tokens``-long context costs."""
        return tokens * self.bytes_per_token_per_rank

    def fits(self, tokens: int) -> bool:
        """Admission pre-check: would a ``tokens`` reservation fit?"""
        needed = self.bytes_for_tokens(tokens)
        return self._reserved_per_rank + needed <= self.budget_per_rank + 1e-6

    # -- reservations ----------------------------------------------------------
    def reserve(self, owner: str, tokens: int) -> None:
        """Reserve ``tokens`` of KV for ``owner`` on every rank."""
        if owner in self._tokens:
            raise ConfigurationError(
                f"request {owner!r} already holds a KV reservation"
            )
        if not self.fits(tokens):
            raise ConfigurationError(
                f"KV admission violated: {owner!r} needs "
                f"{self.bytes_for_tokens(tokens):.0f} B/rank but only "
                f"{self.budget_per_rank - self._reserved_per_rank:.0f} B "
                f"of the budget is free (call fits() before reserve())"
            )
        needed = self.bytes_for_tokens(tokens)
        for pool in self.pools:
            # Shrink slack first so the pool never exceeds its budget
            # footprint, then tag the bytes with their owner.
            pool.free(self._label(SLACK))
            pool.allocate(
                self._label(SLACK),
                max(0.0, self.budget_per_rank
                    - self._reserved_per_rank - needed))
            pool.allocate(self._label(f"kv/{owner}"), needed)
        self._tokens[owner] = tokens
        self._reserved_per_rank += needed
        self.peak_reserved_per_rank = max(self.peak_reserved_per_rank,
                                          self._reserved_per_rank)

    def release(self, owner: str) -> None:
        """Return ``owner``'s reservation to the slack on every rank."""
        tokens = self._tokens.pop(owner, None)
        if tokens is None:
            raise ConfigurationError(
                f"request {owner!r} holds no KV reservation"
            )
        freed = self.bytes_for_tokens(tokens)
        self._reserved_per_rank -= freed
        for pool in self.pools:
            pool.free(self._label(f"kv/{owner}"))
            pool.free(self._label(SLACK))
            pool.allocate(
                self._label(SLACK),
                max(0.0, self.budget_per_rank - self._reserved_per_rank))

    def close(self) -> None:
        """Tear down the budget; every request must have released."""
        if self._tokens:
            raise ConfigurationError(
                f"KV cache closed with live reservations: "
                f"{sorted(self._tokens)}"
            )
        for pool in self.pools:
            pool.free(self._label(SLACK))
