"""Token-level batch scheduling: the serving analog of the Executor.

:class:`ServingScheduler` runs as a DES generator process on a shared
(or private) :class:`~repro.sim.engine.Engine`, exactly like
:meth:`repro.runtime.executor.Executor.execute` does for training: it
yields timeouts for compute phases and collective completion events for
the tensor-parallel all-reduces, so serving traffic contends for the
same NVLink/NIC fabric as any co-scheduled training job.

The loop alternates three actions:

1. **Admission** — pull FIFO from the waiting queue while the policy
   allows: ``continuous`` admits at every step boundary, ``static``
   only into an empty batch.  A request is admitted only if the batch
   stays within ``max_batch_requests`` / ``max_batch_tokens`` *and* the
   KV cache pre-check (:meth:`~repro.inference.kvcache.KvCache.fits`)
   passes — the reservation is taken at admission, so decode can never
   OOM mid-flight.
2. **Prefill** — newly admitted prompts run one forward pass each
   (compute, then the per-pass TP all-reduces).  The request's first
   token lands at the end of prefill: that timestamp is its TTFT.
3. **Decode** — one batched step generates one token for every running
   request (roofline compute, then one fused pass of TP all-reduces
   over the batch's activations).  Finished requests release their KV
   reservation immediately, freeing admission room for the next step.

Determinism: the waiting queue is FIFO over the submit order (arrival
times are pre-generated and scheduled by the service), iteration is
over lists, and the scheduler owns no RNG at all — metrics are
tie-order invariant by construction, which the differ-based tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..collectives.nccl import NcclCommunicator
from ..collectives.primitives import CollectiveKind, CollectiveOp
from ..errors import SimulationError
from ..sim.engine import Engine
from ..trace.model import KernelKind, Lane, Span
from .costmodel import PhaseCostModel
from .kvcache import KvCache
from .requests import Request


@dataclass
class RequestRecord:
    """One request's lifecycle through the server."""

    request: Request
    admitted_at: Optional[float] = None
    first_token_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: tokens produced by decode steps (prefill produces the first
    #: output token, so the decode target is ``output_tokens - 1``)
    decoded_tokens: int = 0

    @property
    def name(self) -> str:
        return self.request.name

    @property
    def done(self) -> bool:
        return self.finished_at is not None

    @property
    def queue_wait_s(self) -> float:
        if self.admitted_at is None:
            return 0.0
        return self.admitted_at - self.request.time

    @property
    def ttft_s(self) -> Optional[float]:
        """Time to first token: arrival to end of prefill."""
        if self.first_token_at is None:
            return None
        return self.first_token_at - self.request.time

    @property
    def tpot_s(self) -> Optional[float]:
        """Time per output token over the decode phase."""
        if self.finished_at is None or self.first_token_at is None:
            return None
        produced = self.request.output_tokens - 1
        if produced <= 0:
            return 0.0
        return (self.finished_at - self.first_token_at) / produced

    @property
    def context_tokens(self) -> int:
        """KV-resident context for the next decode step."""
        return self.request.prompt_tokens + self.decoded_tokens


@dataclass
class ServingStats:
    """What one :meth:`ServingScheduler.serve` pass measured."""

    completed: int = 0
    prefill_steps: int = 0
    decode_steps: int = 0
    decode_tokens: int = 0
    max_active_requests: int = 0
    max_batch_tokens: int = 0
    spans: List[Span] = field(default_factory=list)


class ServingScheduler:
    """Continuous/static batching over one tensor-parallel instance."""

    def __init__(self, engine: Engine, cost: PhaseCostModel,
                 kvcache: KvCache, *,
                 comm: Optional[NcclCommunicator],
                 batching: str,
                 max_batch_tokens: int,
                 max_batch_requests: int,
                 span_ranks: Sequence[int] = (),
                 collective_sink=None,
                 tag: str = "") -> None:
        self.engine = engine
        self.cost = cost
        self.kvcache = kvcache
        self.comm = comm
        self.batching = batching
        self.max_batch_tokens = max_batch_tokens
        self.max_batch_requests = max_batch_requests
        #: global ranks compute spans are attributed to (trace only)
        self.span_ranks = tuple(span_ranks)
        #: recorder-compatible ``collective_phase`` sink (trace only)
        self.collective_sink = collective_sink
        self.tag = tag
        self.stats = ServingStats()
        self._waiting: List[RequestRecord] = []
        self._active: List[RequestRecord] = []
        self._prefill: List[RequestRecord] = []
        self._wakeup = engine.event()
        self._expected = 0

    # -- arrival callback ------------------------------------------------------
    def submit(self, record: RequestRecord) -> None:
        """Engine callback: one request hits the server now."""
        self._waiting.append(record)
        if not self._wakeup.triggered:
            self._wakeup.succeed()

    def expect(self, count: int) -> None:
        """Tell the loop how many submissions to wait for in total."""
        self._expected = count

    # -- admission -------------------------------------------------------------
    def _batch_tokens(self) -> int:
        return sum(record.request.total_tokens for record in self._active)

    def _admit(self) -> None:
        if self.batching == "static" and self._active:
            return
        while self._waiting:
            record = self._waiting[0]
            tokens = record.request.total_tokens
            if len(self._active) >= self.max_batch_requests:
                return
            if self._batch_tokens() + tokens > self.max_batch_tokens:
                return
            if not self.kvcache.fits(tokens):
                return
            self._waiting.pop(0)
            self.kvcache.reserve(record.name, tokens)
            record.admitted_at = self.engine.now
            self._active.append(record)
            self._prefill.append(record)
            self.stats.max_active_requests = max(
                self.stats.max_active_requests, len(self._active))
            self.stats.max_batch_tokens = max(
                self.stats.max_batch_tokens, self._batch_tokens())

    # -- phases ----------------------------------------------------------------
    def _emit_compute_span(self, name: str, start: float, end: float) -> None:
        if not self.span_ranks or end <= start:
            return
        self.stats.spans.extend(
            Span(rank, Lane.COMPUTE, KernelKind.GEMM,
                 f"{self.tag}{name}", start, end)
            for rank in self.span_ranks
        )

    def _all_reduce(self, payload: float, launch_count: int, name: str):
        """Yield the TP all-reduce for one (possibly fused) pass."""
        comm = self.comm
        if comm is None or comm.size == 1 or payload <= 0:
            return
        start = self.engine.now
        yield comm.run(
            CollectiveOp(CollectiveKind.ALL_REDUCE, payload, comm.size),
            launch_count=launch_count,
        )
        if self.collective_sink is not None:
            # Comm name and ranks are job-local; a cluster-mode sink
            # (``_JobCollectives``) prefixes the job id and maps ranks
            # to the shared machine before recording.
            self.collective_sink.collective_phase(
                "tp", 0, "all_reduce", payload, launch_count,
                tuple(range(comm.size)), start, self.engine.now,
            )

    def _finish(self, record: RequestRecord) -> None:
        record.finished_at = self.engine.now
        self.kvcache.release(record.name)
        self._active.remove(record)
        self.stats.completed += 1

    def _prefill_phase(self):
        batch, self._prefill = self._prefill, []
        compute_s = sum(self.cost.prefill_time(record.request.prompt_tokens)
                        for record in batch)
        start = self.engine.now
        yield self.engine.timeout(compute_s)
        self._emit_compute_span(
            f"prefill[{len(batch)}]", start, self.engine.now)
        payload = self.cost.activation_payload(
            sum(record.request.prompt_tokens for record in batch))
        yield from self._all_reduce(
            payload, self.cost.all_reduces_per_pass * len(batch),
            "prefill")
        self.stats.prefill_steps += 1
        for record in batch:
            record.first_token_at = self.engine.now
            if record.request.output_tokens == 1:
                self._finish(record)

    def _decode_phase(self):
        batch = list(self._active)
        compute_s = self.cost.decode_step_time(
            [record.context_tokens for record in batch])
        start = self.engine.now
        yield self.engine.timeout(compute_s)
        self._emit_compute_span(
            f"decode[{len(batch)}]", start, self.engine.now)
        payload = self.cost.activation_payload(len(batch))
        yield from self._all_reduce(
            payload, self.cost.all_reduces_per_pass, "decode")
        self.stats.decode_steps += 1
        self.stats.decode_tokens += len(batch)
        for record in batch:
            record.decoded_tokens += 1
            if record.decoded_tokens >= record.request.output_tokens - 1:
                self._finish(record)

    # -- the serving loop ------------------------------------------------------
    def serve(self, records: Sequence[RequestRecord], *,
              should_stop: Optional[Callable[[], bool]] = None,
              stop_event=None):
        """Generator process: serve every record, or stop early.

        ``records`` is the full submission set for this pass; arrivals
        are delivered via :meth:`submit` callbacks the caller schedules.
        ``should_stop``/``stop_event`` support cooperative preemption on
        the shared cluster (checked at step boundaries; the event lets
        an *idle* server wake up for its own preemption).  On early
        stop, every live KV reservation is released before returning.
        """
        engine = self.engine
        self.expect(len(records))
        pending = [record for record in records if not record.done]

        def stopped() -> bool:
            return should_stop is not None and should_stop()

        while not stopped():
            if all(record.done for record in pending):
                break
            self._admit()
            if self._prefill:
                yield from self._prefill_phase()
            elif self._active:
                yield from self._decode_phase()
            else:
                if self._waiting:
                    # Admission is blocked (should be impossible with an
                    # empty batch given the service's admission-liveness
                    # validation; kept as a loud backstop, not a hang).
                    raise SimulationError(
                        f"serving deadlock: {len(self._waiting)} waiting "
                        f"requests but none admissible into an empty batch"
                    )
                # Idle: every arrived request is done; wait for the next
                # arrival (or preemption, on the shared cluster).
                self._wakeup = engine.event()
                waits = [self._wakeup]
                if stop_event is not None:
                    waits.append(stop_event)
                yield engine.any_of(waits)
        if stopped():
            for record in list(self._active):
                self.kvcache.release(record.name)
            self._active.clear()
            self._prefill.clear()
            self._waiting.clear()
        return self.stats
