"""Prefill/decode phase cost models on the training repo's hardware.

Inference reuses the exact accounting the training side already has —
:mod:`repro.model.flops`'s 2mkn GEMM convention, the
:class:`~repro.runtime.kernels.GpuComputeModel` roofline, and the
collectives layer for tensor-parallel all-reduces — it just evaluates
them at serving shapes:

*Prefill* processes the whole prompt in one pass, so it looks like a
training forward at batch 1 / sequence ``prompt_tokens`` with a
one-token LM head (only the last position's logits are sampled).
Compute-bound: big GEMMs at good efficiency.

*Decode* generates one token per step against the KV cache, so its
GEMMs are matrix-vector products and the step is memory-bound — every
step must stream the (tensor-parallel shard of the) weights plus the
active requests' K/V blocks through HBM.  The step time is the roofline
max of the GEMM time and that stream time, which is why continuous
batching pays: more requests per step amortizes the same weight read.

Tensor parallelism divides both FLOPs and resident bytes by the TP
degree and adds two all-reduces per layer (attention output + MLP
output) of the layer activation — the payload/launch-count shapes the
batching scheduler hands to :class:`~repro.collectives.nccl.
NcclCommunicator`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..hardware.gpu import GpuSpec
from ..model.config import ModelConfig
from ..runtime.kernels import GpuComputeModel
from ..units import Bytes, Flops, Seconds

#: Serving GEMM efficiency (fraction of peak FP16).  Prefill GEMMs are
#: large and dense like training forwards, but serving runs without the
#: backward pass's long accumulation chains, so we sit between the DDP
#: training calibration (0.42) and the theoretical ceiling.
SERVING_GEMM_EFFICIENCY = 0.50

#: All-reduces per transformer layer under tensor parallelism
#: (Megatron-style: one after attention output, one after the MLP).
TP_ALL_REDUCES_PER_LAYER = 2


def prefill_flops(config: ModelConfig, prompt_tokens: int) -> Flops:
    """Forward FLOPs to prefill one prompt of ``prompt_tokens``.

    Same per-component accounting as :func:`repro.model.flops.
    forward_flops` at batch 1 and sequence length ``prompt_tokens``,
    except the LM head projects only the final position (serving samples
    one next token; it never needs logits for the whole prompt).
    """
    if prompt_tokens < 1:
        raise ConfigurationError("prompt_tokens must be >= 1")
    t = prompt_tokens
    h = config.hidden_size
    ffn = config.ffn_hidden
    L = config.num_layers
    attention_gemm = L * (2 * t * h * (3 * h) + 2 * t * h * h)
    attention_scores = L * 2 * (2 * config.num_heads * t * t * config.head_dim)
    mlp = L * (2 * t * h * ffn + 2 * t * ffn * h)
    lm_head = 2 * h * config.vocab_size
    return attention_gemm + attention_scores + mlp + lm_head


def decode_flops(config: ModelConfig, context_tokens: int) -> Flops:
    """Forward FLOPs to decode one token against ``context_tokens`` of KV.

    The new token's Q/K/V and MLP GEMMs are matrix-vector products
    (sequence length 1); attention scores read the whole cached context.
    """
    if context_tokens < 1:
        raise ConfigurationError("context_tokens must be >= 1")
    h = config.hidden_size
    ffn = config.ffn_hidden
    L = config.num_layers
    attention_gemm = L * (2 * h * (3 * h) + 2 * h * h)
    attention_scores = L * 2 * (
        2 * config.num_heads * context_tokens * config.head_dim
    )
    mlp = L * (2 * h * ffn + 2 * ffn * h)
    lm_head = 2 * h * config.vocab_size
    return attention_gemm + attention_scores + mlp + lm_head


def kv_bytes_per_token(config: ModelConfig, precision_bytes: int) -> Bytes:
    """K and V cache bytes one token occupies across all layers."""
    return 2 * config.num_layers * config.hidden_size * precision_bytes


def weight_bytes(config: ModelConfig, precision_bytes: int) -> Bytes:
    """Resident parameter bytes for serving (no optimizer state).

    Per layer: 4h² attention (QKV + output projection) + 2·h·ffn MLP;
    plus the (tied) token embedding.
    """
    h = config.hidden_size
    per_layer = 4 * h * h + 2 * h * config.ffn_hidden
    embeddings = config.vocab_size * h
    if not config.tied_embeddings:
        embeddings *= 2
    return (config.num_layers * per_layer + embeddings) * precision_bytes


@dataclass(frozen=True)
class PhaseCostModel:
    """Per-phase timing for one tensor-parallel serving instance."""

    config: ModelConfig
    gpu: GpuSpec
    tensor_parallel: int
    precision_bytes: int = 2
    gemm_efficiency: float = SERVING_GEMM_EFFICIENCY

    def __post_init__(self) -> None:
        if self.tensor_parallel < 1:
            raise ConfigurationError("tensor_parallel must be >= 1")

    @property
    def compute(self) -> GpuComputeModel:
        return GpuComputeModel(self.gpu, self.gemm_efficiency)

    @property
    def kv_token_bytes(self) -> Bytes:
        return kv_bytes_per_token(self.config, self.precision_bytes)

    @property
    def kv_token_bytes_per_rank(self) -> Bytes:
        """KV bytes per token on each TP rank (heads are sharded)."""
        return self.kv_token_bytes / self.tensor_parallel

    @property
    def weight_bytes_per_rank(self) -> Bytes:
        return weight_bytes(self.config, self.precision_bytes) / self.tensor_parallel

    def prefill_time(self, prompt_tokens: int) -> Seconds:
        """Compute seconds to prefill one prompt (TP-sharded, no comm)."""
        flops = prefill_flops(self.config, prompt_tokens)
        return self.compute.gemm_time(flops / self.tensor_parallel)

    def decode_step_time(self, context_tokens_per_request: "list[int]") -> Seconds:
        """Compute seconds for one batched decode step (no comm).

        Roofline: the GEMM time for every request's token, against the
        HBM time to stream the weight shard once plus each request's KV
        shard — the batched-decode memory wall.
        """
        if not context_tokens_per_request:
            return 0.0
        flops = sum(decode_flops(self.config, context)
                    for context in context_tokens_per_request)
        gemm = self.compute.gemm_time(flops / self.tensor_parallel)
        streamed = self.weight_bytes_per_rank + sum(
            context * self.kv_token_bytes_per_rank
            for context in context_tokens_per_request
        )
        return max(gemm, self.compute.memory_bound_time(streamed))

    def activation_payload(self, tokens: int) -> Bytes:
        """All-reduce payload for ``tokens`` positions of activations."""
        return tokens * self.config.hidden_size * self.precision_bytes

    @property
    def all_reduces_per_pass(self) -> int:
        """Real NCCL launches one forward pass issues under TP."""
        return TP_ALL_REDUCES_PER_LAYER * self.config.num_layers
