"""Inference serving on the training repo's fabric model.

The paper characterizes training bandwidth; this package serves the
same GPT-2-like models on the same simulated hardware — prefill/decode
cost models over the :class:`~repro.runtime.kernels.GpuComputeModel`
roofline, tensor-parallel all-reduces through the real collectives
layer, KV-cache accounting as owner-tagged
:class:`~repro.hardware.devices.MemoryPool` reservations, and a
continuous-batching scheduler driven by seeded open-loop request
arrivals.  The public entry points::

    from repro.inference import InferenceSpec, run_inference

    run = run_inference(InferenceSpec(size_billions=1.4, gpus=4))
    print(run.report.ttft_p99_s, run.report.goodput_requests_per_s)

:class:`InferenceSpec` satisfies the :class:`repro.api.workload.
Workload` protocol, so serving runs slot into campaigns, the result
cache, the cluster daemon, and ``repro run --workload inference`` /
``repro serve`` exactly like training runs.
"""

from .batching import RequestRecord, ServingScheduler, ServingStats
from .costmodel import (
    PhaseCostModel,
    decode_flops,
    kv_bytes_per_token,
    prefill_flops,
    weight_bytes,
)
from .kvcache import KvCache
from .report import InferenceReport, build_report
from .requests import REQUEST_MIXES, Request, poisson_requests, trace_requests
from .service import InferenceRun, run_inference
from .spec import BATCHING_POLICIES, InferenceSpec

__all__ = [
    "BATCHING_POLICIES",
    "InferenceReport",
    "InferenceRun",
    "InferenceSpec",
    "KvCache",
    "PhaseCostModel",
    "REQUEST_MIXES",
    "Request",
    "RequestRecord",
    "ServingScheduler",
    "ServingStats",
    "build_report",
    "decode_flops",
    "kv_bytes_per_token",
    "poisson_requests",
    "prefill_flops",
    "run_inference",
    "trace_requests",
    "weight_bytes",
]
