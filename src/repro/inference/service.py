"""Wire one serving instance together: :func:`run_inference`.

The serving analog of :func:`repro.cluster.service.run_cluster`: build
the machine (a parametric N-node :class:`~repro.hardware.cluster.
Cluster`), one :class:`~repro.sim.engine.Engine`, one
:class:`~repro.sim.flows.FlowNetwork`, carve the tensor-parallel rank
space out with :func:`~repro.cluster.views.probe_view`, allocate
weights and the KV budget in the device pools, schedule the open-loop
request stream, and run the :class:`~repro.inference.batching.
ServingScheduler` as the single process.  The TP all-reduces go through
a real :class:`~repro.collectives.nccl.NcclCommunicator` over the
view, so serving traffic pays NVLink/NIC costs with the same fidelity
as training collectives — over two nodes, prefill all-reduces cross
the switch exactly like a Megatron forward's.

Ledger ownership mirrors the cluster service: this function owns the
network's recorder/leak-sanitizer hooks and the pools' observers;
weights, the KV budget's slack, and every per-request KV reservation
are named pool labels, so ``leak_check=True`` audits the whole serving
run for byte conservation (zero leaked KV bytes on a clean exit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis.liveness import check_liveness
from ..collectives.nccl import NcclCommunicator
from ..core.search import model_for_billions
from ..errors import ConfigurationError
from ..hardware.cluster import Cluster, ClusterSpec
from ..model.config import ModelConfig, paper_model
from ..sim.engine import Engine, ReversedTies, SeededTies, TieOrder
from ..sim.flows import FlowNetwork
from ..sim.leaksan import LeakReport, LeakSanitizer
from ..trace.model import CounterTrack, LinkAccount, Trace
from ..trace.recorder import DEFAULT_COUNTER_SAMPLES, TraceRecorder
from ..cluster.views import probe_view
from .batching import RequestRecord, ServingScheduler, ServingStats
from .costmodel import PhaseCostModel
from .kvcache import KvCache
from .report import InferenceReport, build_report
from .spec import InferenceSpec

WEIGHTS = "weights"


@dataclass
class InferenceRun:
    """Everything one serving run produced."""

    report: InferenceReport
    trace: Optional[Trace] = None

    @property
    def leaks(self) -> Optional[LeakReport]:
        return self.report.leaks


def _build_tie_order(spec: InferenceSpec) -> Optional[TieOrder]:
    if spec.tie_order == "reversed":
        return ReversedTies()
    if spec.tie_order == "seeded":
        return SeededTies(spec.tie_seed)
    return None  # fifo: the engine default


def _model_for(spec: InferenceSpec) -> ModelConfig:
    if spec.num_layers is not None:
        return paper_model(spec.num_layers)
    assert spec.size_billions is not None
    return model_for_billions(spec.size_billions)


def build_serving_trace(cluster: Cluster, stats: ServingStats,
                        recorder: TraceRecorder, total_time: float, *,
                        meta: Optional[dict] = None,
                        counter_samples: int = DEFAULT_COUNTER_SAMPLES
                        ) -> Trace:
    """Assemble the serving :class:`Trace` (cluster-trace shape)."""
    trace = Trace(meta=dict(meta or {}))
    trace.meta.setdefault("total_time", total_time)
    trace.spans.extend(stats.spans)
    recorder.drain_open_flows(total_time)
    trace.flows = list(recorder.flows)
    trace.collectives = list(recorder.collectives)
    for link in cluster.topology.links:
        ledger = link.ledger
        if len(ledger) == 0:
            continue
        trace.links.append(LinkAccount(
            name=link.name,
            link_class=str(link.link_class),
            total_bytes=ledger.total_bytes,
            record_count=len(ledger),
            degraded=tuple(ledger.degraded_intervals()),
        ))
        if total_time > 0 and counter_samples > 0:
            trace.counters.append(CounterTrack(
                name=f"link:{link.name}",
                unit="bytes/s",
                start=0.0,
                period=total_time / counter_samples,
                values=tuple(
                    ledger.sample(0.0, total_time, counter_samples)
                ),
            ))
    return trace


def run_inference(spec: InferenceSpec) -> InferenceRun:
    """Simulate one :class:`InferenceSpec` end to end."""
    requests = spec.expand_requests()
    config = _model_for(spec)
    if config.num_heads % spec.gpus:
        raise ConfigurationError(
            f"tensor parallelism needs gpus to divide num_heads: "
            f"{spec.gpus} does not divide {config.num_heads}"
        )
    for request in requests:
        if request.total_tokens > config.max_position_embeddings:
            raise ConfigurationError(
                f"request {request.name!r} needs {request.total_tokens} "
                f"context tokens; the model serves at most "
                f"{config.max_position_embeddings}"
            )

    cluster = Cluster(ClusterSpec(num_nodes=spec.nodes))
    view = probe_view(cluster, spec.gpus)
    engine = Engine(tie_order=_build_tie_order(spec))
    network = FlowNetwork(engine)
    recorder = TraceRecorder() if spec.trace else None
    network.recorder = recorder
    leaksan: Optional[LeakSanitizer] = None
    if spec.leak_check:
        leaksan = LeakSanitizer()
        leaksan.attach(cluster)
        network.leaksan = leaksan

    cost = PhaseCostModel(
        config, cluster.nodes[0].spec.gpu,
        tensor_parallel=spec.gpus,
        precision_bytes=spec.precision_bytes,
    )
    pools = [view.gpu(rank).memory for rank in range(view.num_gpus)]
    for pool in pools:
        pool.allocate(WEIGHTS, cost.weight_bytes_per_rank)
    budget_per_rank = min(pool.free_bytes for pool in pools) * spec.kv_fraction
    if budget_per_rank <= 0:
        raise ConfigurationError(
            f"no memory left for KV cache: weights take "
            f"{cost.weight_bytes_per_rank:.0f} B of a "
            f"{pools[0].capacity_bytes:.0f} B pool per rank"
        )
    largest = max(request.total_tokens for request in requests)
    if largest * cost.kv_token_bytes_per_rank > budget_per_rank:
        raise ConfigurationError(
            f"KV budget ({budget_per_rank:.0f} B/rank) cannot hold even "
            f"one {largest}-token request "
            f"({largest * cost.kv_token_bytes_per_rank:.0f} B/rank); "
            f"it could never be admitted"
        )
    kvcache = KvCache(
        pools,
        budget_per_rank=budget_per_rank,
        bytes_per_token_per_rank=cost.kv_token_bytes_per_rank,
    )
    comm = (
        NcclCommunicator(view, engine, network,
                         list(range(view.num_gpus)))
        if view.num_gpus > 1 else None
    )
    scheduler = ServingScheduler(
        engine, cost, kvcache,
        comm=comm,
        batching=spec.batching,
        max_batch_tokens=spec.max_batch_tokens,
        max_batch_requests=spec.max_batch_requests,
        span_ranks=(
            tuple(view.global_rank(rank) for rank in range(view.num_gpus))
            if recorder is not None else ()),
        collective_sink=recorder,
    )
    records = [RequestRecord(request=request) for request in requests]
    for record in records:
        engine.schedule_at(record.request.time, scheduler.submit, record)
    engine.process(scheduler.serve(records), name="serving-loop")
    engine.run()
    check_liveness(engine)

    total_time = engine.now
    kv_peak = kvcache.peak_reserved_per_rank * view.num_gpus
    kv_budget = kvcache.budget_per_rank * view.num_gpus
    kvcache.close()
    for pool in pools:
        pool.free(WEIGHTS)
    leaks: Optional[LeakReport] = None
    if leaksan is not None:
        leaks = leaksan.finalize(cluster, network=network,
                                 recorder=recorder)
    report = build_report(
        spec.label, spec.batching,
        nodes=spec.nodes, num_gpus=view.num_gpus,
        total_time=total_time,
        records=records, stats=scheduler.stats,
        slo_ttft_s=spec.slo_ttft_s, slo_tpot_s=spec.slo_tpot_s,
        kv_budget_bytes=kv_budget, kv_peak_bytes=kv_peak,
        events_processed=engine.events_processed,
        events_folded=engine.events_folded,
        leaks=leaks,
    )
    trace = (
        build_serving_trace(cluster, scheduler.stats, recorder, total_time,
                            meta={
                                "spec": spec.label,
                                "batching": spec.batching,
                                "num_nodes": spec.nodes,
                                "num_gpus": view.num_gpus,
                            })
        if recorder is not None else None
    )
    return InferenceRun(report=report, trace=trace)
