"""ASCII table/plot rendering for experiment outputs.

Benches print their reproduction of each paper table/figure through these
helpers so the output is directly comparable with the published artifact.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..hardware.link import LinkClass
from ..units import GB
from .bandwidth import BandwidthStats


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 *, title: str = "") -> str:
    """A fixed-width ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0.00"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.2f}"
    return str(cell)


def bandwidth_row(stats: Dict[LinkClass, BandwidthStats]) -> List[float]:
    """Flatten a Table-IV row: avg/p90/peak for each class, in GB/s."""
    out: List[float] = []
    for cls in (LinkClass.DRAM, LinkClass.XGMI, LinkClass.PCIE_GPU,
                LinkClass.PCIE_NVME, LinkClass.PCIE_NIC, LinkClass.NVLINK,
                LinkClass.ROCE):
        s = stats.get(cls, BandwidthStats(0, 0, 0))
        out.extend([s.average_gbps, s.p90_gbps, s.peak_gbps])
    return out


BANDWIDTH_HEADERS: List[str] = [
    f"{cls} {stat}"
    for cls in ("DRAM", "xGMI", "PCIe-GPU", "PCIe-NVME", "PCIe-NIC",
                "NVLink", "RoCE")
    for stat in ("avg", "p90", "peak")
]


def sparkline(values: Sequence[float], *, width: int = 80,
              height_chars: str = " .:-=+*#%@") -> str:
    """A one-line utilization sparkline for time-series figures."""
    if len(values) == 0:
        return ""
    arr = np.asarray(values, dtype=float)
    if len(arr) > width:
        # Downsample by averaging whole bins.
        bins = np.array_split(arr, width)
        arr = np.asarray([b.mean() for b in bins])
    peak = arr.max()
    if peak <= 0:
        return " " * len(arr)
    levels = len(height_chars) - 1
    chars = [height_chars[int(round(v / peak * levels))] for v in arr]
    return "".join(chars)


def series_block(label: str, values: Sequence[float], *, width: int = 80) -> str:
    """A labelled sparkline with its peak annotated (Figs. 9/10/12 style)."""
    arr = np.asarray(values, dtype=float)
    peak = arr.max() if len(arr) else 0.0
    avg = arr.mean() if len(arr) else 0.0
    return (
        f"{label:>10} |{sparkline(values, width=width)}| "
        f"avg {avg / GB:6.2f} GB/s  peak {peak / GB:6.2f} GB/s"
    )
