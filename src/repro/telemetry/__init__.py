"""Measurement layer: bandwidth counters, timelines, memory, throughput."""

from .bandwidth import DEFAULT_SAMPLE_PERIOD, BandwidthMonitor, BandwidthStats
from .energy import EnergyReport, PowerModel, estimate_energy
from .flops_profiler import FlopsProfiler, ThroughputReport
from .memory import MemoryReport, snapshot
from .timeline import GLYPHS, Lane, Timeline, TraceRecord
from .report import (
    BANDWIDTH_HEADERS,
    bandwidth_row,
    format_table,
    series_block,
    sparkline,
)

__all__ = [
    "BANDWIDTH_HEADERS",
    "BandwidthMonitor",
    "BandwidthStats",
    "DEFAULT_SAMPLE_PERIOD",
    "EnergyReport",
    "PowerModel",
    "estimate_energy",
    "FlopsProfiler",
    "GLYPHS",
    "Lane",
    "MemoryReport",
    "ThroughputReport",
    "Timeline",
    "TraceRecord",
    "bandwidth_row",
    "format_table",
    "series_block",
    "snapshot",
    "sparkline",
]
