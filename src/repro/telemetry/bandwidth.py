"""Bandwidth telemetry: per-interconnect-class utilization statistics.

Reconstructs the paper's measurement methodology: hardware counters are
sampled on a fixed period per interconnect class (DRAM, xGMI, PCIe-GPU,
PCIe-NVME, PCIe-NIC, NVLink, RoCE), then summarized as average, 90th
percentile, and peak of the sampled aggregate bidirectional bandwidth
(Table IV), or plotted as a time series (Figs. 9, 10, 12).

Aggregation is per node: all links of one class in one node are summed per
sample, matching "aggregate bidirectional per-node bandwidth utilization".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..hardware.cluster import Cluster
from ..hardware.link import Link, LinkClass, merge_intervals
from ..units import GB

#: Default counter sampling period; AMD uProf / nvidia-smi class tooling
#: polls on the order of a few hundred milliseconds to a second, which is
#: why the paper's "peak" columns sit close to the averages — short
#: bursts smear across a sampling bin.
DEFAULT_SAMPLE_PERIOD = 0.25

#: nvidia-smi's NVLink counters are per GPU *port*: a byte crossing one
#: link is counted at both GPU endpoints, so the paper's per-node NVLink
#: aggregates are twice the wire bytes.  Every other class is counted at
#: a single endpoint (the NIC, the root port, the memory controller).
NVLINK_PORT_COUNT_FACTOR = 2.0


@dataclass(frozen=True)
class BandwidthStats:
    """Average / 90th percentile / peak, in bytes per second."""

    average: float
    p90: float
    peak: float

    @property
    def average_gbps(self) -> float:
        return self.average / GB

    @property
    def p90_gbps(self) -> float:
        return self.p90 / GB

    @property
    def peak_gbps(self) -> float:
        return self.peak / GB

    @staticmethod
    def from_samples(samples: Sequence[float]) -> "BandwidthStats":
        if len(samples) == 0:
            return BandwidthStats(0.0, 0.0, 0.0)
        arr = np.asarray(samples, dtype=float)
        return BandwidthStats(
            average=float(arr.mean()),
            p90=float(np.percentile(arr, 90)),
            peak=float(arr.max()),
        )


class BandwidthMonitor:
    """Samples link ledgers into per-class, per-node utilization series."""

    def __init__(self, cluster: Cluster,
                 sample_period: float = DEFAULT_SAMPLE_PERIOD) -> None:
        if sample_period <= 0:
            raise ConfigurationError("sample period must be positive")
        self.cluster = cluster
        self.sample_period = sample_period

    # -- link grouping -----------------------------------------------------------
    def links_for(self, link_class: LinkClass,
                  node_index: Optional[int] = None) -> List[Link]:
        """All links of a class, optionally restricted to one node.

        RoCE links attach NIC<->switch; they are attributed to the NIC's
        node.  Node attribution uses the link name prefix (``nodeN/``).
        """
        links = self.cluster.topology.links_of_class(link_class)
        if node_index is None:
            return links
        prefix = f"node{node_index}/"
        return [link for link in links if link.name.startswith(prefix)]

    # -- sampling -------------------------------------------------------------------
    def series(self, link_class: LinkClass, start: float, end: float, *,
               node_index: Optional[int] = 0) -> np.ndarray:
        """Aggregate bidirectional bytes/s sampled over [start, end).

        Defaults to node 0 (the paper reports per-node aggregates; both
        nodes are symmetric under SPMD training).
        """
        if end <= start:
            raise ConfigurationError("sampling window must have positive width")
        num = max(1, int(round((end - start) / self.sample_period)))
        total = np.zeros(num)
        for link in self.links_for(link_class, node_index):
            total += np.asarray(link.ledger.sample(start, end, num))
        if link_class is LinkClass.NVLINK:
            total *= NVLINK_PORT_COUNT_FACTOR
        return total

    def stats(self, link_class: LinkClass, start: float, end: float, *,
              node_index: Optional[int] = 0) -> BandwidthStats:
        return BandwidthStats.from_samples(
            self.series(link_class, start, end, node_index=node_index)
        )

    def degraded_windows(self, link_class: Optional[LinkClass] = None, *,
                         node_index: Optional[int] = None
                         ) -> List[tuple]:
        """Merged [start, end) intervals during which traffic of a class
        (or of every class) moved over degraded links.

        Pulled from the per-record ``degraded`` annotation the fault
        injector leaves in the ledgers — the telemetry view of how much
        of the run was spent on an unhealthy fabric.
        """
        if link_class is None:
            links = list(self.cluster.topology.links)
            if node_index is not None:
                prefix = f"node{node_index}/"
                links = [ln for ln in links if ln.name.startswith(prefix)]
        else:
            links = self.links_for(link_class, node_index)
        intervals = []
        for link in links:
            intervals.extend(link.ledger.degraded_intervals())
        return merge_intervals(intervals)

    def table(self, start: float, end: float, *,
              node_index: Optional[int] = 0,
              classes: Optional[Iterable[LinkClass]] = None
              ) -> Dict[LinkClass, BandwidthStats]:
        """One Table IV row: stats for every interconnect class."""
        if classes is None:
            classes = [
                LinkClass.DRAM, LinkClass.XGMI, LinkClass.PCIE_GPU,
                LinkClass.PCIE_NVME, LinkClass.PCIE_NIC, LinkClass.NVLINK,
                LinkClass.ROCE,
            ]
        return {
            cls: self.stats(cls, start, end, node_index=node_index)
            for cls in classes
        }
