"""Memory-usage telemetry (free / nvidia-smi / df analogs).

Summarizes the cluster's memory pools into the composition figures the
paper reports: total GPU / CPU / NVMe usage and per-label breakdowns
(Figs. 11-b and 13-c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..hardware.cluster import Cluster
from ..hardware.devices import DeviceKind


@dataclass(frozen=True)
class MemoryReport:
    """Cluster-wide memory usage snapshot, bytes."""

    gpu_used: float
    cpu_used: float
    nvme_used: float
    gpu_by_label: Dict[str, float]
    cpu_by_label: Dict[str, float]
    nvme_by_label: Dict[str, float]

    @property
    def total_used(self) -> float:
        return self.gpu_used + self.cpu_used + self.nvme_used

    def composition(self) -> Dict[str, float]:
        """Fractions by tier, as plotted in Fig. 11-b."""
        total = self.total_used
        if total <= 0:
            return {"gpu": 0.0, "cpu": 0.0, "nvme": 0.0}
        return {
            "gpu": self.gpu_used / total,
            "cpu": self.cpu_used / total,
            "nvme": self.nvme_used / total,
        }


def snapshot(cluster: Cluster) -> MemoryReport:
    """Read every memory pool in the cluster (the paper's measurement
    moment: steady state during training)."""
    tiers = {
        DeviceKind.GPU: ({}, 0.0),
        DeviceKind.DRAM: ({}, 0.0),
        DeviceKind.NVME: ({}, 0.0),
    }
    totals = {kind: 0.0 for kind in tiers}
    labels: Dict[DeviceKind, Dict[str, float]] = {kind: {} for kind in tiers}
    for device in cluster.topology.devices:
        if device.kind not in tiers or device.memory is None:
            continue
        totals[device.kind] += device.memory.used_bytes
        for label, used in device.memory.usage_by_label().items():
            labels[device.kind][label] = labels[device.kind].get(label, 0.0) + used
    return MemoryReport(
        gpu_used=totals[DeviceKind.GPU],
        cpu_used=totals[DeviceKind.DRAM],
        nvme_used=totals[DeviceKind.NVME],
        gpu_by_label=labels[DeviceKind.GPU],
        cpu_by_label=labels[DeviceKind.DRAM],
        nvme_by_label=labels[DeviceKind.NVME],
    )
