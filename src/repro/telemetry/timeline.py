"""Execution timelines — the nsys-style traces of paper Fig. 5.

The executor records every step it runs as a
:class:`~repro.trace.model.Span` with a rank, a lane (compute /
communication / host-IO, mirroring concurrent CUDA streams), a kernel
kind, and an interval.  :class:`Timeline` offers queries (busy time by
kind, idle fraction) and an ASCII rendering that reproduces Fig. 5's
at-a-glance comparison of strategies.

This module is a facade: the span model, the query functions, and the
rendering all live in :mod:`repro.trace` (the structured tracing
subsystem), so the ASCII figure and the exported Perfetto traces share
one source of truth.  ``TraceRecord`` is an alias of the trace span for
backward compatibility.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..runtime.kernels import KernelKind
from ..trace import query as _query
from ..trace.ascii import GLYPHS, legend_text, render_rank
from ..trace.model import Lane, Span

#: Backward-compatible alias: timeline records *are* trace spans.
TraceRecord = Span

__all__ = ["GLYPHS", "Lane", "Timeline", "TraceRecord"]


class Timeline:
    """An append-only store of trace records with summary queries."""

    def __init__(self) -> None:
        self._records: List[Span] = []

    def record(self, rank: int, lane: Lane, kind: KernelKind, name: str,
               start: float, end: float, synthetic: bool = False) -> None:
        if end < start:
            raise ConfigurationError("trace interval is reversed")
        self._records.append(Span(rank, lane, kind, name, start, end,
                                  synthetic=synthetic))

    def extend_shifted(self, template: List[Span], shift: float) -> None:
        """Bulk-append ``template`` spans moved forward by ``shift``.

        Replicated spans are marked synthetic.  The hybrid extrapolator
        replicates one steady iteration's spans tens of times; this skips
        the per-call interval validation the template already passed.
        """
        self._records.extend(
            Span(s.rank, s.lane, s.kind, s.name, s.start + shift,
                 s.end + shift, synthetic=True)
            for s in template
        )

    def __len__(self) -> int:
        return len(self._records)

    @property
    def spans(self) -> List[Span]:
        """The recorded spans, in recording order (trace-model view)."""
        return list(self._records)

    def records(self, *, rank: Optional[int] = None,
                lane: Optional[Lane] = None,
                kind: Optional[KernelKind] = None) -> List[Span]:
        return _query.filter_spans(self._records, rank=rank, lane=lane,
                                   kind=kind)

    @property
    def span(self) -> Tuple[float, float]:
        return _query.span_bounds(self._records)

    # -- summaries ---------------------------------------------------------------
    def busy_time_by_kind(self, rank: int,
                          lane: Optional[Lane] = None) -> Dict[KernelKind, float]:
        return _query.busy_time_by_kind(self._records, rank, lane)

    def compute_busy_fraction(self, rank: int) -> float:
        """Fraction of wall time the GPU compute lane is non-idle.

        The complement is Fig. 5's "white" idle time — communication or
        offload stalls the GPU cannot hide.
        """
        return _query.compute_busy_fraction(self._records, rank)

    def communication_time(self, rank: int) -> float:
        return _query.communication_time(self._records, rank)

    def idle_fraction(self, rank: int) -> float:
        return _query.idle_fraction(self._records, rank)

    # -- rendering -----------------------------------------------------------------
    def render(self, rank: int, *, width: int = 100,
               window: Optional[Tuple[float, float]] = None) -> str:
        """ASCII rendering of one rank's lanes (Fig.-5 style).

        Each lane is a row of ``width`` characters; the dominant kernel
        kind within each time bin picks the glyph.
        """
        return render_rank(self._records, rank, width=width, window=window)

    def legend(self) -> str:
        return legend_text()
