"""Execution timelines — the nsys-style traces of paper Fig. 5.

The executor records every step it runs as a :class:`TraceRecord` with a
rank, a lane (compute / communication / host-IO, mirroring concurrent CUDA
streams), a kernel kind, and an interval.  :class:`Timeline` offers
queries (busy time by kind, idle fraction) and an ASCII rendering that
reproduces Fig. 5's at-a-glance comparison of strategies.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..runtime.kernels import KernelKind


class Lane(enum.IntEnum):
    """Concurrent activity lanes per rank (akin to CUDA streams)."""

    COMPUTE = 0
    COMMUNICATION = 1
    HOST_IO = 2


#: Single-character glyphs for the ASCII rendering, by kernel kind.
GLYPHS: Dict[KernelKind, str] = {
    KernelKind.GEMM: "G",
    KernelKind.ELEMENTWISE: "e",
    KernelKind.TRANSFORM: "t",
    KernelKind.MEMORY: "m",
    KernelKind.OPTIMIZER: "O",
    KernelKind.NCCL_ALL_REDUCE: "R",
    KernelKind.NCCL_REDUCE: "r",
    KernelKind.NCCL_ALL_GATHER: "A",
    KernelKind.NCCL_BROADCAST: "B",
    KernelKind.NCCL_SEND_RECV: "s",
    KernelKind.HOST_TRANSFER: "H",
    KernelKind.NVME_IO: "N",
    KernelKind.CPU_OPTIMIZER: "C",
    KernelKind.IDLE: ".",
}


@dataclass(frozen=True)
class TraceRecord:
    rank: int
    lane: Lane
    kind: KernelKind
    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """An append-only store of trace records with summary queries."""

    def __init__(self) -> None:
        self._records: List[TraceRecord] = []

    def record(self, rank: int, lane: Lane, kind: KernelKind, name: str,
               start: float, end: float) -> None:
        if end < start:
            raise ConfigurationError("trace interval is reversed")
        self._records.append(TraceRecord(rank, lane, kind, name, start, end))

    def __len__(self) -> int:
        return len(self._records)

    def records(self, *, rank: Optional[int] = None,
                lane: Optional[Lane] = None,
                kind: Optional[KernelKind] = None) -> List[TraceRecord]:
        out = self._records
        if rank is not None:
            out = [r for r in out if r.rank == rank]
        if lane is not None:
            out = [r for r in out if r.lane == lane]
        if kind is not None:
            out = [r for r in out if r.kind == kind]
        return list(out)

    @property
    def span(self) -> Tuple[float, float]:
        if not self._records:
            return (0.0, 0.0)
        return (
            min(r.start for r in self._records),
            max(r.end for r in self._records),
        )

    # -- summaries ---------------------------------------------------------------
    def busy_time_by_kind(self, rank: int,
                          lane: Optional[Lane] = None) -> Dict[KernelKind, float]:
        out: Dict[KernelKind, float] = defaultdict(float)
        for r in self.records(rank=rank, lane=lane):
            out[r.kind] += r.duration
        return dict(out)

    def compute_busy_fraction(self, rank: int) -> float:
        """Fraction of wall time the GPU compute lane is non-idle.

        The complement is Fig. 5's "white" idle time — communication or
        offload stalls the GPU cannot hide.
        """
        start, end = self.span
        wall = end - start
        if wall <= 0:
            return 0.0
        busy = sum(
            r.duration for r in self.records(rank=rank, lane=Lane.COMPUTE)
            if r.kind is not KernelKind.IDLE
        )
        return min(1.0, busy / wall)

    def communication_time(self, rank: int) -> float:
        return sum(
            r.duration for r in self.records(rank=rank, lane=Lane.COMMUNICATION)
        )

    # -- rendering -----------------------------------------------------------------
    def render(self, rank: int, *, width: int = 100,
               window: Optional[Tuple[float, float]] = None) -> str:
        """ASCII rendering of one rank's lanes (Fig.-5 style).

        Each lane is a row of ``width`` characters; the dominant kernel
        kind within each time bin picks the glyph.
        """
        if width < 1:
            raise ConfigurationError("width must be positive")
        start, end = window if window is not None else self.span
        if end <= start:
            return ""
        bin_width = (end - start) / width
        rows = []
        for lane in Lane:
            occupancy: List[Dict[KernelKind, float]] = [
                defaultdict(float) for _ in range(width)
            ]
            for r in self.records(rank=rank, lane=lane):
                lo = max(r.start, start)
                hi = min(r.end, end)
                if hi <= lo:
                    continue
                first = int((lo - start) / bin_width)
                last = min(int((hi - start) / bin_width), width - 1)
                for b in range(first, last + 1):
                    b_lo = start + b * bin_width
                    b_hi = b_lo + bin_width
                    overlap = min(hi, b_hi) - max(lo, b_lo)
                    if overlap > 0:
                        occupancy[b][r.kind] += overlap
            chars = []
            for cell in occupancy:
                if not cell:
                    chars.append(" ")
                    continue
                kind = max(cell, key=lambda k: cell[k])
                chars.append(GLYPHS.get(kind, "?"))
            rows.append(f"{lane.name.lower():>13} |{''.join(chars)}|")
        return "\n".join(rows)

    def legend(self) -> str:
        return "  ".join(
            f"{glyph}={kind.value}" for kind, glyph in GLYPHS.items()
        )
