"""Compute-throughput profiler (DeepSpeed Flops Profiler analog).

The paper measures throughput with the DeepSpeed Flops Profiler: model
FLOPs executed per iteration divided by iteration wall time, summed over
the job.  :class:`FlopsProfiler` does the same from the analytic FLOP
model and the executor's measured iteration times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..model.config import ModelConfig, TrainingConfig
from ..model.flops import iteration_flops
from ..units import to_tflops


@dataclass(frozen=True)
class ThroughputReport:
    """Job-level throughput summary."""

    flops_per_iteration: float
    mean_iteration_time: float
    iteration_times: Sequence[float]

    @property
    def flops_per_second(self) -> float:
        if self.mean_iteration_time <= 0:
            return 0.0
        return self.flops_per_iteration / self.mean_iteration_time

    @property
    def tflops(self) -> float:
        """The paper's headline metric, TFLOP/s across the job."""
        return to_tflops(self.flops_per_second)

    @property
    def jitter(self) -> float:
        """Coefficient of variation across measured iterations."""
        arr = np.asarray(self.iteration_times, dtype=float)
        if len(arr) < 2 or arr.mean() == 0:
            return 0.0
        return float(arr.std() / arr.mean())


class FlopsProfiler:
    """Accumulates iteration timings for one training configuration."""

    def __init__(self, model: ModelConfig, training: TrainingConfig,
                 num_gpus: int, *, warmup_iterations: int = 0) -> None:
        if num_gpus < 1:
            raise ConfigurationError("num_gpus must be >= 1")
        if warmup_iterations < 0:
            raise ConfigurationError("warmup must be non-negative")
        self.flops_per_iteration = iteration_flops(model, training, num_gpus)
        self.warmup_iterations = warmup_iterations
        self._times: List[float] = []

    def record_iteration(self, seconds: float) -> None:
        if seconds <= 0:
            raise ConfigurationError("iteration time must be positive")
        self._times.append(seconds)

    @property
    def measured_times(self) -> List[float]:
        """Iteration times past the warmup window (the paper discards the
        first four iterations)."""
        return self._times[self.warmup_iterations:]

    def report(self) -> ThroughputReport:
        times = self.measured_times
        if not times:
            raise ConfigurationError("no measured iterations after warmup")
        return ThroughputReport(
            flops_per_iteration=self.flops_per_iteration,
            mean_iteration_time=float(np.mean(times)),
            iteration_times=tuple(times),
        )
