"""Cluster power/energy model (extension).

The paper's introduction motivates the whole study with training cost and
environmental impact ("the energy required and the environmental impact
become more concerning"), but never quantifies energy.  This module adds
a utilization-based power model on top of the telemetry the simulator
already produces, so every strategy can be compared on energy per
iteration and TFLOP per joule.

Power model: each device draws ``idle + (peak - idle) x utilization``.
GPU utilization is the compute lane's busy fraction from the timeline;
CPU utilization blends a base with the CPU-optimizer duty cycle; DRAM,
NVMe, and NIC power follow their bandwidth duty cycles from the link
ledgers.  Figures are datasheet-typical for the paper's parts (A100 SXM4
400 W, EPYC 7763 280 W TDP, DDR4 RDIMMs ~6 W, D7-P5600 ~20 W active,
ConnectX-6 ~25 W, SN3700 switch amortized per port).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import ConfigurationError
from ..hardware.cluster import Cluster
from ..hardware.link import LinkClass
from ..runtime.kernels import KernelKind
from .bandwidth import BandwidthMonitor
from .timeline import Lane, Timeline


@dataclass(frozen=True)
class PowerModel:
    """Per-device idle/peak draw in watts."""

    gpu_idle: float = 80.0
    gpu_peak: float = 400.0
    cpu_idle: float = 95.0
    cpu_peak: float = 280.0
    dimm_idle: float = 2.0
    dimm_peak: float = 6.0
    nvme_idle: float = 5.0
    nvme_peak: float = 20.0
    nic_idle: float = 12.0
    nic_peak: float = 25.0
    switch_per_port: float = 15.0

    def blend(self, idle: float, peak: float, utilization: float) -> float:
        utilization = min(1.0, max(0.0, utilization))
        return idle + (peak - idle) * utilization


@dataclass(frozen=True)
class EnergyReport:
    """Energy accounting for one measurement window."""

    window_seconds: float
    average_power_watts: float
    by_component: Dict[str, float]  # average watts

    @property
    def energy_joules(self) -> float:
        return self.average_power_watts * self.window_seconds

    def energy_per_iteration(self, iteration_seconds: float) -> float:
        return self.average_power_watts * iteration_seconds

    def tflops_per_kilowatt(self, tflops: float) -> float:
        if self.average_power_watts <= 0:
            return 0.0
        return tflops / (self.average_power_watts / 1e3)


def estimate_energy(cluster: Cluster, timeline: Timeline,
                    window: Tuple[float, float], *,
                    model: PowerModel = PowerModel()) -> EnergyReport:
    """Average cluster power over ``window`` from simulated telemetry."""
    start, end = window
    if end <= start:
        raise ConfigurationError("energy window must have positive width")
    duration = end - start
    monitor = BandwidthMonitor(cluster)
    components: Dict[str, float] = {}

    # GPUs: busy fraction of the compute lane.
    gpu_watts = 0.0
    for rank in range(cluster.num_gpus):
        busy = _busy_fraction(timeline, rank, window)
        gpu_watts += model.blend(model.gpu_idle, model.gpu_peak, busy)
    components["gpu"] = gpu_watts

    # CPUs: base load plus the CPU-optimizer duty cycle.
    cpu_watts = 0.0
    adam_duty = _adam_duty_cycle(timeline, window)
    for node in cluster.nodes:
        for _cpu in node.cpus:
            cpu_watts += model.blend(model.cpu_idle, model.cpu_peak,
                                     0.15 + 0.85 * adam_duty)
    components["cpu"] = cpu_watts

    # DRAM: duty cycle from the memory-channel ledgers.
    dram_watts = 0.0
    for node_index, node in enumerate(cluster.nodes):
        stats = monitor.stats(LinkClass.DRAM, start, end,
                              node_index=node_index)
        capacity = 2 * node.spec.cpu.dram_bandwidth
        duty = stats.average / capacity if capacity else 0.0
        dimms = 2 * node.spec.cpu.dram_channels
        dram_watts += dimms * model.blend(model.dimm_idle, model.dimm_peak,
                                          duty)
    components["dram"] = dram_watts

    # NVMe: duty cycle from the PCIe-NVME ledgers.
    nvme_watts = 0.0
    for node_index, node in enumerate(cluster.nodes):
        stats = monitor.stats(LinkClass.PCIE_NVME, start, end,
                              node_index=node_index)
        drives = len(node.nvme_drives)
        capacity = drives * node.spec.pcie_nvme_bandwidth_per_direction * 2
        duty = stats.average / capacity if capacity else 0.0
        nvme_watts += drives * model.blend(model.nvme_idle, model.nvme_peak,
                                           duty)
    components["nvme"] = nvme_watts

    # NICs + switch ports.
    nic_watts = 0.0
    for node_index, node in enumerate(cluster.nodes):
        stats = monitor.stats(LinkClass.ROCE, start, end,
                              node_index=node_index)
        capacity = len(node.nics) * 50e9
        duty = stats.average / capacity if capacity else 0.0
        nic_watts += len(node.nics) * model.blend(model.nic_idle,
                                                  model.nic_peak, duty)
    components["nic"] = nic_watts
    if cluster.switch is not None:
        ports = cluster.num_nodes * cluster.spec.node.nics_per_node
        components["switch"] = ports * model.switch_per_port

    total = sum(components.values())
    return EnergyReport(window_seconds=duration,
                        average_power_watts=total,
                        by_component=components)


def _busy_fraction(timeline: Timeline, rank: int,
                   window: Tuple[float, float]) -> float:
    start, end = window
    busy = 0.0
    for record in timeline.records(rank=rank, lane=Lane.COMPUTE):
        if record.kind is KernelKind.IDLE:
            continue
        overlap = min(record.end, end) - max(record.start, start)
        if overlap > 0:
            busy += overlap
    return busy / (end - start)


def _adam_duty_cycle(timeline: Timeline,
                     window: Tuple[float, float]) -> float:
    start, end = window
    busy = 0.0
    records = timeline.records(lane=Lane.HOST_IO,
                               kind=KernelKind.CPU_OPTIMIZER)
    ranks = {r.rank for r in records} or {0}
    for record in records:
        overlap = min(record.end, end) - max(record.start, start)
        if overlap > 0:
            busy += overlap
    return min(1.0, busy / (len(ranks) * (end - start)))
