"""Campaign reports and the serial-vs-parallel field-identity check.

:class:`CampaignReport` records, per job, the cache key, whether it was
served from cache, and the JSON payload — in the campaign's canonical
expansion order, regardless of worker completion order.

:func:`diff_reports` is the campaign analog of the determinism differ's
perturbation check: two reports of the same campaign (e.g. one serial,
one with four workers) are flattened to scalar fields and compared at
the differ's significant-figure tolerance.  An empty diff certifies the
worker pool changed nothing but the wall clock.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

from ..core.results import headline_from_payload

#: Layout version of a saved campaign report.
REPORT_SCHEMA = 1


@dataclass
class JobResult:
    """One executed (or cache-served) campaign job."""

    job_id: str
    kind: str
    key: str
    cached: bool
    elapsed_s: float
    payload: Dict[str, object]

    def to_dict(self) -> Dict[str, object]:
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "key": self.key,
            "cached": self.cached,
            "elapsed_s": self.elapsed_s,
            "payload": self.payload,
        }


@dataclass
class CampaignReport:
    """All job results of one campaign execution."""

    name: str
    workers: int
    elapsed_s: float = 0.0
    jobs: List[JobResult] = field(default_factory=list)

    @property
    def hits(self) -> int:
        return sum(1 for job in self.jobs if job.cached)

    @property
    def misses(self) -> int:
        return len(self.jobs) - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / len(self.jobs) if self.jobs else 0.0

    def job(self, job_id: str) -> JobResult:
        for result in self.jobs:
            if result.job_id == job_id:
                return result
        raise KeyError(f"no job {job_id!r} in campaign {self.name!r}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": REPORT_SCHEMA,
            "name": self.name,
            "workers": self.workers,
            "elapsed_s": self.elapsed_s,
            "job_count": len(self.jobs),
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "hit_rate": self.hit_rate,
            "jobs": [job.to_dict() for job in self.jobs],
        }

    def save(self, path: Union[str, Path]) -> Path:
        target = Path(path)
        target.write_text(json.dumps(self.to_dict(), indent=2))
        return target

    def summary(self) -> str:
        return (
            f"campaign {self.name!r}: {len(self.jobs)} jobs "
            f"({self.hits} cached, {self.misses} computed) with "
            f"{self.workers} worker(s) in {self.elapsed_s:.1f}s"
        )


def flatten_job(job: JobResult) -> Dict[str, object]:
    """Scalar ``{field: value}`` pairs of one job's payload."""
    if job.kind == "run":
        return headline_from_payload(job.payload)
    flat: Dict[str, object] = {}
    rows = job.payload.get("rows", [])
    for index, row in enumerate(rows):
        for key in sorted(row):
            flat[f"rows[{index}].{key}"] = row[key]
    return flat


def diff_reports(a: CampaignReport, b: CampaignReport
                 ) -> List[Dict[str, object]]:
    """Field-level differences between two runs of the same campaign.

    Floats are rounded to the determinism differ's significant-figure
    tolerance before comparison, so any reported difference is one the
    golden-trace harness would also see.  Empty list == field-identical.
    """
    from ..analysis.determinism.differ import round_sig

    def rounded(value: object) -> object:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return value
        return round_sig(float(value))

    diffs: List[Dict[str, object]] = []
    jobs_a = {job.job_id: job for job in a.jobs}
    jobs_b = {job.job_id: job for job in b.jobs}
    for job_id in sorted(set(jobs_a) | set(jobs_b)):
        if job_id not in jobs_a or job_id not in jobs_b:
            present = a.name if job_id in jobs_a else b.name
            diffs.append({"job_id": job_id, "field": "(job)",
                          "a": job_id in jobs_a, "b": job_id in jobs_b,
                          "note": f"only in {present!r}"})
            continue
        flat_a = {k: rounded(v)
                  for k, v in flatten_job(jobs_a[job_id]).items()}
        flat_b = {k: rounded(v)
                  for k, v in flatten_job(jobs_b[job_id]).items()}
        for key in sorted(set(flat_a) | set(flat_b)):
            if flat_a.get(key) != flat_b.get(key):
                diffs.append({"job_id": job_id, "field": key,
                              "a": flat_a.get(key), "b": flat_b.get(key)})
    return diffs
