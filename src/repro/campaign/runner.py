"""Campaign execution: cache lookup, worker pool, deterministic report.

The runner expands a :class:`~repro.campaign.spec.CampaignSpec` into
jobs, serves what it can from the :class:`~repro.campaign.cache.
ResultCache`, and executes the rest — inline for one worker, across a
``multiprocessing`` pool otherwise.  :func:`execute_job` is a top-level
function taking only JSON-safe payloads, so jobs pickle cleanly to
workers; each worker rebuilds its own simulator state from the spec, and
the simulator itself is deterministic, so a job's payload is independent
of which process ran it or when.  Results are reassembled in expansion
order, making the report — and the cache contents — bit-identical
between serial and parallel executions (``diff_reports`` verifies
exactly this).

Wall-clock timing here measures the host machine, not simulated time;
the campaign layer sits outside the simulator's determinism envelope on
purpose (timings are reporting-only and never enter cached payloads).
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from .cache import ResultCache
from .report import CampaignReport, JobResult
from .spec import CampaignSpec, Job

ProgressFn = Callable[[str], None]


def execute_job(payload: Dict[str, object]) -> Dict[str, object]:
    """Run one job from its JSON-safe form; returns the result payload.

    Top-level (picklable) on purpose: this is the function the worker
    pool imports by name.  Heavy imports stay inside so that spawning a
    worker only pays for them once it actually runs something.
    """
    kind = payload["kind"]
    spec_dict = payload["spec"]
    if kind == "experiment":
        from ..experiments.common import ExperimentSpec
        from ..experiments.registry import run_spec

        result = run_spec(ExperimentSpec.from_dict(spec_dict))
        return {
            "experiment_id": result.experiment_id,
            "title": result.title,
            "rows": result.rows,
            "rendered": result.rendered,
        }
    if kind == "run":
        from ..api.build import run_spec
        from ..api.spec import RunSpec
        from ..core.results import metrics_to_dict

        metrics = run_spec(RunSpec.from_dict(spec_dict))
        return metrics_to_dict(metrics)
    if kind == "cluster":
        from ..cluster.scenario import ClusterScenario
        from ..cluster.service import run_cluster

        run = run_cluster(ClusterScenario.from_dict(spec_dict))
        return run.report.to_dict()
    if kind == "inference":
        from ..inference.service import run_inference
        from ..inference.spec import InferenceSpec

        run = run_inference(InferenceSpec.from_dict(spec_dict))
        return run.report.to_dict()
    raise ConfigurationError(f"unknown job kind {kind!r}")


def _execute_timed(payload: Dict[str, object]) -> Dict[str, object]:
    """Pool target: wraps :func:`execute_job` with host-side timing."""
    started = time.perf_counter()
    result = execute_job(payload)
    return {"payload": result, "elapsed_s": time.perf_counter() - started}


def run_campaign(campaign: CampaignSpec, *,
                 workers: int = 1,
                 cache: Optional[ResultCache] = None,
                 progress: Optional[ProgressFn] = None) -> CampaignReport:
    """Execute a campaign and return its report.

    ``cache=None`` disables caching entirely; ``workers=1`` executes
    inline (no subprocesses), which is also the fallback when nothing
    needs computing.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    say = progress or (lambda message: None)
    jobs = campaign.expand()
    started = time.perf_counter()

    slots: List[Optional[JobResult]] = [None] * len(jobs)
    pending: List[Tuple[int, Job, str]] = []
    for index, job in enumerate(jobs):
        key = job.cache_key(salt=cache.salt if cache else None)
        payload = cache.get(key) if cache is not None else None
        if payload is not None:
            slots[index] = JobResult(job_id=job.job_id, kind=job.kind,
                                     key=key, cached=True, elapsed_s=0.0,
                                     payload=payload)
            say(f"cached   {job.job_id}")
        else:
            pending.append((index, job, key))

    if pending:
        payloads = [job.to_payload() for _, job, _ in pending]
        if workers == 1 or len(pending) == 1:
            outcomes = []
            for payload in payloads:
                say(f"running  {payload['job_id']}")
                outcomes.append(_execute_timed(payload))
        else:
            say(f"running  {len(pending)} jobs on {workers} workers")
            with multiprocessing.Pool(processes=workers) as pool:
                outcomes = pool.map(_execute_timed, payloads)
        for (index, job, key), outcome in zip(pending, outcomes):
            result_payload = outcome["payload"]
            if cache is not None:
                cache.put(key, kind=job.kind, spec=job.spec.to_dict(),
                          payload=result_payload)
            slots[index] = JobResult(
                job_id=job.job_id, kind=job.kind, key=key, cached=False,
                elapsed_s=outcome["elapsed_s"], payload=result_payload,
            )

    report = CampaignReport(
        name=campaign.name, workers=workers,
        elapsed_s=time.perf_counter() - started,
        jobs=[slot for slot in slots if slot is not None],
    )
    say(report.summary())
    return report
