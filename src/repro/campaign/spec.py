"""Declarative campaign specs and their expansion into jobs.

A :class:`CampaignSpec` names *what* to reproduce — experiment ids plus
an optional strategy x model-size x node-count sweep — and
:meth:`CampaignSpec.expand` materializes it into an ordered list of
:class:`Job`\\ s, each wrapping one canonical spec
(:class:`~repro.experiments.common.ExperimentSpec`,
:class:`~repro.api.RunSpec`, :class:`~repro.cluster.scenario.
ClusterScenario`, or :class:`~repro.inference.InferenceSpec` — any
:class:`~repro.api.workload.Workload`).  Expansion order is a pure
function of the
spec (experiments first, then the sweep in listed order), so a campaign
enumerates — and reports — identically no matter how many workers
execute it or in which order they finish.

Jobs are independent: the dependency graph is the trivial DAG, which is
what makes the worker pool safe.  The one in-repo exception (``fig8``
re-deriving from ``fig7``) is internal to the experiment module and
invisible at this layer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Dict, List, Mapping, Tuple, Union

from ..api.spec import RunSpec
from ..cluster.scenario import ClusterScenario
from ..errors import ConfigurationError
from ..experiments.common import ExperimentSpec
from ..inference.spec import InferenceSpec

JobSpec = Union[ExperimentSpec, RunSpec, ClusterScenario, InferenceSpec]


@dataclass(frozen=True)
class Job:
    """One unit of campaign work: a canonical spec plus a stable id."""

    job_id: str
    kind: str  # "experiment" | "run" | "cluster" | "inference"
    spec: JobSpec

    def cache_key(self, *, salt: str = None) -> str:
        return self.spec.cache_key(salt=salt)

    def to_payload(self) -> Dict[str, object]:
        """A picklable/JSON-safe form (what crosses the worker boundary)."""
        return {"job_id": self.job_id, "kind": self.kind,
                "spec": self.spec.to_dict()}


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative sweep: experiments plus a training-run grid.

    ``experiments`` run through the registry at the quick or ``full``
    profile; the cross product ``strategies x sizes_billions x nodes``
    becomes one :class:`~repro.api.RunSpec` job per cell.  Either side
    may be empty, but not both.
    """

    name: str = "campaign"
    experiments: Tuple[str, ...] = ()
    strategies: Tuple[str, ...] = ()
    sizes_billions: Tuple[float, ...] = ()
    nodes: Tuple[int, ...] = (1,)
    placement: str = "B"
    iterations: int = 3
    warmup_iterations: int = 1
    full: bool = False
    #: cluster-service scenarios to run alongside the training sweep
    clusters: Tuple[ClusterScenario, ...] = ()
    #: inference serving runs to score alongside (the second Workload)
    inference: Tuple[InferenceSpec, ...] = ()

    def __post_init__(self) -> None:
        for attr in ("experiments", "strategies", "sizes_billions", "nodes"):
            value = getattr(self, attr)
            if not isinstance(value, tuple):
                object.__setattr__(self, attr, tuple(value))
        object.__setattr__(self, "clusters", tuple(
            scenario if isinstance(scenario, ClusterScenario)
            else ClusterScenario.from_dict(scenario)
            for scenario in self.clusters
        ))
        object.__setattr__(self, "inference", tuple(
            spec if isinstance(spec, InferenceSpec)
            else InferenceSpec.from_dict(spec)
            for spec in self.inference
        ))
        if not self.name:
            raise ConfigurationError("campaign needs a name")
        if (not self.experiments and not self.strategies
                and not self.clusters and not self.inference):
            raise ConfigurationError(
                "campaign is empty: list experiments, strategies, "
                "clusters, and/or inference"
            )
        if self.strategies and not self.sizes_billions:
            raise ConfigurationError(
                "campaign sweeps strategies but lists no sizes_billions"
            )

    def expand(self) -> List[Job]:
        """The campaign's jobs, in canonical (deterministic) order."""
        from ..experiments.registry import spec_for

        jobs: List[Job] = []
        for experiment_id in self.experiments:
            spec = spec_for(experiment_id, quick=not self.full)
            jobs.append(Job(f"experiment/{experiment_id}", "experiment",
                            spec))
        for strategy in self.strategies:
            for size in self.sizes_billions:
                for num_nodes in self.nodes:
                    spec = RunSpec(
                        strategy=strategy,
                        size_billions=size,
                        nodes=num_nodes,
                        placement=self.placement,
                        iterations=self.iterations,
                        warmup_iterations=self.warmup_iterations,
                    )
                    jobs.append(Job(f"run/{spec.label}", "run", spec))
        for scenario in self.clusters:
            jobs.append(Job(f"cluster/{scenario.label}", "cluster",
                            scenario))
        for spec in self.inference:
            jobs.append(Job(f"inference/{spec.label}", "inference", spec))
        seen: Dict[str, int] = {}
        for job in jobs:
            seen[job.job_id] = seen.get(job.job_id, 0) + 1
        duplicates = sorted(k for k, n in seen.items() if n > 1)
        if duplicates:
            raise ConfigurationError(
                f"campaign expands to duplicate jobs: {duplicates}"
            )
        return jobs

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "experiments": list(self.experiments),
            "strategies": list(self.strategies),
            "sizes_billions": list(self.sizes_billions),
            "nodes": list(self.nodes),
            "placement": self.placement,
            "iterations": self.iterations,
            "warmup_iterations": self.warmup_iterations,
            "full": self.full,
            "clusters": [scenario.to_dict() for scenario in self.clusters],
            "inference": [spec.to_dict() for spec in self.inference],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "CampaignSpec":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown campaign fields {unknown}; known: {sorted(known)}"
            )
        return cls(**dict(payload))


def load_campaign(path: Union[str, Path]) -> CampaignSpec:
    """Read a campaign spec from a JSON file, with clean error rendering."""
    target = Path(path)
    try:
        text = target.read_text()
    except OSError as error:
        raise ConfigurationError(
            f"cannot read campaign spec {target}: {error}"
        ) from error
    try:
        payload = json.loads(text)
    except ValueError as error:
        raise ConfigurationError(
            f"campaign spec {target} is not valid JSON: {error}"
        ) from error
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"campaign spec {target} must be a JSON object, "
            f"got {type(payload).__name__}"
        )
    return CampaignSpec.from_dict(payload)
