"""Content-addressed on-disk cache for campaign results.

Objects live at ``<root>/objects/<key[:2]>/<key>.json`` where ``key`` is
the spec's :meth:`cache_key` — SHA-256 over the salt plus the canonical
JSON of the spec payload.  The salt (:func:`repro.api.default_salt`)
folds in the package version and the results schema version, so a code
or schema bump invalidates every cached object at once without touching
the files.

Each object is self-describing and self-verifying::

    {"schema": 1, "key": ..., "salt": ..., "kind": "run"|"experiment",
     "spec": {...}, "payload": {...}, "checksum": sha256(payload-json)}

Integrity problems surface as ``CMP0xx`` findings through the analysis
registry's claim table (:func:`repro.analysis.registry.claim_codes`):

* ``CMP001`` — payload checksum mismatch (bit rot / truncated write);
* ``CMP002`` — object stored under a filename that is not its key;
* ``CMP003`` — object unreadable or structurally malformed.

A damaged object is never served: :meth:`ResultCache.get` records the
finding, treats the key as a miss, and the campaign runner recomputes
and overwrites it.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..analysis.findings import Finding, Severity
from ..analysis.registry import claim_codes
from ..api.spec import canonical_json, default_salt
from ..errors import ConfigurationError

#: Layout version of one cache object file.
OBJECT_SCHEMA = 1

#: Stable finding codes for cache-integrity diagnostics.
CACHE_CODES = ("CMP001", "CMP002", "CMP003")

_PASS_NAME = "campaign-cache"

claim_codes(_PASS_NAME, CACHE_CODES)

_REQUIRED_KEYS = ("schema", "key", "salt", "kind", "spec", "payload",
                  "checksum")

#: A lockfile untouched for this long belongs to a dead writer and is
#: stolen; healthy writes hold the lock for well under a millisecond.
LOCK_STALE_S = 120.0

#: How long :meth:`ResultCache.lock` polls a contested lock before
#: giving up (object writes are tiny, so waiting longer means deadlock).
LOCK_TIMEOUT_S = 5.0


class CacheLock:
    """An acquired advisory write lock on one cache object.

    Opaque token returned by :meth:`ResultCache.lock`; consumed exactly
    once by :meth:`ResultCache.unlock`.  The lock is a sibling
    ``<key>.lock`` file created with ``O_EXCL``, so concurrent campaign
    processes sharing one cache directory serialize their writes to the
    same key without any daemon.
    """

    __slots__ = ("key", "path", "_fd")

    def __init__(self, key: str, path: Path, fd: int) -> None:
        self.key = key
        self.path = path
        self._fd: Optional[int] = fd

    @property
    def held(self) -> bool:
        return self._fd is not None

    def _release(self) -> None:
        if self._fd is None:
            raise ConfigurationError(
                f"cache lock for {self.key[:12]}... already released "
                f"(double-unlock)"
            )
        os.close(self._fd)
        self._fd = None
        try:
            self.path.unlink()
        except OSError:  # pragma: no cover - raced by a stale-lock steal
            pass


def payload_checksum(payload: Dict[str, object]) -> str:
    """SHA-256 over the payload's canonical JSON."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def _finding(code: str, message: str, *, path: Path,
             severity: Severity = Severity.WARNING) -> Finding:
    return Finding(
        pass_name=_PASS_NAME, severity=severity, code=code,
        message=message, subject=path.name, location=str(path),
    )


class ResultCache:
    """Content-addressed result store with integrity verification."""

    def __init__(self, root: Union[str, Path], *,
                 salt: Optional[str] = None) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise ConfigurationError(
                f"cache dir {self.root} exists and is not a directory"
            )
        self.salt = salt if salt is not None else default_salt()
        self.hits = 0
        self.misses = 0
        #: integrity findings recorded by get() misses this session
        self.findings: List[Finding] = []

    # -- object addressing -------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    def _iter_object_paths(self) -> List[Path]:
        objects = self.root / "objects"
        if not objects.is_dir():
            return []
        return sorted(objects.glob("*/*.json"))

    # -- read / write ------------------------------------------------------

    def _load_object(self, path: Path
                     ) -> Tuple[Optional[Dict[str, object]],
                                Optional[Finding]]:
        try:
            obj = json.loads(path.read_text())
        except (OSError, ValueError) as error:
            return None, _finding(
                "CMP003", f"unreadable cache object: {error}", path=path)
        if not isinstance(obj, dict) or any(
                k not in obj for k in _REQUIRED_KEYS):
            return None, _finding(
                "CMP003", "malformed cache object (missing keys)",
                path=path)
        if obj["schema"] != OBJECT_SCHEMA:
            return None, _finding(
                "CMP003",
                f"unsupported cache object schema {obj['schema']!r}",
                path=path)
        if path.stem != obj["key"]:
            return None, _finding(
                "CMP002",
                f"object filed under {path.stem[:12]}... but claims key "
                f"{str(obj['key'])[:12]}...",
                path=path)
        if payload_checksum(obj["payload"]) != obj["checksum"]:
            return None, _finding(
                "CMP001", "payload checksum mismatch", path=path)
        return obj, None

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The cached payload for ``key``, or ``None`` (a miss).

        Misses on absent objects, on any integrity violation (recorded
        in :attr:`findings`), and on salt mismatch (stale code version).
        """
        path = self.path_for(key)
        if not path.exists():
            self.misses += 1
            return None
        obj, finding = self._load_object(path)
        if obj is None:
            self.findings.append(finding)
            self.misses += 1
            return None
        if obj["salt"] != self.salt:
            self.misses += 1
            return None
        self.hits += 1
        return obj["payload"]

    # -- advisory locking --------------------------------------------------

    def lock(self, key: str, *, timeout_s: float = LOCK_TIMEOUT_S
             ) -> CacheLock:
        """Take the advisory write lock for ``key``'s object.

        Returns a :class:`CacheLock` token that must be passed to
        exactly one :meth:`unlock` (the cache's acquire/release pair the
        lifecycle analysis tracks).  A contested lock is polled for
        ``timeout_s``; a lockfile older than :data:`LOCK_STALE_S` is
        treated as abandoned by a dead writer and stolen.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        lock_path = path.with_suffix(".lock")
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                fd = os.open(str(lock_path),
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                return CacheLock(key, lock_path, fd)
            except FileExistsError:
                try:
                    age = time.time() - lock_path.stat().st_mtime
                except OSError:
                    continue  # holder released between open and stat
                if age > LOCK_STALE_S:
                    try:
                        lock_path.unlink()
                    except OSError:  # pragma: no cover - steal race
                        pass
                    continue
                if time.monotonic() >= deadline:
                    raise ConfigurationError(
                        f"cache object {key[:12]}... is locked by another "
                        f"writer (held {age:.1f}s; stale after "
                        f"{LOCK_STALE_S:.0f}s)"
                    ) from None
                time.sleep(0.05)

    def unlock(self, lock: CacheLock) -> None:
        """Release a lock taken with :meth:`lock`; double-unlock raises."""
        lock._release()

    @contextmanager
    def locked(self, key: str, *,
               timeout_s: float = LOCK_TIMEOUT_S) -> Iterator[CacheLock]:
        """Scope-guarded :meth:`lock`: released on exit, even on error."""
        lock = self.lock(key, timeout_s=timeout_s)
        try:
            yield lock
        finally:
            self.unlock(lock)

    def put(self, key: str, *, kind: str, spec: Dict[str, object],
            payload: Dict[str, object]) -> Path:
        """Store one result; atomic within the cache directory.

        The write happens under the key's advisory lock, so concurrent
        campaigns sharing a cache directory cannot interleave their
        temp-file renames for the same object.
        """
        obj = {
            "schema": OBJECT_SCHEMA,
            "key": key,
            "salt": self.salt,
            "kind": kind,
            "spec": spec,
            "payload": payload,
            "checksum": payload_checksum(payload),
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        lock = self.lock(key)
        try:
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(obj, indent=2, sort_keys=True))
            os.replace(tmp, path)
        finally:
            self.unlock(lock)
        return path

    # -- maintenance -------------------------------------------------------

    def verify(self) -> List[Finding]:
        """Integrity-check every stored object; returns the findings."""
        findings: List[Finding] = []
        for path in self._iter_object_paths():
            _, finding = self._load_object(path)
            if finding is not None:
                findings.append(finding)
        return findings

    def gc(self) -> Dict[str, int]:
        """Remove corrupt objects and objects from other salts.

        Returns removal counts; the surviving set is exactly the objects
        the current code version can serve.
        """
        removed_corrupt = 0
        removed_stale = 0
        kept = 0
        for path in self._iter_object_paths():
            obj, finding = self._load_object(path)
            if finding is not None:
                path.unlink()
                removed_corrupt += 1
            elif obj["salt"] != self.salt:
                path.unlink()
                removed_stale += 1
            else:
                kept += 1
        return {"removed_corrupt": removed_corrupt,
                "removed_stale": removed_stale, "kept": kept}

    def stats(self) -> Dict[str, object]:
        """Object counts/bytes on disk plus this session's hit counters."""
        paths = self._iter_object_paths()
        by_salt: Dict[str, int] = {}
        total_bytes = 0
        for path in paths:
            total_bytes += path.stat().st_size
            obj, _ = self._load_object(path)
            if obj is not None:
                label = ("current" if obj["salt"] == self.salt
                         else "stale")
                by_salt[label] = by_salt.get(label, 0) + 1
        return {
            "root": str(self.root),
            "objects": len(paths),
            "bytes": total_bytes,
            "by_salt": by_salt,
            "session_hits": self.hits,
            "session_misses": self.misses,
            "session_findings": len(self.findings),
        }
