"""Parallel experiment campaigns over a content-addressed result cache.

The tentpole workflow::

    from repro.campaign import CampaignSpec, ResultCache, run_campaign

    campaign = CampaignSpec(name="smoke", experiments=("fig1", "fig4"),
                            strategies=("ddp", "zero2"),
                            sizes_billions=(1.4,), nodes=(1, 2))
    cache = ResultCache(".repro-cache")
    report = run_campaign(campaign, workers=4, cache=cache)
    print(report.summary())

Re-running the same campaign serves every job from the cache; editing
the code (version bump) or the results schema invalidates it wholesale
via the cache-key salt.  ``diff_reports`` certifies serial and parallel
executions field-identical.
"""

from .cache import CACHE_CODES, OBJECT_SCHEMA, ResultCache, payload_checksum
from .report import CampaignReport, JobResult, diff_reports, flatten_job
from .runner import execute_job, run_campaign
from .spec import CampaignSpec, Job, load_campaign

__all__ = [
    "CACHE_CODES",
    "CampaignReport",
    "CampaignSpec",
    "Job",
    "JobResult",
    "OBJECT_SCHEMA",
    "ResultCache",
    "diff_reports",
    "execute_job",
    "flatten_job",
    "load_campaign",
    "payload_checksum",
    "run_campaign",
]
