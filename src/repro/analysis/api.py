"""Public entry points for the static-analysis subsystem.

* :func:`run_passes` — run registered passes over an
  :class:`~repro.analysis.context.AnalysisContext`;
* :func:`analyze_run_config` — convenience wrapper building the context
  from the same arguments :func:`repro.core.runner.run_training` takes;
  with ``cheap_only=True`` this is exactly the pre-run hook;
* :func:`analyze_source` — the ``source`` family (unit hygiene plus the
  ``DET0xx`` determinism lints) over a source tree
  (``repro analyze --self``);
* :func:`analyze_dimensions` — the ``dims`` family (the interprocedural
  dimensional analysis, ``DIM0xx``) over a source tree
  (``repro analyze --dims``);
* :func:`analyze_lifecycle` — the ``lifecycle`` family (the resource
  acquire/release typestate analysis, ``RES0xx``) over a source tree
  (``repro analyze --lifecycle``).

Importing this module registers every built-in pass.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Union

from ..errors import ReproError
from ..faults.plan import FaultPlan
from ..hardware.cluster import Cluster
from ..model.config import ModelConfig, TrainingConfig
from ..parallel.placement import PlacementConfig
from ..parallel.strategy import TrainingStrategy
from .context import AnalysisContext
from .findings import Finding, Report, Severity
from .registry import claim_codes, iter_passes
from . import config_lints as _config_lints    # noqa: F401  (registers passes)
from . import fault_lints as _fault_lints      # noqa: F401  (registers passes)
from . import topology_lints as _topology_lints  # noqa: F401  (registers passes)
from . import source_lints as _source_lints    # noqa: F401  (registers passes)
from .determinism import det_lints as _det_lints  # noqa: F401  (registers passes)
from . import cluster_lints as _cluster_lints  # noqa: F401  (registers passes)
from .dimensions import passes as _dim_passes  # noqa: F401  (registers passes)
from .lifecycle import passes as _lifecycle_passes  # noqa: F401  (registers passes)
from .source_lints import DEFAULT_SOURCE_ROOT

#: The CFG000 probe-error wrapper below is a reporter of its own.
claim_codes("run-passes", ("CFG000",))


def run_passes(ctx: AnalysisContext,
               families: Optional[Iterable[str]] = None, *,
               cheap_only: bool = False) -> Report:
    """Run every matching registered pass, collecting findings.

    A pass that raises a :class:`~repro.errors.ReproError` while probing
    (e.g. a strategy whose ``memory_plan`` rejects the cluster outright)
    contributes that error as an ERROR finding instead of aborting the
    whole analysis.
    """
    report = Report()
    for analysis_pass in iter_passes(families, cheap_only=cheap_only):
        try:
            findings = analysis_pass.run(ctx)
        except ReproError as error:
            findings = [Finding(
                analysis_pass.name, Severity.ERROR, "CFG000",
                f"configuration rejected while probing: {error}",
            )]
        report.passes_run.append(analysis_pass.name)
        report.extend(findings)
    return report


def analyze_run_config(cluster: Cluster,
                       strategy: Optional[TrainingStrategy] = None,
                       model: Optional[ModelConfig] = None, *,
                       training: Optional[TrainingConfig] = None,
                       placement: Optional[PlacementConfig] = None,
                       tensor_parallel: Optional[int] = None,
                       pipeline_parallel: Optional[int] = None,
                       fault_plan: Optional[FaultPlan] = None,
                       cheap_only: bool = False) -> Report:
    """Statically analyze one run configuration (config/topology/faults).

    ``cheap_only=True`` restricts to the passes safe on every run — the
    set :func:`repro.core.runner.run_training` applies automatically.  The
    full set additionally includes the static memory-capacity prediction,
    which deliberately stays out of the hook so the max-model-size search
    keeps its :class:`~repro.errors.OutOfMemoryError` backoff semantics.
    """
    ctx = AnalysisContext(
        cluster=cluster, strategy=strategy, model=model, training=training,
        placement=placement, tensor_parallel=tensor_parallel,
        pipeline_parallel=pipeline_parallel, fault_plan=fault_plan,
    )
    return run_passes(ctx, ("config", "topology", "faults"),
                      cheap_only=cheap_only)


def analyze_source(root: Union[str, Path, None] = None) -> Report:
    """Run the ``source`` passes over ``root`` (default: ``src/repro``).

    Covers unit hygiene (``SRC00x``) and the determinism hazard lints
    (``DET0xx``); no cluster is involved.
    """
    tree_root = Path(root) if root is not None else DEFAULT_SOURCE_ROOT
    ctx = AnalysisContext(source_root=tree_root)
    return run_passes(ctx, ("source",))


def analyze_dimensions(root: Union[str, Path, None] = None) -> Report:
    """Run the ``dims`` passes over ``root`` (default: ``src/repro``).

    Covers the flow-sensitive dimensional analysis (``DIM001``-``DIM006``)
    and the unit-vocabulary lints (``DIM010``/``DIM011``); no cluster is
    involved.
    """
    tree_root = Path(root) if root is not None else DEFAULT_SOURCE_ROOT
    ctx = AnalysisContext(source_root=tree_root)
    return run_passes(ctx, ("dims",))


def analyze_lifecycle(root: Union[str, Path, None] = None) -> Report:
    """Run the ``lifecycle`` passes over ``root`` (default: ``src/repro``).

    Covers the interprocedural acquire/release typestate analysis
    (``RES001``-``RES006``, ``RES010``); no cluster is involved.  The
    runtime complement (``RES007``-``RES009``) comes from
    :class:`repro.sim.leaksan.LeakSanitizer` under ``leak_check=True``.
    """
    tree_root = Path(root) if root is not None else DEFAULT_SOURCE_ROOT
    ctx = AnalysisContext(source_root=tree_root)
    return run_passes(ctx, ("lifecycle",))
