"""Public entry points for the static-analysis subsystem.

* :func:`run_passes` — run registered passes over an
  :class:`~repro.analysis.context.AnalysisContext`;
* :func:`analyze_run_config` — convenience wrapper building the context
  from the same arguments :func:`repro.core.runner.run_training` takes;
  with ``cheap_only=True`` this is exactly the pre-run hook;
* :func:`analyze_source` — the unit-hygiene lint over a source tree
  (``repro analyze --self``).

Importing this module registers the built-in config and topology passes.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Union

from ..errors import ReproError
from ..faults.plan import FaultPlan
from ..hardware.cluster import Cluster
from ..model.config import ModelConfig, TrainingConfig
from ..parallel.placement import PlacementConfig
from ..parallel.strategy import TrainingStrategy
from .context import AnalysisContext
from .findings import Finding, Report, Severity
from .registry import iter_passes
from . import config_lints as _config_lints    # noqa: F401  (registers passes)
from . import fault_lints as _fault_lints      # noqa: F401  (registers passes)
from . import topology_lints as _topology_lints  # noqa: F401  (registers passes)
from .source_lints import PASS_NAME as _SOURCE_PASS, lint_source_tree

#: The simulator's own package root, for ``repro analyze --self``.
DEFAULT_SOURCE_ROOT = Path(__file__).resolve().parent.parent


def run_passes(ctx: AnalysisContext,
               families: Optional[Iterable[str]] = None, *,
               cheap_only: bool = False) -> Report:
    """Run every matching registered pass, collecting findings.

    A pass that raises a :class:`~repro.errors.ReproError` while probing
    (e.g. a strategy whose ``memory_plan`` rejects the cluster outright)
    contributes that error as an ERROR finding instead of aborting the
    whole analysis.
    """
    report = Report()
    for analysis_pass in iter_passes(families, cheap_only=cheap_only):
        try:
            findings = analysis_pass.run(ctx)
        except ReproError as error:
            findings = [Finding(
                analysis_pass.name, Severity.ERROR, "CFG000",
                f"configuration rejected while probing: {error}",
            )]
        report.passes_run.append(analysis_pass.name)
        report.extend(findings)
    return report


def analyze_run_config(cluster: Cluster,
                       strategy: Optional[TrainingStrategy] = None,
                       model: Optional[ModelConfig] = None, *,
                       training: Optional[TrainingConfig] = None,
                       placement: Optional[PlacementConfig] = None,
                       tensor_parallel: Optional[int] = None,
                       pipeline_parallel: Optional[int] = None,
                       fault_plan: Optional[FaultPlan] = None,
                       cheap_only: bool = False) -> Report:
    """Statically analyze one run configuration (config/topology/faults).

    ``cheap_only=True`` restricts to the passes safe on every run — the
    set :func:`repro.core.runner.run_training` applies automatically.  The
    full set additionally includes the static memory-capacity prediction,
    which deliberately stays out of the hook so the max-model-size search
    keeps its :class:`~repro.errors.OutOfMemoryError` backoff semantics.
    """
    ctx = AnalysisContext(
        cluster=cluster, strategy=strategy, model=model, training=training,
        placement=placement, tensor_parallel=tensor_parallel,
        pipeline_parallel=pipeline_parallel, fault_plan=fault_plan,
    )
    return run_passes(ctx, ("config", "topology", "faults"),
                      cheap_only=cheap_only)


def analyze_source(root: Union[str, Path, None] = None) -> Report:
    """Run the unit-hygiene lint over ``root`` (default: ``src/repro``)."""
    tree_root = Path(root) if root is not None else DEFAULT_SOURCE_ROOT
    report = Report()
    report.passes_run.append(_SOURCE_PASS)
    report.extend(lint_source_tree(tree_root))
    return report
