"""Unit-hygiene AST lint over the simulator's own source tree.

:mod:`repro.units` is the canonical vocabulary for sizes, times, and
rates, but nothing enforced it — so ``1e9`` vs ``2**30`` bugs (decimal
vs binary gigabytes differ by 7 %) could slip into bandwidth math
unnoticed.  This pass walks the stdlib :mod:`ast` of every module under
``src/repro`` and flags:

* ``SRC001`` — magic unit constants (``1e9``, ``2**30``, ...) where a
  :mod:`repro.units` name exists (WARNING; ``units.py`` itself defines
  them and is exempt);
* ``SRC002`` — float ``==``/``!=`` on simulated-time expressions, which
  are accumulated floats and must be compared with tolerances (WARNING);
* ``SRC003`` — generator processes yielding plain constants instead of
  :class:`~repro.sim.engine.BaseEvent` objects, which the engine rejects
  only at runtime (ERROR).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List

from .. import units
from .context import AnalysisContext
from .findings import Finding, Severity
from .registry import register_pass

PASS_NAME = "unit-hygiene"

#: The simulator's own package root — what ``repro analyze --self`` scans.
DEFAULT_SOURCE_ROOT = Path(__file__).resolve().parent.parent

#: Literal values with a canonical :mod:`repro.units` name.  Time
#: constants (1e-3, 1e-6, 1e-9) are deliberately absent: the same values
#: appear as comparison tolerances everywhere, which are not unit bugs.
_UNIT_NAMES = {
    units.MB: "MB (or GFLOPS/MBPS as appropriate)",
    units.GB: "GB (or GFLOPS/GBPS/billion as appropriate)",
    units.TB: "TB (or TFLOPS as appropriate)",
    float(units.MIB): "MIB",
    float(units.GIB): "GIB",
    float(units.TIB): "TIB",
}

#: Exponents of ``2**N`` expressions that spell binary units.
_POW2_UNITS = {10: "KIB", 20: "MIB", 30: "GIB", 40: "TIB"}

#: Identifier tokens (underscore-separated) that mark an expression as a
#: simulated time.  Matched per token, not as substrings, so names like
#: ``endpoint`` do not read as times.
_TIME_TOKENS = frozenset({
    "time", "times", "now", "start", "started", "end", "ended",
    "duration", "latency", "deadline", "elapsed",
})

#: Engine methods whose return values are events; a generator yielding
#: one of these is a DES process.
_EVENT_FACTORIES = frozenset(
    {"timeout", "event", "all_of", "any_of", "process"}
)


def _is_timeish(node: ast.expr) -> bool:
    name = ""
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    tokens = name.lower().split("_")
    return any(token in _TIME_TOKENS for token in tokens)


def _unit_suggestion(node: ast.expr) -> str:
    """The units name a literal expression should use, or ''."""
    if isinstance(node, ast.Constant):
        value = node.value
        if isinstance(value, bool):
            return ""
        if isinstance(value, float) and value in _UNIT_NAMES:
            return _UNIT_NAMES[value]
        if isinstance(value, int) and float(value) in _UNIT_NAMES:
            return _UNIT_NAMES[float(value)]
    if (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Pow)
            and isinstance(node.left, ast.Constant) and node.left.value == 2
            and isinstance(node.right, ast.Constant)
            and node.right.value in _POW2_UNITS):
        return _POW2_UNITS[node.right.value]
    return ""


def _lint_module(tree: ast.Module, location: str) -> Iterator[Finding]:
    # SRC001 — magic unit constants.
    pow2_spans = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.BinOp):
            suggestion = _unit_suggestion(node)
            if suggestion:
                pow2_spans.add((node.left.lineno, node.left.col_offset))
                pow2_spans.add((node.right.lineno, node.right.col_offset))
                yield Finding(
                    PASS_NAME, Severity.WARNING, "SRC001",
                    f"magic constant 2**{node.right.value}; use "
                    f"repro.units.{suggestion}",
                    location=f"{location}:{node.lineno}",
                )
        elif isinstance(node, ast.Constant):
            if (node.lineno, node.col_offset) in pow2_spans:
                continue
            suggestion = _unit_suggestion(node)
            if suggestion:
                yield Finding(
                    PASS_NAME, Severity.WARNING, "SRC001",
                    f"magic constant {node.value!r}; use "
                    f"repro.units.{suggestion}",
                    location=f"{location}:{node.lineno}",
                )

    # SRC002 — float equality on simulated times.
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            timeish = [_is_timeish(left), _is_timeish(right)]
            if all(timeish):
                flag = True
            elif any(timeish):
                other = right if timeish[0] else left
                flag = (isinstance(other, ast.Constant)
                        and isinstance(other.value, float)
                        and other.value != 0.0)
            else:
                flag = False
            if flag:
                yield Finding(
                    PASS_NAME, Severity.WARNING, "SRC002",
                    "exact float comparison on a simulated time; compare "
                    "with a tolerance instead",
                    location=f"{location}:{node.lineno}",
                )

    # SRC003 — process generators yielding non-events.
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yields = [
            node for node in ast.walk(func) if isinstance(node, ast.Yield)
        ]
        if not any(_yields_event_factory(y) for y in yields):
            continue
        for node in yields:
            if node.value is None or isinstance(node.value, ast.Constant):
                shown = (
                    "a bare yield" if node.value is None
                    else f"the constant {node.value.value!r}"
                )
                yield Finding(
                    PASS_NAME, Severity.ERROR, "SRC003",
                    f"process generator {func.name!r} yields {shown}; "
                    f"processes must yield BaseEvent instances",
                    subject=func.name,
                    location=f"{location}:{node.lineno}",
                )


def _yields_event_factory(node: ast.Yield) -> bool:
    value = node.value
    return (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Attribute)
        and value.func.attr in _EVENT_FACTORIES
    )


@register_pass(
    PASS_NAME, family="source", cheap=False,
    description="units vocabulary used; no float== on times; "
                "processes yield events",
    codes=("SRC000", "SRC001", "SRC002", "SRC003"),
)
def unit_hygiene(ctx: AnalysisContext) -> Iterator[Finding]:
    root = (ctx.source_root if ctx.source_root is not None
            else DEFAULT_SOURCE_ROOT)
    yield from lint_source_tree(root)


def lint_source_tree(root: Path) -> List[Finding]:
    """Run the unit-hygiene lint over every ``.py`` file under ``root``."""
    findings: List[Finding] = []
    for path in sorted(root.rglob("*.py")):
        if path.name == "units.py":
            continue
        location = path.relative_to(root).as_posix()
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError as error:
            findings.append(Finding(
                PASS_NAME, Severity.ERROR, "SRC000",
                f"cannot parse: {error}", location=f"{location}:"
                f"{error.lineno or 0}",
            ))
            continue
        findings.extend(_lint_module(tree, location))
    return findings
