"""Source-hygiene AST lint over the simulator's own source tree.

This pass walks the stdlib :mod:`ast` of every module under
``src/repro`` and flags:

* ``SRC000`` — files the parser rejects outright (ERROR);
* ``SRC003`` — generator processes yielding plain constants instead of
  :class:`~repro.sim.engine.BaseEvent` objects, which the engine rejects
  only at runtime (ERROR).

The unit-discipline checks that used to live here (``SRC001`` magic
unit constants, ``SRC002`` float ``==`` on simulated times) moved to the
``dims`` family as ``DIM010``/``DIM011`` when the dimensional-analysis
engine arrived (:mod:`repro.analysis.dimensions.vocabulary`); baselines
naming the retired codes are migrated on load.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List

from .context import AnalysisContext
from .findings import Finding, Severity
from .registry import register_pass

PASS_NAME = "source-hygiene"

#: The simulator's own package root — what ``repro analyze --self`` scans.
DEFAULT_SOURCE_ROOT = Path(__file__).resolve().parent.parent

#: Engine methods whose return values are events; a generator yielding
#: one of these is a DES process.
_EVENT_FACTORIES = frozenset(
    {"timeout", "event", "all_of", "any_of", "process"}
)


def _lint_module(tree: ast.Module, location: str) -> Iterator[Finding]:
    # SRC003 — process generators yielding non-events.
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yields = [
            node for node in ast.walk(func) if isinstance(node, ast.Yield)
        ]
        if not any(_yields_event_factory(y) for y in yields):
            continue
        for node in yields:
            if node.value is None or isinstance(node.value, ast.Constant):
                shown = (
                    "a bare yield" if node.value is None
                    else f"the constant {node.value.value!r}"
                )
                yield Finding(
                    PASS_NAME, Severity.ERROR, "SRC003",
                    f"process generator {func.name!r} yields {shown}; "
                    f"processes must yield BaseEvent instances",
                    subject=func.name,
                    location=f"{location}:{node.lineno}",
                )


def _yields_event_factory(node: ast.Yield) -> bool:
    value = node.value
    return (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Attribute)
        and value.func.attr in _EVENT_FACTORIES
    )


@register_pass(
    PASS_NAME, family="source", cheap=False,
    description="sources parse; processes yield events",
    codes=("SRC000", "SRC003"),
)
def source_hygiene(ctx: AnalysisContext) -> Iterator[Finding]:
    root = (ctx.source_root if ctx.source_root is not None
            else DEFAULT_SOURCE_ROOT)
    yield from lint_source_tree(root)


def lint_source_tree(root: Path) -> List[Finding]:
    """Run the source-hygiene lint over every ``.py`` file under ``root``."""
    findings: List[Finding] = []
    for path in sorted(root.rglob("*.py")):
        if path.name == "units.py":
            continue
        location = path.relative_to(root).as_posix()
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError as error:
            findings.append(Finding(
                PASS_NAME, Severity.ERROR, "SRC000",
                f"cannot parse: {error}", location=f"{location}:"
                f"{error.lineno or 0}",
            ))
            continue
        findings.extend(_lint_module(tree, location))
    return findings
