"""Topology lints over the ``hardware.topology`` graph.

The paper's bandwidth numbers are functions of the wiring: a silently
one-way link, an NVLink edge with PCIe bandwidth, or a GPU cut off from
the NVMe drives produces plausible-but-wrong Table IV rows.  These passes
check the built graph against the structural facts of Table III and the
XE8545 wiring (Fig. 2) without simulating anything.

Codes: ``TOPO00x`` symmetry, ``TOPO01x`` bandwidth bounds, ``TOPO02x``
reachability, ``TOPO03x`` NUMA/SerDes affinity.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, Set

from ..hardware.devices import DeviceKind
from ..hardware.link import LinkClass
from ..hardware.presets import INTERFACE_TO_CLASS, TABLE_III
from ..units import MB, TB, to_gbps
from .context import AnalysisContext
from .findings import Finding, Severity
from .registry import register_pass

#: Table III theoretical bidirectional bandwidth per link, by class.
TABLE_III_PER_LINK: Dict[LinkClass, float] = {
    INTERFACE_TO_CLASS[entry.interface]: entry.bandwidth_per_link
    for entry in TABLE_III
}

#: A link whose per-link bandwidth is off the Table III preset by more
#: than this factor is suspicious (custom clusters may be intentional —
#: hence WARNING, not ERROR).
BOUNDS_FACTOR = 4.0

#: Link classes whose endpoints must share a socket (they terminate in
#: one socket's I/O die).
_SOCKET_LOCAL = frozenset({
    LinkClass.DRAM, LinkClass.PCIE_GPU, LinkClass.PCIE_NIC,
    LinkClass.PCIE_NVME,
})


@register_pass(
    "link-symmetry", family="topology",
    description="links full-duplex unless declared asymmetric (DRAM)",
    codes=("TOPO001", "TOPO002"),
)
def link_symmetry(ctx: AnalysisContext) -> Iterator[Finding]:
    for link in ctx.require_cluster().topology.links:
        if link.endpoint_a == link.endpoint_b:
            yield Finding(
                "link-symmetry", Severity.ERROR, "TOPO002",
                f"link {link.name!r} is a self-loop on "
                f"{link.endpoint_a!r}", subject=link.name,
            )
        if not link.spec.duplex and link.link_class is not LinkClass.DRAM:
            yield Finding(
                "link-symmetry", Severity.ERROR, "TOPO001",
                f"link {link.name!r} ({link.link_class}) is half-duplex, "
                f"but only DRAM channels are declared asymmetric "
                f"(Table III footnote 2)", subject=link.name,
            )


@register_pass(
    "bandwidth-bounds", family="topology",
    description="per-link bandwidth within sane bounds of Table III",
    codes=("TOPO010", "TOPO011"),
)
def bandwidth_bounds(ctx: AnalysisContext) -> Iterator[Finding]:
    for link in ctx.require_cluster().topology.links:
        per_direction = link.spec.bandwidth_per_direction
        if per_direction > 10.0 * TB or per_direction < 1.0 * MB:
            yield Finding(
                "bandwidth-bounds", Severity.ERROR, "TOPO011",
                f"link {link.name!r}: {to_gbps(per_direction):.3f} GBps "
                f"per direction is not a plausible interconnect rate",
                subject=link.name,
            )
            continue
        expected = TABLE_III_PER_LINK.get(link.link_class)
        if expected is None:  # INTERNAL paths are not in Table III
            continue
        actual = link.spec.bandwidth_bidirectional
        ratio = actual / expected
        if ratio > BOUNDS_FACTOR or ratio < 1.0 / BOUNDS_FACTOR:
            yield Finding(
                "bandwidth-bounds", Severity.WARNING, "TOPO010",
                f"link {link.name!r}: {to_gbps(actual):.1f} GBps "
                f"bidirectional per link vs the Table III "
                f"{link.link_class} preset of {to_gbps(expected):.1f} GBps "
                f"(off by more than {BOUNDS_FACTOR:.0f}x)",
                subject=link.name,
            )


@register_pass(
    "reachability", family="topology",
    description="every device reachable from every GPU",
    codes=("TOPO020",),
)
def reachability(ctx: AnalysisContext) -> Iterator[Finding]:
    cluster = ctx.require_cluster()
    topology = cluster.topology
    adjacency: Dict[str, Set[str]] = {d.name: set() for d in topology.devices}
    for link in topology.links:
        adjacency[link.endpoint_a].add(link.endpoint_b)
        adjacency[link.endpoint_b].add(link.endpoint_a)
    all_names = set(adjacency)
    for gpu in cluster.all_gpus():
        visited = {gpu.name}
        frontier = deque([gpu.name])
        while frontier:
            for neighbor in adjacency[frontier.popleft()]:
                if neighbor not in visited:
                    visited.add(neighbor)
                    frontier.append(neighbor)
        unreachable = sorted(all_names - visited)
        if unreachable:
            shown = ", ".join(unreachable[:4])
            more = len(unreachable) - 4
            suffix = f" (+{more} more)" if more > 0 else ""
            yield Finding(
                "reachability", Severity.ERROR, "TOPO020",
                f"{gpu.name} cannot reach {shown}{suffix}",
                subject=gpu.name,
            )


@register_pass(
    "numa-affinity", family="topology",
    description="socket-local links stay socket-local; xGMI crosses sockets",
    codes=("TOPO030", "TOPO031", "TOPO032"),
)
def numa_affinity(ctx: AnalysisContext) -> Iterator[Finding]:
    topology = ctx.require_cluster().topology
    for link in topology.links:
        a = topology.device(link.endpoint_a)
        b = topology.device(link.endpoint_b)
        cls = link.link_class
        if cls in _SOCKET_LOCAL:
            if a.node_index != b.node_index:
                yield Finding(
                    "numa-affinity", Severity.ERROR, "TOPO030",
                    f"link {link.name!r} ({cls}) spans nodes "
                    f"{a.node_index} and {b.node_index}", subject=link.name,
                )
            elif (a.socket_index is not None and b.socket_index is not None
                    and a.socket_index != b.socket_index):
                yield Finding(
                    "numa-affinity", Severity.ERROR, "TOPO030",
                    f"link {link.name!r} ({cls}) spans sockets "
                    f"{a.socket_index} and {b.socket_index}; these links "
                    f"terminate in one socket's SerDes", subject=link.name,
                )
        elif cls is LinkClass.XGMI:
            if a.node_index != b.node_index:
                yield Finding(
                    "numa-affinity", Severity.ERROR, "TOPO031",
                    f"xGMI link {link.name!r} spans nodes", subject=link.name,
                )
            elif (a.kind is not DeviceKind.CPU or b.kind is not DeviceKind.CPU
                    or a.socket_index == b.socket_index):
                yield Finding(
                    "numa-affinity", Severity.ERROR, "TOPO031",
                    f"xGMI link {link.name!r} must join the two CPU "
                    f"sockets of one node", subject=link.name,
                )
        elif cls is LinkClass.NVLINK:
            if (a.kind is not DeviceKind.GPU or b.kind is not DeviceKind.GPU
                    or a.node_index != b.node_index):
                yield Finding(
                    "numa-affinity", Severity.ERROR, "TOPO032",
                    f"NVLink {link.name!r} must join two GPUs of one node",
                    subject=link.name,
                )
