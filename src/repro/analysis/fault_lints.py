"""Fault-plan lints: vet an injection schedule before the DES starts.

A fault plan is user input (CLI spec strings or experiment code); a typo
in a target name would otherwise surface as a mid-run exception, and an
event scheduled past the simulated horizon would silently never fire.
These passes catch both statically.

Codes: ``FLT00x`` target resolution, ``FLT01x`` scheduling/horizon.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import FaultPlanError
from ..faults.events import FaultKind
from ..faults.injector import resolve_target
from .context import AnalysisContext
from .findings import Finding, Severity
from .registry import register_pass


@register_pass(
    "fault-plan", family="faults",
    description="fault targets resolve on the cluster; events fit the horizon",
    codes=("FLT001", "FLT011", "FLT012", "FLT013"),
)
def fault_plan_lint(ctx: AnalysisContext) -> Iterator[Finding]:
    plan = ctx.fault_plan
    if plan is None or not plan.events:
        return
    cluster = ctx.require_cluster()
    for index, event in enumerate(plan.events):
        try:
            resolve_target(cluster, event)
        except FaultPlanError as error:
            yield Finding(
                "fault-plan", Severity.ERROR, "FLT001",
                f"event #{index}: {error}", subject=event.target,
            )
        if plan.horizon is not None and event.end > plan.horizon:
            yield Finding(
                "fault-plan", Severity.ERROR, "FLT011",
                f"event #{index} ({event.kind} on {event.target!r}) ends "
                f"at {event.end:.6g} s, past the plan horizon "
                f"{plan.horizon:.6g} s — it would outlive the simulated "
                f"window", subject=event.target,
            )
        if event.is_noop:
            yield Finding(
                "fault-plan", Severity.WARNING, "FLT012",
                f"event #{index} ({event.kind} on {event.target!r}) has "
                f"zero magnitude and will be skipped entirely",
                subject=event.target,
            )
    span = plan.span
    down_windows = [
        event for event in plan.events
        if event.kind is FaultKind.LINK_DOWN and event.duration > 0.2 * span
    ]
    for event in down_windows:
        yield Finding(
            "fault-plan", Severity.WARNING, "FLT013",
            f"{event.target!r} is down for {event.duration:.6g} s "
            f"({event.duration / span:.0%} of the plan span); collectives "
            f"crossing it may exhaust their retry budget and abort "
            f"(TransportTimeoutError)", subject=event.target,
        )
