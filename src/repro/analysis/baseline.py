"""Accepted-findings baseline for ``repro analyze``.

Advisory findings that have been reviewed and accepted (e.g. a
``DET001`` set-iteration warning the perturbation differ refuted) live
in a committed JSON baseline; applying it filters them out of a report
so CI stays quiet about known, vetted advisories while new findings
still fail the build.

Matching is deliberately line-number-free: an entry matches on the
finding ``code``, the *file* part of its location, and (when the entry
gives one) the ``subject`` — so unrelated edits shifting line numbers do
not invalidate the baseline, while a second hazard appearing in another
file does surface.

File format (``analysis-baseline.json`` at the repo root)::

    {
      "version": 1,
      "accepted": [
        {"code": "DET001", "file": "sim/flows.py",
         "note": "why this is accepted"}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple, Union

from ..errors import ConfigurationError
from .findings import Finding, Report

BASELINE_VERSION = 1

#: Retired finding codes -> their successors.  The unit-discipline lints
#: moved from the unit-hygiene pass into the ``dims`` family; baselines
#: written before that keep working because entries naming the old codes
#: are rewritten on load.
LEGACY_CODES = {
    "SRC001": "DIM010",
    "SRC002": "DIM011",
}


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding."""

    code: str
    file: str
    subject: str = ""
    note: str = ""

    def matches(self, finding: Finding) -> bool:
        if finding.code != self.code:
            return False
        if _location_file(finding.location) != self.file:
            return False
        return not self.subject or self.subject == finding.subject

    def to_dict(self) -> Dict[str, str]:
        out = {"code": self.code, "file": self.file}
        if self.subject:
            out["subject"] = self.subject
        if self.note:
            out["note"] = self.note
        return out


def _location_file(location: str) -> str:
    """The file part of a ``file:line`` location anchor."""
    return location.rsplit(":", 1)[0] if ":" in location else location


def load_baseline(path: Union[str, Path]) -> List[BaselineEntry]:
    """Parse a baseline file; raise ConfigurationError on bad shape."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise ConfigurationError(f"cannot read baseline {path}: {error}")
    if not isinstance(payload, dict) or "accepted" not in payload:
        raise ConfigurationError(
            f"baseline {path} must be an object with an 'accepted' list"
        )
    version = payload.get("version", BASELINE_VERSION)
    if version != BASELINE_VERSION:
        raise ConfigurationError(
            f"baseline {path} has version {version!r}; this build "
            f"understands version {BASELINE_VERSION}"
        )
    entries: List[BaselineEntry] = []
    for raw in payload["accepted"]:
        if not isinstance(raw, dict) or "code" not in raw or "file" not in raw:
            raise ConfigurationError(
                f"baseline {path}: every entry needs 'code' and 'file' "
                f"keys, got {raw!r}"
            )
        code = str(raw["code"])
        entries.append(BaselineEntry(
            code=LEGACY_CODES.get(code, code), file=str(raw["file"]),
            subject=str(raw.get("subject", "")),
            note=str(raw.get("note", "")),
        ))
    return entries


def apply_baseline(report: Report, entries: List[BaselineEntry]
                   ) -> Tuple[Report, List[BaselineEntry]]:
    """Filter accepted findings out of ``report``.

    Returns the filtered report plus the *stale* entries that matched
    nothing — candidates for deletion once the underlying code is fixed.
    """
    filtered = Report(passes_run=list(report.passes_run))
    used = [False] * len(entries)
    for finding in report.findings:
        matched = False
        for index, entry in enumerate(entries):
            if entry.matches(finding):
                used[index] = True
                matched = True
                break
        if not matched:
            filtered.add(finding)
    stale = [entry for entry, hit in zip(entries, used) if not hit]
    return filtered, stale


def write_baseline(report: Report, path: Union[str, Path], *,
                   note: str = "accepted via --update-baseline") -> None:
    """Write a baseline accepting every finding in ``report``."""
    seen = set()
    accepted: List[Dict[str, str]] = []
    for finding in report.findings:
        entry = BaselineEntry(
            code=finding.code, file=_location_file(finding.location),
            subject=finding.subject, note=note,
        )
        key = (entry.code, entry.file, entry.subject)
        if key in seen:
            continue
        seen.add(key)
        accepted.append(entry.to_dict())
    payload = {"version": BASELINE_VERSION, "accepted": accepted}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
