"""Input bundle handed to every analysis pass."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from ..faults.plan import FaultPlan
from ..hardware.cluster import Cluster
from ..model.config import ModelConfig, TrainingConfig
from ..parallel.placement import PlacementConfig
from ..parallel.strategy import StrategyContext, TrainingStrategy


@dataclass
class AnalysisContext:
    """Everything known about a run before the engine fires an event.

    ``cluster`` may be absent for source-only analysis (the ``source``
    family lints a tree, not a machine); every hardware-facing pass goes
    through :meth:`require_cluster`.  ``strategy``/``model`` may be
    absent for topology-only analysis.  ``tensor_parallel``/
    ``pipeline_parallel`` are *requested* degrees (CLI overrides): they
    let the divisibility lints vet a degree the shipped strategies would
    never derive themselves, e.g. TP=3 on 8 GPUs.  ``fault_plan`` is the
    fault-injection schedule, when the run has one; the ``faults``
    family of passes vets it against the cluster.  ``source_root`` is
    the tree the ``source`` family scans (defaults to the installed
    ``repro`` package).
    """

    cluster: Optional[Cluster] = None
    strategy: Optional[TrainingStrategy] = None
    model: Optional[ModelConfig] = None
    training: Optional[TrainingConfig] = None
    placement: Optional[PlacementConfig] = None
    tensor_parallel: Optional[int] = None
    pipeline_parallel: Optional[int] = None
    fault_plan: Optional[FaultPlan] = None
    source_root: Optional[Path] = None

    def __post_init__(self) -> None:
        if self.training is None:
            self.training = TrainingConfig()

    def require_cluster(self) -> Cluster:
        if self.cluster is None:
            raise ValueError("this analysis pass requires a cluster")
        return self.cluster

    @property
    def world_size(self) -> int:
        return self.require_cluster().num_gpus

    def strategy_context(self) -> StrategyContext:
        if self.strategy is None or self.model is None:
            raise ValueError("strategy and model required for strategy lints")
        assert self.training is not None
        return StrategyContext(self.require_cluster(), self.model,
                               self.training)
