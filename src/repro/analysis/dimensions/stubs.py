"""Unit-stub registry: the dimension seeds the engine starts from.

Three kinds of seeds:

* :data:`UNITS_CONSTANTS` / :data:`UNITS_FUNCTIONS` — dimensions for
  :mod:`repro.units` names.  ``GB`` converts a dimensionless count into
  bytes, so *as a factor* it carries the ``bytes`` dimension (decimal
  flavor); ``GIB`` likewise with binary flavor; ``MS`` carries seconds;
  ``gbps()`` returns bytes/s.  ``GFLOPS``/``TFLOPS`` are deliberately
  ``UNKNOWN``: the same constant scales both FLOP counts and FLOP/s
  rates, so assigning either would fabricate mismatches.
* :data:`ANNOTATION_DIMS` — the ``Bytes``/``Seconds``/... annotation
  aliases exported by :mod:`repro.units`.  At runtime they are plain
  ``float``; the engine reads them off signatures.
* :data:`SINK_CONTRACTS` — dimension contracts on well-known method
  sinks whose receivers cannot be typed statically but whose names and
  arities are unambiguous in this codebase: link-ledger charges
  (``.record(start, end, num_bytes)``), event durations
  (``.schedule_at(time, ...)``, ``.timeout(delay)``), flow transfers
  (``.transfer(route, num_bytes, ...)``).  A contract only fires when
  the call's positional arity fits, so unrelated same-named methods
  (e.g. ``ValidationSuite.record(name, passed)``) stay out of scope —
  their arguments carry no known dimension and are never flagged.

Trace counter tracks are contracted separately: ``CounterTrack(...)``
must pass a ``unit=`` drawn from :data:`COUNTER_UNITS` and
seconds-valued ``start``/``period``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .lattice import (
    BYTES,
    BYTES_BINARY,
    BYTES_DECIMAL,
    BYTES_PER_S,
    BYTES_PER_S_DECIMAL,
    DIMENSIONLESS,
    FLOPS_PER_S,
    TIME,
    UNKNOWN,
    Dim,
)

#: :mod:`repro.units` module-level constants -> dimension (as factors).
UNITS_CONSTANTS: Dict[str, Dim] = {
    "KB": BYTES_DECIMAL,
    "MB": BYTES_DECIMAL,
    "GB": BYTES_DECIMAL,
    "TB": BYTES_DECIMAL,
    "KIB": BYTES_BINARY,
    "MIB": BYTES_BINARY,
    "GIB": BYTES_BINARY,
    "TIB": BYTES_BINARY,
    "SECOND": TIME,
    "MS": TIME,
    "US": TIME,
    "NS": TIME,
    "GBPS": BYTES_PER_S_DECIMAL,
    "MBPS": BYTES_PER_S_DECIMAL,
    # GFLOPS/TFLOPS scale both FLOP counts and FLOP/s rates; ambiguous.
    "GFLOPS": UNKNOWN,
    "TFLOPS": UNKNOWN,
    "FP16_BYTES": BYTES,
    "BF16_BYTES": BYTES,
    "FP32_BYTES": BYTES,
    "FP64_BYTES": BYTES,
    "ADAM_STATE_BYTES_FP32": BYTES,
}

#: :mod:`repro.units` helper functions -> (parameter dims, return dim).
UNITS_FUNCTIONS: Dict[str, Tuple[Tuple[Dim, ...], Dim]] = {
    "gbps": ((DIMENSIONLESS,), BYTES_PER_S_DECIMAL),
    "to_gbps": ((BYTES_PER_S,), DIMENSIONLESS),
    "tflops": ((DIMENSIONLESS,), FLOPS_PER_S),
    "to_tflops": ((FLOPS_PER_S,), DIMENSIONLESS),
    "gib": ((DIMENSIONLESS,), BYTES_BINARY),
    "to_gb": ((BYTES,), DIMENSIONLESS),
    "usec": ((DIMENSIONLESS,), TIME),
    "to_usec": ((TIME,), DIMENSIONLESS),
    "billion": ((DIMENSIONLESS,), DIMENSIONLESS),
    "to_billion": ((DIMENSIONLESS,), DIMENSIONLESS),
}

#: annotation alias name -> dimension (``def f(x: Bytes) -> Seconds``).
ANNOTATION_DIMS: Dict[str, Dim] = {
    "Bytes": BYTES,
    "Seconds": TIME,
    "BytesPerSecond": BYTES_PER_S,
    "Flops": Dim((0, 0, 1)),
    "FlopsPerSecond": FLOPS_PER_S,
    "Scalar": DIMENSIONLESS,
}

#: method-name sinks: name -> (positional param dims *after* the
#: receiver, return dim, (min_args, max_args) positional-arity window).
#: ``None`` in the param tuple means "unchecked".
SINK_CONTRACTS: Dict[str, Tuple[Tuple[Optional[Dim], ...], Dim,
                                Tuple[int, int]]] = {
    # BandwidthLedger.record / Route.record: charge bytes over [start, end]
    "record": ((TIME, TIME, BYTES), UNKNOWN, (3, 3)),
    # Engine.schedule_at(time, callback, *args)
    "schedule_at": ((TIME, None, None, None), UNKNOWN, (2, 4)),
    # Engine.timeout(delay, value=None)
    "timeout": ((TIME, None), UNKNOWN, (1, 2)),
    # FlowNetwork.transfer(route, num_bytes, ...)
    "transfer": ((None, BYTES), UNKNOWN, (2, 2)),
}

#: unit strings a ``CounterTrack(unit=...)`` may carry.
COUNTER_UNITS = frozenset({
    "bytes", "bytes/s", "s", "flops", "flops/s", "count", "fraction",
})


def annotation_dim(name: str) -> Optional[Dim]:
    """The dimension an annotation identifier denotes, or ``None``.

    Accepts the bare alias (``Bytes``) and dotted spellings rooted in
    the units module (``units.Bytes``).
    """
    return ANNOTATION_DIMS.get(name.rsplit(".", 1)[-1])
