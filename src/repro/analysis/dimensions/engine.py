"""The dimensional abstract interpreter.

:func:`analyze_tree` drives three phases over every module in scope:

1. **Collection** — parse each file once and harvest every function and
   class: parameter/return dimensions from unit annotations
   (``Bytes``/``Seconds``/... — see :mod:`~repro.analysis.dimensions.
   stubs`), annotated dataclass fields, properties, and each module's
   import map for :mod:`repro.units` names.
2. **Fixpoint inference** — functions without a declared return
   dimension get one inferred by abstract interpretation of their body
   (the join of their return expressions), iterated until no summary
   changes.  This is what makes the analysis *interprocedural*: an
   unannotated helper that returns ``num_bytes / self.bandwidth``
   carries ``s`` into every caller.
3. **Checking** — re-interpret every function body with findings
   enabled: add/sub and comparisons require equal dimensions, calls are
   checked against summaries, unit stubs, and sink contracts, returns
   against declared dimensions.

The interpreter is flow-sensitive (an environment of variable -> Dim
maps through straight-line code; branches are analyzed separately and
joined) and deliberately conservative: a finding is only emitted when
*both* sides of an operation carry a known, non-dimensionless dimension
and those dimensions disagree.  ``unknown`` and bare numeric literals
never flag — the engine's job is catching unit algebra that is provably
wrong, not demanding annotations everywhere.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from ..findings import Finding, Severity
from .lattice import DIMENSIONLESS, TIME, UNKNOWN, Dim
from .stubs import (
    ANNOTATION_DIMS,
    COUNTER_UNITS,
    SINK_CONTRACTS,
    UNITS_CONSTANTS,
    UNITS_FUNCTIONS,
)

PASS_NAME = "dim-flow"

#: packages under the source root whose arithmetic is in scope; a root
#: containing none of them (a unit-test fixture tree) is scanned whole.
DIM_PACKAGES = (
    "sim", "runtime", "collectives", "parallel", "hardware", "model",
    "telemetry", "trace", "faults",
)

#: builtins whose result carries the (joined) dimension of their args
_PASS_THROUGH_BUILTINS = frozenset({"abs", "float", "round", "int"})

#: folds whose result carries the dimension of the folded elements
_FOLD_BUILTINS = frozenset({"sum", "min", "max", "sorted"})

#: fixpoint iteration cap; summaries stabilize in 2-3 rounds in practice
_MAX_ROUNDS = 5


@dataclass
class FunctionInfo:
    """Interprocedural summary of one function definition."""

    name: str
    qualname: str
    module: str
    node: ast.FunctionDef
    is_method: bool
    is_property: bool
    param_names: List[str]
    param_dims: Dict[str, Dim]
    declared_return: Optional[Dim]
    inferred_return: Dim = UNKNOWN

    @property
    def return_dim(self) -> Dim:
        if self.declared_return is not None:
            return self.declared_return
        return self.inferred_return


@dataclass
class ModuleInfo:
    """One parsed module plus its units-import resolution map."""

    location: str
    tree: ast.Module
    #: local names bound to the :mod:`repro.units` module object
    units_aliases: List[str] = field(default_factory=list)
    #: local name -> units member name (``from ..units import GB as G``)
    units_members: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)


def _annotation_to_dim(node: Optional[ast.expr]) -> Optional[Dim]:
    """The dimension an AST annotation denotes, or ``None``.

    Understands bare aliases (``Bytes``), dotted spellings
    (``units.Bytes``), string annotations, and ``Optional[Bytes]``.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return ANNOTATION_DIMS.get(node.value.rsplit(".", 1)[-1])
    if isinstance(node, ast.Name):
        return ANNOTATION_DIMS.get(node.id)
    if isinstance(node, ast.Attribute):
        return ANNOTATION_DIMS.get(node.attr)
    if isinstance(node, ast.Subscript):
        # Optional[Bytes] / Final[Seconds]: look inside one level.
        inner = node.slice
        if isinstance(inner, ast.Index):  # pragma: no cover - py3.8 only
            inner = inner.value  # type: ignore[attr-defined]
        return _annotation_to_dim(inner)
    return None


def _decorator_names(node: ast.FunctionDef) -> List[str]:
    names = []
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, ast.Attribute):
            names.append(target.attr)
    return names


class Program:
    """Everything the interpreter knows about the scanned tree."""

    def __init__(self) -> None:
        self.modules: List[ModuleInfo] = []
        #: bare function name -> every definition carrying that name
        self.by_name: Dict[str, List[FunctionInfo]] = {}
        #: attribute name -> dimension, from annotated class fields and
        #: properties; names whose definitions disagree are dropped.
        self.attr_dims: Dict[str, Dim] = {}
        self._attr_conflicts: set = set()

    # -- collection --------------------------------------------------------
    def add_module(self, location: str, tree: ast.Module) -> None:
        info = ModuleInfo(location=location, tree=tree)
        self._collect_imports(info)
        self._collect_functions(info)
        self._collect_class_fields(info)
        self.modules.append(info)

    def _collect_imports(self, info: ModuleInfo) -> None:
        for node in ast.walk(info.tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == "units" or module.endswith(".units"):
                    for alias in node.names:
                        info.units_members[alias.asname or alias.name] = \
                            alias.name
                else:
                    for alias in node.names:
                        if alias.name == "units":
                            info.units_aliases.append(
                                alias.asname or alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "units" or alias.name.endswith(".units"):
                        info.units_aliases.append(
                            alias.asname or alias.name.split(".")[0])

    def _collect_functions(self, info: ModuleInfo) -> None:
        def visit(body: Iterable[ast.stmt], class_name: str = "") -> None:
            for node in body:
                if isinstance(node, ast.ClassDef):
                    visit(node.body, node.name)
                elif isinstance(node, ast.FunctionDef):
                    self._add_function(info, node, class_name)

        visit(info.tree.body)

    def _add_function(self, info: ModuleInfo, node: ast.FunctionDef,
                      class_name: str) -> None:
        decorators = _decorator_names(node)
        is_method = bool(class_name) and "staticmethod" not in decorators
        params = [*node.args.posonlyargs, *node.args.args]
        param_names = [p.arg for p in params]
        param_dims: Dict[str, Dim] = {}
        for param in params:
            dim = _annotation_to_dim(param.annotation)
            if dim is not None:
                param_dims[param.arg] = dim
        fn = FunctionInfo(
            name=node.name,
            qualname=f"{class_name}.{node.name}" if class_name else node.name,
            module=info.location,
            node=node,
            is_method=is_method,
            is_property="property" in decorators or "cached_property" in decorators,
            param_names=param_names,
            param_dims=param_dims,
            declared_return=_annotation_to_dim(node.returns),
        )
        info.functions.setdefault(node.name, fn)
        self.by_name.setdefault(node.name, []).append(fn)
        if fn.is_property and fn.declared_return is not None:
            self._note_attr(node.name, fn.declared_return)

    def _collect_class_fields(self, info: ModuleInfo) -> None:
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in ast.walk(node):
                if not isinstance(stmt, ast.AnnAssign):
                    continue
                dim = _annotation_to_dim(stmt.annotation)
                if dim is None:
                    continue
                # Class-level fields (dataclasses) and annotated instance
                # attributes (``self.now: Seconds = 0.0``) both count.
                if isinstance(stmt.target, ast.Name):
                    self._note_attr(stmt.target.id, dim)
                elif (isinstance(stmt.target, ast.Attribute)
                      and isinstance(stmt.target.value, ast.Name)
                      and stmt.target.value.id == "self"):
                    self._note_attr(stmt.target.attr, dim)

    def _note_attr(self, name: str, dim: Dim) -> None:
        if not dim.known or name in self._attr_conflicts:
            return
        held = self.attr_dims.get(name)
        if held is None:
            self.attr_dims[name] = dim
        elif held != dim:
            del self.attr_dims[name]
            self._attr_conflicts.add(name)

    # -- interprocedural resolution ---------------------------------------
    def resolve_call(self, info: ModuleInfo,
                     name: str) -> Optional[FunctionInfo]:
        """The summary a bare-name or method call resolves to, if unique.

        Module-local definitions win; otherwise a tree-wide unique name
        resolves, and several same-named definitions resolve only when
        their return dimensions agree (arguments are then checked
        against the first definition only if all agree on those too).
        """
        local = info.functions.get(name)
        if local is not None:
            return local
        candidates = self.by_name.get(name, [])
        if not candidates:
            return None
        if len(candidates) == 1:
            return candidates[0]
        first = candidates[0]
        if all(c.return_dim == first.return_dim
               and c.param_dims == first.param_dims
               and c.param_names == first.param_names
               and c.is_method == first.is_method
               for c in candidates[1:]):
            return first
        return None

    def infer_round(self) -> bool:
        """One fixpoint round; returns True when any summary changed."""
        changed = False
        for info in self.modules:
            for fn in info.functions.values():
                if fn.declared_return is not None:
                    continue
                interp = _Interpreter(self, info, fn, collect=False)
                inferred = interp.run()
                if inferred != fn.inferred_return:
                    fn.inferred_return = inferred
                    changed = True
                    if fn.is_property:
                        self._note_attr(fn.name, inferred)
        return changed


class _Interpreter:
    """Abstract interpretation of one function body."""

    def __init__(self, program: Program, module: ModuleInfo,
                 fn: FunctionInfo, *, collect: bool) -> None:
        self.program = program
        self.module = module
        self.fn = fn
        self.collect = collect
        self.findings: List[Finding] = []
        self.return_dim: Optional[Dim] = None

    # -- entry point -------------------------------------------------------
    def run(self) -> Dim:
        env: Dict[str, Dim] = {}
        args = self.fn.node.args
        for param in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            env[param.arg] = self.fn.param_dims.get(param.arg, UNKNOWN)
        self._exec_block(self.fn.node.body, env)
        return self.return_dim if self.return_dim is not None else UNKNOWN

    # -- findings ----------------------------------------------------------
    def _emit(self, severity: Severity, code: str, message: str,
              line: int) -> None:
        if not self.collect:
            return
        self.findings.append(Finding(
            PASS_NAME, severity, code, message,
            subject=self.fn.qualname,
            location=f"{self.module.location}:{line}",
        ))

    # -- statements --------------------------------------------------------
    def _exec_block(self, body: Iterable[ast.stmt],
                    env: Dict[str, Dim]) -> None:
        for stmt in body:
            self._exec_stmt(stmt, env)

    def _exec_stmt(self, stmt: ast.stmt, env: Dict[str, Dim]) -> None:
        if isinstance(stmt, ast.Assign):
            dim = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, dim, env, value=stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            declared = _annotation_to_dim(stmt.annotation)
            dim = (self._eval(stmt.value, env)
                   if stmt.value is not None else UNKNOWN)
            if declared is not None:
                if (stmt.value is not None and dim.known
                        and not dim.is_dimensionless
                        and not dim.compatible(declared)):
                    self._emit(
                        Severity.ERROR, "DIM001",
                        f"assigning {dim} to a variable annotated {declared}",
                        stmt.lineno,
                    )
                dim = declared
            self._bind(stmt.target, dim, env, value=stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            target_dim = self._lookup_target(stmt.target, env)
            value_dim = self._eval(stmt.value, env)
            if isinstance(stmt.op, (ast.Add, ast.Sub)):
                self._check_additive(target_dim, value_dim, stmt.lineno,
                                     verb="augmented-assigns")
                result = target_dim.join(value_dim) \
                    if target_dim.compatible(value_dim) else UNKNOWN
            elif isinstance(stmt.op, ast.Mult):
                result = target_dim.mul(value_dim)
            elif isinstance(stmt.op, (ast.Div, ast.FloorDiv)):
                result = target_dim.div(value_dim)
            else:
                result = UNKNOWN
            self._bind(stmt.target, result, env)
        elif isinstance(stmt, ast.Return):
            dim = (self._eval(stmt.value, env)
                   if stmt.value is not None else DIMENSIONLESS)
            declared = self.fn.declared_return
            if (declared is not None and stmt.value is not None
                    and dim.known and not dim.is_dimensionless
                    and not dim.compatible(declared)):
                self._emit(
                    Severity.ERROR, "DIM005",
                    f"{self.fn.qualname}() is annotated to return "
                    f"{declared} but returns {dim}",
                    stmt.lineno,
                )
            if stmt.value is not None:
                self.return_dim = (dim if self.return_dim is None
                                   else self.return_dim.join(dim))
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test, env)
            then_env = dict(env)
            else_env = dict(env)
            self._exec_block(stmt.body, then_env)
            self._exec_block(stmt.orelse, else_env)
            self._merge_into(env, then_env, else_env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind(stmt.target, self._element_dim(stmt.iter, env), env)
            self._eval(stmt.iter, env)
            body_env = dict(env)
            self._exec_block(stmt.body, body_env)
            self._exec_block(stmt.orelse, body_env)
            self._merge_into(env, body_env, env)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test, env)
            body_env = dict(env)
            self._exec_block(stmt.body, body_env)
            self._exec_block(stmt.orelse, body_env)
            self._merge_into(env, body_env, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, UNKNOWN, env)
            self._exec_block(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body, env)
            for handler in stmt.handlers:
                handler_env = dict(env)
                if handler.name:
                    handler_env[handler.name] = UNKNOWN
                self._exec_block(handler.body, handler_env)
                self._merge_into(env, handler_env, env)
            self._exec_block(stmt.orelse, env)
            self._exec_block(stmt.finalbody, env)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child, env)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            pass  # nested definitions are analyzed on their own
        # pass/break/continue/import/global/del: nothing to track

    def _merge_into(self, env: Dict[str, Dim], a: Dict[str, Dim],
                    b: Dict[str, Dim]) -> None:
        for key in set(a) | set(b):
            left = a.get(key, UNKNOWN)
            right = b.get(key, UNKNOWN)
            env[key] = left.join(right)

    def _bind(self, target: ast.expr, dim: Dim, env: Dict[str, Dim],
              value: Optional[ast.expr] = None) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = dim
        elif isinstance(target, ast.Attribute):
            path = _dotted(target)
            if path:
                env[path] = dim
        elif isinstance(target, (ast.Tuple, ast.List)):
            elements: List[Optional[ast.expr]]
            if isinstance(value, (ast.Tuple, ast.List)) and \
                    len(value.elts) == len(target.elts):
                elements = list(value.elts)
            else:
                elements = [None] * len(target.elts)
            for sub_target, sub_value in zip(target.elts, elements):
                sub_dim = self._last_eval.get(id(sub_value), UNKNOWN) \
                    if sub_value is not None else UNKNOWN
                self._bind(sub_target, sub_dim, env)

    def _lookup_target(self, target: ast.expr, env: Dict[str, Dim]) -> Dim:
        if isinstance(target, ast.Name):
            return env.get(target.id, UNKNOWN)
        if isinstance(target, ast.Attribute):
            return self._attribute_dim(target, env)
        return UNKNOWN

    def _element_dim(self, iterable: ast.expr, env: Dict[str, Dim]) -> Dim:
        """Dimension of the loop variable for ``for x in iterable``."""
        if isinstance(iterable, ast.Call) and \
                isinstance(iterable.func, ast.Name) and \
                iterable.func.id == "range":
            return DIMENSIONLESS
        return UNKNOWN

    # -- expressions -------------------------------------------------------
    #: side table so tuple-unpacking can reuse sub-expression dims
    _last_eval: Dict[int, Dim] = {}

    def _eval(self, node: Optional[ast.expr], env: Dict[str, Dim]) -> Dim:
        if node is None:
            return UNKNOWN
        dim = self._eval_inner(node, env)
        if len(self._last_eval) > 4096:
            self._last_eval.clear()
        self._last_eval[id(node)] = dim
        return dim

    def _eval_inner(self, node: ast.expr, env: Dict[str, Dim]) -> Dim:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or node.value is None or \
                    isinstance(node.value, str):
                return UNKNOWN
            if isinstance(node.value, (int, float)):
                return DIMENSIONLESS
            return UNKNOWN
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            member = self.module.units_members.get(node.id)
            if member is not None and member in UNITS_CONSTANTS:
                return UNITS_CONSTANTS[member]
            return UNKNOWN
        if isinstance(node, ast.Attribute):
            return self._attribute_dim(node, env)
        if isinstance(node, ast.BinOp):
            return self._binop_dim(node, env)
        if isinstance(node, ast.UnaryOp):
            inner = self._eval(node.operand, env)
            return inner if isinstance(node.op, (ast.USub, ast.UAdd)) \
                else UNKNOWN
        if isinstance(node, ast.Compare):
            return self._compare_dim(node, env)
        if isinstance(node, ast.Call):
            return self._call_dim(node, env)
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env)
            return self._eval(node.body, env).join(
                self._eval(node.orelse, env))
        if isinstance(node, ast.BoolOp):
            dims = [self._eval(value, env) for value in node.values]
            result = dims[0]
            for dim in dims[1:]:
                result = result.join(dim)
            return result
        if isinstance(node, (ast.Tuple, ast.List, ast.Set, ast.Dict)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child, env)
            return UNKNOWN
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            return self._comprehension_dim(node, env)
        if isinstance(node, ast.Subscript):
            self._eval(node.value, env)
            if isinstance(node.slice, ast.expr):
                self._eval(node.slice, env)
            return UNKNOWN
        if isinstance(node, ast.Starred):
            return self._eval(node.value, env)
        if isinstance(node, ast.NamedExpr):
            dim = self._eval(node.value, env)
            self._bind(node.target, dim, env)
            return dim
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self._eval(value.value, env)
            return UNKNOWN
        if isinstance(node, ast.Lambda):
            return UNKNOWN
        return UNKNOWN

    def _comprehension_dim(self, node: ast.expr,
                           env: Dict[str, Dim]) -> Dim:
        comp_env = dict(env)
        for generator in node.generators:  # type: ignore[attr-defined]
            self._eval(generator.iter, comp_env)
            self._bind(generator.target,
                       self._element_dim(generator.iter, comp_env), comp_env)
            for condition in generator.ifs:
                self._eval(condition, comp_env)
        if isinstance(node, ast.DictComp):
            self._eval(node.key, comp_env)
            self._eval(node.value, comp_env)
            return UNKNOWN
        return self._eval(node.elt, comp_env)  # type: ignore[attr-defined]

    def _attribute_dim(self, node: ast.Attribute,
                       env: Dict[str, Dim]) -> Dim:
        path = _dotted(node)
        if path and path in env:
            return env[path]
        root = path.split(".", 1)[0] if path else ""
        if root in self.module.units_aliases:
            member = path.split(".", 1)[1] if "." in path else ""
            if member in UNITS_CONSTANTS:
                return UNITS_CONSTANTS[member]
            return UNKNOWN
        self._eval_receiver(node, env)
        return self.program.attr_dims.get(node.attr, UNKNOWN)

    def _eval_receiver(self, node: ast.Attribute,
                       env: Dict[str, Dim]) -> None:
        # Evaluate the receiver expression for findings, but only when it
        # is itself compound (a bare name receiver has nothing to check).
        if not isinstance(node.value, (ast.Name, ast.Attribute)):
            self._eval(node.value, env)

    def _binop_dim(self, node: ast.BinOp, env: Dict[str, Dim]) -> Dim:
        left = self._eval(node.left, env)
        right = self._eval(node.right, env)
        if isinstance(node.op, ast.Mult):
            return left.mul(right)
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            return left.div(right)
        if isinstance(node.op, ast.Mod):
            return left
        if isinstance(node.op, ast.Pow):
            if isinstance(node.right, ast.Constant) and \
                    isinstance(node.right.value, int):
                return left.pow(node.right.value)
            return UNKNOWN
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self._check_additive(left, right, node.lineno, verb="combines")
            if left.compatible(right):
                return left.join(right) if not left.scale_conflict(right) \
                    else Dim(left.exps)
            return UNKNOWN
        return UNKNOWN

    def _check_additive(self, left: Dim, right: Dim, line: int, *,
                        verb: str) -> None:
        if not left.compatible(right):
            if left.is_dimensionless or right.is_dimensionless:
                return  # adding a literal offset: not provably wrong
            self._emit(
                Severity.ERROR, "DIM001",
                f"{verb} {left} with {right}; addition/subtraction "
                f"requires equal dimensions",
                line,
            )
        elif left.scale_conflict(right):
            self._emit(
                Severity.WARNING, "DIM003",
                f"{verb} decimal-scaled (GB) and binary-scaled (GiB) "
                f"byte quantities; these differ by 7 % per power of 1000",
                line,
            )

    def _compare_dim(self, node: ast.Compare, env: Dict[str, Dim]) -> Dim:
        operands = [node.left, *node.comparators]
        dims = [self._eval(operand, env) for operand in operands]
        for op, (left, right) in zip(node.ops, zip(dims, dims[1:])):
            if isinstance(op, (ast.In, ast.NotIn, ast.Is, ast.IsNot)):
                continue
            if not left.compatible(right):
                if left.is_dimensionless or right.is_dimensionless:
                    continue
                self._emit(
                    Severity.ERROR, "DIM002",
                    f"comparing {left} with {right}; a comparison "
                    f"requires equal dimensions",
                    node.lineno,
                )
            elif left.scale_conflict(right):
                self._emit(
                    Severity.WARNING, "DIM003",
                    "comparing decimal-scaled (GB) against binary-scaled "
                    "(GiB) byte quantities; these differ by 7 % per "
                    "power of 1000",
                    node.lineno,
                )
        return DIMENSIONLESS

    # -- calls -------------------------------------------------------------
    def _call_dim(self, node: ast.Call, env: Dict[str, Dim]) -> Dim:
        arg_dims = [self._eval(arg, env) for arg in node.args]
        kwarg_dims = {kw.arg: self._eval(kw.value, env)
                      for kw in node.keywords if kw.arg is not None}
        for kw in node.keywords:
            if kw.arg is None:
                self._eval(kw.value, env)

        func = node.func
        if isinstance(func, ast.Name):
            return self._name_call_dim(node, func.id, arg_dims, kwarg_dims)
        if isinstance(func, ast.Attribute):
            self._eval_receiver(func, env)
            return self._method_call_dim(node, func, arg_dims, kwarg_dims,
                                         env)
        self._eval(func, env)
        return UNKNOWN

    def _name_call_dim(self, node: ast.Call, name: str,
                       arg_dims: List[Dim],
                       kwarg_dims: Dict[str, Dim]) -> Dim:
        member = self.module.units_members.get(name)
        if member is not None and member in UNITS_FUNCTIONS:
            return self._check_units_fn(node, member, arg_dims)
        if name in _PASS_THROUGH_BUILTINS and len(arg_dims) == 1:
            return arg_dims[0]
        if name in _FOLD_BUILTINS and node.args:
            folded = arg_dims[0]
            for dim in arg_dims[1:]:
                folded = folded.join(dim)
            return folded
        if name == "len" or name == "range":
            return DIMENSIONLESS
        if name == "CounterTrack":
            self._check_counter_track(node, kwarg_dims)
            return UNKNOWN
        resolved = self.program.resolve_call(self.module, name)
        if resolved is not None and not resolved.is_method:
            self._check_resolved_args(node, resolved, arg_dims, kwarg_dims,
                                      offset=0)
            return resolved.return_dim
        return UNKNOWN

    def _method_call_dim(self, node: ast.Call, func: ast.Attribute,
                         arg_dims: List[Dim], kwarg_dims: Dict[str, Dim],
                         env: Dict[str, Dim]) -> Dim:
        name = func.attr
        root = _dotted(func).split(".", 1)[0]
        if root in self.module.units_aliases and name in UNITS_FUNCTIONS:
            return self._check_units_fn(node, name, arg_dims)
        contract = SINK_CONTRACTS.get(name)
        if contract is not None:
            params, return_dim, (lo, hi) = contract
            if lo <= len(node.args) <= hi:
                for index, (expected, got) in enumerate(
                        zip(params, arg_dims)):
                    if expected is None:
                        continue
                    if got.known and not got.is_dimensionless and \
                            not got.compatible(expected):
                        self._emit(
                            Severity.ERROR, "DIM006",
                            f".{name}() expects {expected} for argument "
                            f"{index + 1}, got {got}",
                            node.lineno,
                        )
                return return_dim
        resolved = self.program.resolve_call(self.module, name)
        if resolved is not None:
            offset = 1 if resolved.is_method else 0
            self._check_resolved_args(node, resolved, arg_dims, kwarg_dims,
                                      offset=offset)
            return resolved.return_dim
        return UNKNOWN

    def _check_units_fn(self, node: ast.Call, name: str,
                        arg_dims: List[Dim]) -> Dim:
        params, return_dim = UNITS_FUNCTIONS[name]
        for index, (expected, got) in enumerate(zip(params, arg_dims)):
            if got.known and not got.is_dimensionless and \
                    not got.compatible(expected):
                self._emit(
                    Severity.ERROR, "DIM004",
                    f"units.{name}() expects {expected}, got {got}",
                    node.lineno,
                )
        return return_dim

    def _check_resolved_args(self, node: ast.Call, fn: FunctionInfo,
                             arg_dims: List[Dim],
                             kwarg_dims: Dict[str, Dim],
                             offset: int) -> None:
        names = fn.param_names[offset:]
        for index, got in enumerate(arg_dims):
            if index >= len(names):
                break
            expected = fn.param_dims.get(names[index])
            if expected is None:
                continue
            if got.known and not got.is_dimensionless and \
                    not got.compatible(expected):
                self._emit(
                    Severity.ERROR, "DIM004",
                    f"{fn.qualname}() expects {expected} for "
                    f"{names[index]!r}, got {got}",
                    node.lineno,
                )
        for keyword, got in kwarg_dims.items():
            expected = fn.param_dims.get(keyword)
            if expected is None or keyword not in names:
                continue
            if got.known and not got.is_dimensionless and \
                    not got.compatible(expected):
                self._emit(
                    Severity.ERROR, "DIM004",
                    f"{fn.qualname}() expects {expected} for "
                    f"{keyword!r}, got {got}",
                    node.lineno,
                )

    def _check_counter_track(self, node: ast.Call,
                             kwarg_dims: Dict[str, Dim]) -> None:
        for kw in node.keywords:
            if kw.arg == "unit" and isinstance(kw.value, ast.Constant) \
                    and isinstance(kw.value.value, str):
                if kw.value.value not in COUNTER_UNITS:
                    self._emit(
                        Severity.ERROR, "DIM006",
                        f"CounterTrack unit {kw.value.value!r} is not in "
                        f"the counter-unit vocabulary "
                        f"{sorted(COUNTER_UNITS)}",
                        node.lineno,
                    )
            elif kw.arg in ("start", "period"):
                got = kwarg_dims.get(kw.arg, UNKNOWN)
                if got.known and not got.is_dimensionless and \
                        not got.compatible(TIME):
                    self._emit(
                        Severity.ERROR, "DIM006",
                        f"CounterTrack {kw.arg}= must be seconds, "
                        f"got {got}",
                        node.lineno,
                    )


def _dotted(node: ast.expr) -> str:
    """``a.b.c`` for an attribute chain rooted at a Name, else ''."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return ""
    parts.append(node.id)
    return ".".join(reversed(parts))


def _scan_files(root: Path) -> List[Path]:
    package_dirs = [root / name for name in DIM_PACKAGES
                    if (root / name).is_dir()]
    if package_dirs:
        files: List[Path] = []
        for directory in package_dirs:
            files.extend(directory.rglob("*.py"))
        return sorted(files)
    return sorted(root.rglob("*.py"))


class DimensionAnalyzer:
    """Builds a :class:`Program` over a tree and checks every function."""

    def __init__(self, root: Path) -> None:
        self.root = root
        self.program = Program()
        for path in _scan_files(root):
            try:
                tree = ast.parse(path.read_text(encoding="utf-8"))
            except (SyntaxError, OSError):
                continue  # SRC000 reports unparseable files
            self.program.add_module(path.relative_to(root).as_posix(), tree)

    def infer(self) -> None:
        for _ in range(_MAX_ROUNDS):
            if not self.program.infer_round():
                break

    def check(self) -> List[Finding]:
        findings: List[Finding] = []
        for module in self.program.modules:
            for fn in module.functions.values():
                interp = _Interpreter(self.program, module, fn, collect=True)
                interp.run()
                findings.extend(interp.findings)
        findings.sort(key=lambda f: (f.location, f.code, f.message))
        return findings


def analyze_tree(root: Path) -> List[Finding]:
    """Run the full dimensional analysis over every module under ``root``."""
    analyzer = DimensionAnalyzer(root)
    analyzer.infer()
    return analyzer.check()
