"""Unit-vocabulary lints: the syntactic half of the ``DIM`` namespace.

These two checks predate the flow-sensitive engine (they shipped as
``SRC001``/``SRC002`` under the unit-hygiene pass) and were folded into
the ``DIM`` namespace when it arrived, since both are unit discipline,
not general source hygiene:

* ``DIM010`` — magic unit constants (``1e9``, ``2**30``, ...) where a
  :mod:`repro.units` name exists (WARNING; ``units.py`` itself defines
  them and is exempt);
* ``DIM011`` — float ``==``/``!=`` on simulated-time expressions, which
  are accumulated floats and must be compared with tolerances (WARNING).

Unlike the abstract interpreter, these are single-node syntactic checks
and scan the *whole* package root, not just the simulation packages —
a magic ``2**30`` in a reporter is as wrong as one in the engine.
Loading a legacy baseline still works: entries naming the retired
``SRC001``/``SRC002`` codes are migrated to their ``DIM`` successors on
read (see :mod:`~repro.analysis.baseline`).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List

from ... import units
from ..findings import Finding, Severity

PASS_NAME = "dim-vocabulary"

#: Literal values with a canonical :mod:`repro.units` name.  Time
#: constants (1e-3, 1e-6, 1e-9) are deliberately absent: the same values
#: appear as comparison tolerances everywhere, which are not unit bugs.
_UNIT_NAMES = {
    units.MB: "MB (or GFLOPS/MBPS as appropriate)",
    units.GB: "GB (or GFLOPS/GBPS/billion as appropriate)",
    units.TB: "TB (or TFLOPS as appropriate)",
    float(units.MIB): "MIB",
    float(units.GIB): "GIB",
    float(units.TIB): "TIB",
}

#: Exponents of ``2**N`` expressions that spell binary units.
_POW2_UNITS = {10: "KIB", 20: "MIB", 30: "GIB", 40: "TIB"}

#: Identifier tokens (underscore-separated) that mark an expression as a
#: simulated time.  Matched per token, not as substrings, so names like
#: ``endpoint`` do not read as times.
_TIME_TOKENS = frozenset({
    "time", "times", "now", "start", "started", "end", "ended",
    "duration", "latency", "deadline", "elapsed",
})


def _is_timeish(node: ast.expr) -> bool:
    name = ""
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    tokens = name.lower().split("_")
    return any(token in _TIME_TOKENS for token in tokens)


def _unit_suggestion(node: ast.expr) -> str:
    """The units name a literal expression should use, or ''."""
    if isinstance(node, ast.Constant):
        value = node.value
        if isinstance(value, bool):
            return ""
        if isinstance(value, float) and value in _UNIT_NAMES:
            return _UNIT_NAMES[value]
        if isinstance(value, int) and float(value) in _UNIT_NAMES:
            return _UNIT_NAMES[float(value)]
    if (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Pow)
            and isinstance(node.left, ast.Constant) and node.left.value == 2
            and isinstance(node.right, ast.Constant)
            and node.right.value in _POW2_UNITS):
        return _POW2_UNITS[node.right.value]
    return ""


def _lint_module(tree: ast.Module, location: str) -> Iterator[Finding]:
    # DIM010 — magic unit constants.
    pow2_spans = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.BinOp):
            suggestion = _unit_suggestion(node)
            if suggestion:
                pow2_spans.add((node.left.lineno, node.left.col_offset))
                pow2_spans.add((node.right.lineno, node.right.col_offset))
                yield Finding(
                    PASS_NAME, Severity.WARNING, "DIM010",
                    f"magic constant 2**{node.right.value}; use "
                    f"repro.units.{suggestion}",
                    location=f"{location}:{node.lineno}",
                )
        elif isinstance(node, ast.Constant):
            if (node.lineno, node.col_offset) in pow2_spans:
                continue
            suggestion = _unit_suggestion(node)
            if suggestion:
                yield Finding(
                    PASS_NAME, Severity.WARNING, "DIM010",
                    f"magic constant {node.value!r}; use "
                    f"repro.units.{suggestion}",
                    location=f"{location}:{node.lineno}",
                )

    # DIM011 — float equality on simulated times.
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            timeish = [_is_timeish(left), _is_timeish(right)]
            if all(timeish):
                flag = True
            elif any(timeish):
                other = right if timeish[0] else left
                flag = (isinstance(other, ast.Constant)
                        and isinstance(other.value, float)
                        and other.value != 0.0)
            else:
                flag = False
            if flag:
                yield Finding(
                    PASS_NAME, Severity.WARNING, "DIM011",
                    "exact float comparison on a simulated time; compare "
                    "with a tolerance instead",
                    location=f"{location}:{node.lineno}",
                )


def lint_vocabulary_tree(root: Path) -> List[Finding]:
    """Run the vocabulary lints over every ``.py`` file under ``root``.

    Unparseable files are skipped here; the unit-hygiene pass already
    reports them as ``SRC000``.
    """
    findings: List[Finding] = []
    for path in sorted(root.rglob("*.py")):
        if path.name == "units.py":
            continue
        location = path.relative_to(root).as_posix()
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError:
            continue
        findings.extend(_lint_module(tree, location))
    return findings
