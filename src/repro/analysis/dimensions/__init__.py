"""Interprocedural dimensional analysis (``DIM0xx``) over the simulator.

Every headline number this reproduction emits is a byte count, a
duration, or a bandwidth, so a silent unit slip (GB vs GiB, ms vs s,
bytes vs bytes/s) corrupts a figure without failing a test.  This
package is a flow-sensitive abstract interpreter over the stdlib
:mod:`ast` that assigns a *dimension* — ``bytes``, ``s``, ``bytes/s``,
``flops``, ``flops/s``, ``dimensionless``, or ``unknown`` — to every
expression and propagates it through assignments, arithmetic, calls,
and returns:

* multiplication/division compose dimensions (``bytes / s = bytes/s``);
* addition/subtraction/comparison require *equal* dimensions;
* calls check arguments against unit-annotated signatures and known
  sink contracts (ledger charges, event durations, counter tracks).

The lattice is seeded from three places:

* the stub registry for :mod:`repro.units` (``GB``/``GIB``/``MS``
  constants, ``gbps``/``to_gbps``-style converters) —
  :mod:`~repro.analysis.dimensions.stubs`;
* lightweight unit annotations (``Bytes``, ``Seconds``, ...) on hot
  signatures across :mod:`repro.sim`, :mod:`repro.model`,
  :mod:`repro.hardware`, and :mod:`repro.collectives`;
* inferred return dimensions, computed to a fixpoint so unannotated
  helpers still carry dimensions across call boundaries.

Findings are ``DIM0xx`` codes under the ``dims`` pass family, run by
``repro analyze --dims`` (see :mod:`~repro.analysis.dimensions.passes`
for the catalog).
"""

from .lattice import (
    BYTES,
    BYTES_PER_S,
    DIMENSIONLESS,
    FLOPS,
    FLOPS_PER_S,
    TIME,
    UNKNOWN,
    Dim,
)
from .engine import DimensionAnalyzer, analyze_tree
from .stubs import (
    ANNOTATION_DIMS,
    COUNTER_UNITS,
    SINK_CONTRACTS,
    UNITS_CONSTANTS,
    UNITS_FUNCTIONS,
    annotation_dim,
)
from . import passes as _passes  # noqa: F401  (registers the DIM passes)

__all__ = [
    "ANNOTATION_DIMS",
    "BYTES",
    "BYTES_PER_S",
    "COUNTER_UNITS",
    "DIMENSIONLESS",
    "Dim",
    "DimensionAnalyzer",
    "FLOPS",
    "FLOPS_PER_S",
    "SINK_CONTRACTS",
    "TIME",
    "UNITS_CONSTANTS",
    "UNITS_FUNCTIONS",
    "UNKNOWN",
    "analyze_tree",
    "annotation_dim",
]
