"""The registered ``dims``-family passes and the ``DIM0xx`` catalog.

============  ========  ====================================================
code          severity  meaning
============  ========  ====================================================
``DIM001``    ERROR     addition/subtraction of incompatible dimensions
                        (``ms`` added to ``s``-canonical time, bytes plus
                        bytes/s, ...)
``DIM002``    ERROR     comparison of incompatible dimensions
``DIM003``    WARNING   decimal-scaled (GB) and binary-scaled (GiB) byte
                        quantities mixed additively or compared
``DIM004``    ERROR     argument dimension contradicts the callee's unit
                        annotation or units-helper stub
``DIM005``    ERROR     returned dimension contradicts the function's
                        declared return annotation
``DIM006``    ERROR     sink-contract violation: ledger charges, event
                        durations, counter-track units/periods
``DIM010``    WARNING   magic unit constant with a ``repro.units`` name
                        (formerly ``SRC001``)
``DIM011``    WARNING   float ``==`` on a simulated time (formerly
                        ``SRC002``)
============  ========  ====================================================

Both passes scan a source tree (``ctx.source_root``), not a cluster, and
are expensive (full-tree parse + fixpoint), so they are ``cheap=False``
and run only from ``repro analyze --dims`` and the CI sanitize matrix.
"""

from __future__ import annotations

from typing import Iterator

from ..context import AnalysisContext
from ..findings import Finding
from ..registry import register_pass
from ..source_lints import DEFAULT_SOURCE_ROOT
from .engine import analyze_tree
from .vocabulary import lint_vocabulary_tree

#: codes the abstract interpreter may emit
FLOW_CODES = ("DIM001", "DIM002", "DIM003", "DIM004", "DIM005", "DIM006")

#: codes the syntactic vocabulary lints may emit
VOCABULARY_CODES = ("DIM010", "DIM011")


@register_pass(
    "dim-flow", family="dims", cheap=False,
    description="flow-sensitive dimensional analysis: unit algebra in "
                "arithmetic, calls, returns, and sink contracts",
    codes=FLOW_CODES,
)
def dim_flow(ctx: AnalysisContext) -> Iterator[Finding]:
    root = (ctx.source_root if ctx.source_root is not None
            else DEFAULT_SOURCE_ROOT)
    yield from analyze_tree(root)


@register_pass(
    "dim-vocabulary", family="dims", cheap=False,
    description="units vocabulary used for magic constants; no float== "
                "on simulated times",
    codes=VOCABULARY_CODES,
)
def dim_vocabulary(ctx: AnalysisContext) -> Iterator[Finding]:
    root = (ctx.source_root if ctx.source_root is not None
            else DEFAULT_SOURCE_ROOT)
    yield from lint_vocabulary_tree(root)
