"""The dimension lattice: values the abstract interpreter computes with.

A :class:`Dim` is a vector of integer exponents over the simulator's
three base dimensions — ``bytes``, ``s`` (seconds), ``flops`` — plus a
*byte-scale flavor* distinguishing decimal (``GB``) from binary
(``GiB``) byte quantities, which are dimensionally identical but differ
by 7 % (the classic silent-corruption bug in bandwidth math).

The lattice ordering is flat: every concrete dimension sits below
``UNKNOWN`` (top).  :meth:`Dim.join` is the control-flow merge — equal
dimensions stay, anything else widens to ``UNKNOWN`` (a merge is never
itself an error; only *using* incompatible dimensions together is).

Arithmetic:

* :meth:`Dim.mul` / :meth:`Dim.div` add/subtract exponent vectors
  (``bytes / s = bytes/s``); conflicting byte-scale flavors cancel to
  unmarked, because multiplying by a conversion constant (``x * GB /
  GIB``) is a legitimate rescale;
* addition/subtraction/comparison do not combine dimensions — callers
  check :meth:`Dim.compatible` (equal exponents) and
  :meth:`Dim.scale_conflict` (decimal GB meets binary GiB) instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

#: byte-scale flavors; "" means unmarked (no provenance known)
DECIMAL = "decimal"
BINARY = "binary"

#: base-dimension display names, in exponent-vector order
_BASES = ("bytes", "s", "flops")


@dataclass(frozen=True)
class Dim:
    """One point in the dimension lattice.

    ``exps`` holds the integer exponents of (bytes, seconds, flops);
    ``known=False`` is the lattice top (``UNKNOWN``), whose ``exps`` are
    meaningless.  ``scale`` tags byte-carrying dimensions with their
    decimal/binary provenance ("" when unmarked or irrelevant).
    """

    exps: Tuple[int, int, int] = (0, 0, 0)
    known: bool = True
    scale: str = field(default="", compare=False)

    # -- constructors-by-arithmetic ---------------------------------------
    def mul(self, other: "Dim") -> "Dim":
        if not (self.known and other.known):
            return UNKNOWN
        exps = tuple(a + b for a, b in zip(self.exps, other.exps))
        return Dim(exps, scale=_combine_scale(self, other, exps))  # type: ignore[arg-type]

    def div(self, other: "Dim") -> "Dim":
        if not (self.known and other.known):
            return UNKNOWN
        exps = tuple(a - b for a, b in zip(self.exps, other.exps))
        return Dim(exps, scale=_combine_scale(self, other, exps))  # type: ignore[arg-type]

    def pow(self, exponent: int) -> "Dim":
        if not self.known:
            return UNKNOWN
        exps = tuple(a * exponent for a in self.exps)
        scale = self.scale if exps[0] != 0 else ""
        return Dim(exps, scale=scale)  # type: ignore[arg-type]

    # -- lattice operations ------------------------------------------------
    def join(self, other: "Dim") -> "Dim":
        """Control-flow merge: equal stays, different widens to UNKNOWN."""
        if not (self.known and other.known):
            return UNKNOWN
        if self.exps != other.exps:
            return UNKNOWN
        if self.scale and other.scale and self.scale != other.scale:
            return Dim(self.exps)
        return Dim(self.exps, scale=self.scale or other.scale)

    def compatible(self, other: "Dim") -> bool:
        """True unless *both* are known with different exponent vectors."""
        if not (self.known and other.known):
            return True
        return self.exps == other.exps

    def scale_conflict(self, other: "Dim") -> bool:
        """Both byte-carrying, one decimal-scaled and one binary-scaled."""
        if not (self.known and other.known):
            return False
        if self.exps != other.exps or self.exps[0] == 0:
            return False
        return bool(self.scale and other.scale and self.scale != other.scale)

    @property
    def is_dimensionless(self) -> bool:
        return self.known and self.exps == (0, 0, 0)

    def __str__(self) -> str:
        if not self.known:
            return "unknown"
        if self.is_dimensionless:
            return "dimensionless"
        num = [_power(name, e) for name, e in zip(_BASES, self.exps) if e > 0]
        den = [_power(name, -e) for name, e in zip(_BASES, self.exps) if e < 0]
        head = "*".join(num) if num else "1"
        if den:
            head += "/" + "*".join(den)
        if self.scale and self.exps[0] != 0:
            head += f" ({self.scale})"
        return head


def _power(name: str, exponent: int) -> str:
    return name if exponent == 1 else f"{name}^{exponent}"


def _combine_scale(a: Dim, b: Dim, exps: Tuple[int, ...]) -> str:
    """Flavor of a product/quotient: kept when unambiguous, else dropped."""
    if exps[0] == 0:
        return ""
    scales = {d.scale for d in (a, b) if d.scale}
    return scales.pop() if len(scales) == 1 else ""


UNKNOWN = Dim(known=False)
DIMENSIONLESS = Dim((0, 0, 0))
BYTES = Dim((1, 0, 0))
TIME = Dim((0, 1, 0))
BYTES_PER_S = Dim((1, -1, 0))
FLOPS = Dim((0, 0, 1))
FLOPS_PER_S = Dim((0, -1, 1))

#: flavored byte dimensions for the stub registry
BYTES_DECIMAL = Dim((1, 0, 0), scale=DECIMAL)
BYTES_BINARY = Dim((1, 0, 0), scale=BINARY)
BYTES_PER_S_DECIMAL = Dim((1, -1, 0), scale=DECIMAL)


def parse_dim(name: str) -> Optional[Dim]:
    """The dimension a short display name denotes, or ``None``.

    Accepts the canonical names used in finding messages and the
    baseline: ``bytes``, ``s``, ``bytes/s``, ``flops``, ``flops/s``,
    ``dimensionless``, ``unknown``.
    """
    table = {
        "bytes": BYTES,
        "s": TIME,
        "seconds": TIME,
        "bytes/s": BYTES_PER_S,
        "flops": FLOPS,
        "flops/s": FLOPS_PER_S,
        "dimensionless": DIMENSIONLESS,
        "unknown": UNKNOWN,
    }
    return table.get(name)
