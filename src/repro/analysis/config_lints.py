"""Config/strategy lints: vet a Strategy x Cluster pairing statically.

Every reproduction bug the paper's numbers are sensitive to — a parallel
degree that does not divide the GPU count, a ZeRO partition that does not
sum back to the full 16 B/parameter state, an offload target the stage
cannot legally use, a model that simply does not fit — is detectable from
the memory plan and the degrees alone, before any DES event fires.

Codes: ``CFG0xx`` degrees, ``CFG01x`` partition accounting, ``CFG02x``
offload placement, ``CFG03x`` capacity, ``CFG04x`` pipeline batching.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from .. import calibration
from ..errors import CapabilityError, ReproError
from ..model.states import (
    GRAD_BYTES,
    OPTIM_BYTES,
    PARAM_BYTES,
    TOTAL_STATE_BYTES,
    OffloadTarget,
    validate_offload,
)
from ..parallel.ddp import DdpStrategy
from ..parallel.hybrid import HybridTpZeroStrategy
from ..parallel.megatron import MegatronStrategy
from ..parallel.pipeline import PipelineParallelStrategy
from ..parallel.placement import DEFAULT_PLACEMENT
from ..parallel.zero import ZeroStrategy
from ..units import to_gb
from .context import AnalysisContext
from .findings import Finding, Severity
from .registry import register_pass

#: Relative tolerance for byte-accounting comparisons (plans are floats).
_REL_TOL = 1e-6


def _mismatch(actual: float, expected: float) -> bool:
    return abs(actual - expected) > _REL_TOL * max(abs(expected), 1.0)


# ---------------------------------------------------------------------------
# world-size divisibility
# ---------------------------------------------------------------------------

@register_pass(
    "parallel-degrees", family="config",
    description="DP/TP/PP degrees must divide (and cover) the world size",
    codes=("CFG001", "CFG002", "CFG003", "CFG004", "CFG005"),
)
def parallel_degrees(ctx: AnalysisContext) -> Iterator[Finding]:
    world = ctx.world_size
    tp, pp = ctx.tensor_parallel, ctx.pipeline_parallel
    if tp is not None and (tp < 1 or world % tp != 0):
        yield Finding(
            "parallel-degrees", Severity.ERROR, "CFG002",
            f"tensor-parallel degree {tp} does not divide the world size "
            f"{world}", subject=f"tp={tp}",
        )
    if pp is not None and (pp < 1 or world % pp != 0):
        yield Finding(
            "parallel-degrees", Severity.ERROR, "CFG003",
            f"pipeline-parallel degree {pp} does not divide the world size "
            f"{world}", subject=f"pp={pp}",
        )
    if (tp and pp and tp >= 1 and pp >= 1
            and world % tp == 0 and world % pp == 0
            and world % (tp * pp) != 0):
        yield Finding(
            "parallel-degrees", Severity.ERROR, "CFG004",
            f"tp x pp = {tp * pp} does not divide the world size {world}",
            subject=f"tp={tp},pp={pp}",
        )
    if ctx.strategy is None or ctx.model is None:
        return
    sctx = ctx.strategy_context()
    dp, mp = ctx.strategy.parallel_degrees(sctx)
    if dp * mp != world:
        yield Finding(
            "parallel-degrees", Severity.ERROR, "CFG001",
            f"strategy {ctx.strategy.name!r}: dp ({dp}) x mp ({mp}) does "
            f"not equal the world size ({world})",
            subject=ctx.strategy.name,
        )
    if isinstance(ctx.strategy, PipelineParallelStrategy):
        if world < 2:
            yield Finding(
                "parallel-degrees", Severity.ERROR, "CFG005",
                "pipeline parallelism needs at least 2 GPUs",
                subject=ctx.strategy.name,
            )
        elif ctx.model.num_layers < world:
            yield Finding(
                "parallel-degrees", Severity.ERROR, "CFG005",
                f"{ctx.model.num_layers} layers cannot fill {world} "
                f"pipeline stages", subject=ctx.strategy.name,
            )


# ---------------------------------------------------------------------------
# ZeRO partition byte-accounting
# ---------------------------------------------------------------------------

def _tier_bytes(plan, label: str) -> float:
    """A label's bytes across GPU + DRAM + NVMe, media slack removed."""
    return (
        plan.gpu.get(label, 0.0)
        + plan.cpu.get(label, 0.0)
        + plan.nvme.get(label, 0.0) / calibration.NVME_MEDIA_OVERPROVISION
    )


@register_pass(
    "zero-partition-accounting", family="config",
    description="partitioned model states must sum back to 16 B/parameter",
    codes=("CFG010", "CFG011", "CFG012", "CFG013", "CFG019"),
)
def zero_partition_accounting(ctx: AnalysisContext) -> Iterator[Finding]:
    strategy = ctx.strategy
    if strategy is None or ctx.model is None:
        return
    sctx = ctx.strategy_context()
    plan = strategy.memory_plan(sctx)
    params = sctx.total_params

    checks: List[Tuple[str, float, float, str]] = []
    if isinstance(strategy, ZeroStrategy):
        dp = strategy.data_parallel_degree(sctx)
        stage = strategy.stage
        checks.append((
            "optimizer_states", _tier_bytes(plan, "optimizer_states"),
            OPTIM_BYTES * params / dp, "CFG010",
        ))
        checks.append((
            "parameters", _tier_bytes(plan, "parameters"),
            PARAM_BYTES * params
            / (dp if stage.partitions_parameters else 1), "CFG011",
        ))
        if strategy.optimizer_target is OffloadTarget.NONE:
            # Offloaded gradients follow the documented calibration
            # exceptions (fp32 host copies, stage-1 drain backlog), so
            # only GPU-resident runs have an exact expectation.
            checks.append((
                "gradients", _tier_bytes(plan, "gradients"),
                GRAD_BYTES * params
                / (dp if stage.partitions_gradients else 1), "CFG012",
            ))
    elif isinstance(strategy, HybridTpZeroStrategy):
        dp, mp = strategy.parallel_degrees(sctx)
        shard = params / mp
        stage = strategy.zero_stage
        checks.append((
            "parameters", plan.gpu.get("parameters", 0.0),
            PARAM_BYTES * shard, "CFG011",
        ))
        checks.append((
            "gradients", plan.gpu.get("gradients", 0.0),
            GRAD_BYTES * shard
            / (dp if stage.partitions_gradients else 1), "CFG012",
        ))
        checks.append((
            "optimizer_states", plan.gpu.get("optimizer_states", 0.0),
            OPTIM_BYTES * shard
            / (dp if stage.partitions_optimizer else 1), "CFG010",
        ))
    elif isinstance(strategy, (DdpStrategy, MegatronStrategy,
                               PipelineParallelStrategy)):
        mp = strategy.model_parallel_degree(sctx)
        total = sum(
            plan.gpu.get(label, 0.0)
            for label in ("parameters", "gradients", "optimizer_states")
        )
        checks.append((
            "model states", total, TOTAL_STATE_BYTES * params / mp, "CFG013",
        ))
    else:
        yield Finding(
            "zero-partition-accounting", Severity.INFO, "CFG019",
            f"no partition-accounting model for strategy "
            f"{strategy.name!r}; skipping", subject=strategy.name,
        )
        return

    for component, actual, expected, code in checks:
        if _mismatch(actual, expected):
            yield Finding(
                "zero-partition-accounting", Severity.ERROR, code,
                f"strategy {strategy.name!r}: {component} account for "
                f"{to_gb(actual):.3f} GB/rank but the partition arithmetic "
                f"expects {to_gb(expected):.3f} GB/rank",
                subject=strategy.name,
            )


# ---------------------------------------------------------------------------
# offload / Infinity placement legality
# ---------------------------------------------------------------------------

@register_pass(
    "offload-placement", family="config",
    description="offload targets legal for the stage; NVMe wiring present",
    codes=("CFG020", "CFG021"),
)
def offload_placement(ctx: AnalysisContext) -> Iterator[Finding]:
    strategy = ctx.strategy
    if not isinstance(strategy, ZeroStrategy) or ctx.model is None:
        return
    try:
        validate_offload(
            strategy.stage,
            optimizer_target=strategy.optimizer_target,
            parameter_target=strategy.parameter_target,
        )
    except CapabilityError as error:
        yield Finding(
            "offload-placement", Severity.ERROR, "CFG020", str(error),
            subject=strategy.name,
        )
        return
    sctx = ctx.strategy_context()
    plan = strategy.memory_plan(sctx)
    if not plan.nvme:
        return
    placement = ctx.placement if ctx.placement is not None else DEFAULT_PLACEMENT
    for node in ctx.require_cluster().nodes:
        have = len(node.scratch_drives)
        if have < placement.num_scratch_drives:
            yield Finding(
                "offload-placement", Severity.ERROR, "CFG021",
                f"strategy {strategy.name!r} plans NVMe residency via "
                f"placement {placement.key!r} ({placement.num_scratch_drives} "
                f"scratch drives) but {node.name} has only {have}; build "
                f"the cluster from the placement's node_spec()",
                subject=node.name,
            )


# ---------------------------------------------------------------------------
# static memory capacity (expensive twin of the runtime OOM signal)
# ---------------------------------------------------------------------------

@register_pass(
    "memory-capacity", family="config", cheap=False,
    description="predict pool/pinned/NVMe over-capacity without allocating",
    codes=("CFG030", "CFG031", "CFG032", "CFG033", "CFG034"),
)
def memory_capacity(ctx: AnalysisContext) -> Iterator[Finding]:
    """Replicates :func:`repro.core.runner.apply_memory_plan` arithmetic.

    Not a *cheap* pass: the max-model-size search relies on the runtime
    :class:`~repro.errors.OutOfMemoryError` for its backoff, so this pass
    must never run from the pre-run hook — only from ``repro analyze``.
    """
    strategy = ctx.strategy
    if strategy is None or ctx.model is None:
        return
    sctx = ctx.strategy_context()
    plan = strategy.memory_plan(sctx)
    cluster = ctx.require_cluster()

    pinned_labels = calibration.PINNED_LABELS
    gpu_use: Dict[str, float] = {}
    dram_use: Dict[str, float] = {}
    pinned_use: Dict[str, float] = {}
    for rank in range(cluster.num_gpus):
        gpu = cluster.gpu(rank)
        gpu_use[gpu.name] = gpu_use.get(gpu.name, 0.0) + plan.gpu_total
        dram = cluster.dram_for_rank(rank)
        dram_use[dram.name] = dram_use.get(dram.name, 0.0) + plan.cpu_total
        pinned_use[dram.name] = pinned_use.get(dram.name, 0.0) + sum(
            num_bytes for label, num_bytes in plan.cpu.items()
            if label in pinned_labels
        )

    for rank in range(cluster.num_gpus):
        gpu = cluster.gpu(rank)
        used = gpu_use[gpu.name]
        cap = gpu.memory.capacity_bytes if gpu.memory else 0.0
        if used > cap + 1e-6:
            yield Finding(
                "memory-capacity", Severity.ERROR, "CFG030",
                f"{gpu.name}: plan needs {to_gb(used):.1f} GB of HBM but "
                f"the GPU has {to_gb(cap):.1f} GB", subject=gpu.name,
            )
    for name, used in dram_use.items():
        pool = cluster.topology.device(name).memory
        cap = pool.capacity_bytes if pool else 0.0
        if used > cap + 1e-6:
            yield Finding(
                "memory-capacity", Severity.ERROR, "CFG031",
                f"{name}: plan needs {to_gb(used):.1f} GB of DRAM but the "
                f"socket has {to_gb(cap):.1f} GB", subject=name,
            )
        ceiling = cap * calibration.PINNED_MEMORY_FRACTION
        pinned = pinned_use.get(name, 0.0)
        if pinned > ceiling + 1e-6:
            yield Finding(
                "memory-capacity", Severity.ERROR, "CFG032",
                f"{name}: pinned allocations ({to_gb(pinned):.1f} GB) "
                f"exceed the page-locked ceiling ({to_gb(ceiling):.1f} GB)",
                subject=name,
            )

    if not plan.nvme:
        return
    placement = ctx.placement if ctx.placement is not None else DEFAULT_PLACEMENT
    try:
        volumes = placement.build_volumes(cluster)
    except ReproError as error:
        yield Finding(
            "memory-capacity", Severity.ERROR, "CFG033",
            f"cannot build swap volumes for placement "
            f"{placement.key!r}: {error}", subject=placement.key,
        )
        return
    drive_use: Dict[str, float] = {}
    drive_cap: Dict[str, float] = {}
    for volume in volumes.values():
        for drive in volume.drives:
            drive_cap[drive.name] = drive.memory.capacity_bytes
    for rank in range(cluster.num_gpus):
        volume = volumes.get(rank)
        if volume is None:
            yield Finding(
                "memory-capacity", Severity.ERROR, "CFG033",
                f"rank {rank} plans NVMe residency but placement "
                f"{placement.key!r} maps it to no volume",
                subject=f"rank{rank}",
            )
            continue
        per_drive = plan.nvme_total / len(volume.drives)
        for drive in volume.drives:
            drive_use[drive.name] = drive_use.get(drive.name, 0.0) + per_drive
    for name, used in drive_use.items():
        cap = drive_cap[name]
        if used > cap + 1e-6:
            yield Finding(
                "memory-capacity", Severity.ERROR, "CFG034",
                f"{name}: swap plan needs {to_gb(used):.1f} GB but the "
                f"drive holds {to_gb(cap):.1f} GB", subject=name,
            )


# ---------------------------------------------------------------------------
# pipeline batching divisibility
# ---------------------------------------------------------------------------

def _pipeline_shape(ctx: AnalysisContext) -> Optional[Tuple[int, int]]:
    """(stages, micro_batches) for pipeline-scheduled runs, else None."""
    if isinstance(ctx.strategy, PipelineParallelStrategy) and ctx.model:
        sctx = ctx.strategy_context()
        return ctx.world_size, ctx.strategy.micro_batches(sctx)
    if isinstance(ctx.strategy, MegatronStrategy):
        # Fig. 5: one forward/backward micro-batch pair per MP rank.
        return ctx.world_size, ctx.world_size
    if ctx.pipeline_parallel and ctx.pipeline_parallel > 1:
        return ctx.pipeline_parallel, 2 * ctx.pipeline_parallel
    return None


@register_pass(
    "pipeline-divisibility", family="config",
    description="batch/micro-batch divisibility for pipeline schedules",
    codes=("CFG040", "CFG041", "CFG042"),
)
def pipeline_divisibility(ctx: AnalysisContext) -> Iterator[Finding]:
    shape = _pipeline_shape(ctx)
    if shape is None or ctx.model is None or ctx.training is None:
        return
    stages, micro_batches = shape
    subject = ctx.strategy.name if ctx.strategy else f"pp={stages}"
    if micro_batches < stages:
        yield Finding(
            "pipeline-divisibility", Severity.WARNING, "CFG041",
            f"{micro_batches} micro-batches cannot keep {stages} pipeline "
            f"stages busy; the bubble dominates", subject=subject,
        )
    global_batch = ctx.training.micro_batch_per_gpu * ctx.world_size
    if global_batch % micro_batches != 0:
        yield Finding(
            "pipeline-divisibility", Severity.ERROR, "CFG042",
            f"global batch of {global_batch} sequences does not divide "
            f"into {micro_batches} micro-batches", subject=subject,
        )
    if ctx.model.num_layers % stages != 0:
        yield Finding(
            "pipeline-divisibility", Severity.WARNING, "CFG040",
            f"{ctx.model.num_layers} layers split unevenly over {stages} "
            f"stages; early stages carry the remainder", subject=subject,
        )
