"""Render an analysis :class:`~repro.analysis.findings.Report`.

Two formats: a human-oriented text listing (findings grouped by severity,
worst first) and a machine-oriented JSON document (the structured report
``repro analyze`` emits with ``--json`` for CI consumption).
"""

from __future__ import annotations

import json
from typing import List

from .findings import Finding, Report, Severity


def _format_finding(finding: Finding) -> str:
    parts = [f"{str(finding.severity).upper():7s} {finding.code}"
             f" [{finding.pass_name}] {finding.message}"]
    if finding.subject:
        parts.append(f"({finding.subject})")
    if finding.location:
        parts.append(f"at {finding.location}")
    return " ".join(parts)


def render_text(report: Report) -> str:
    lines: List[str] = []
    for severity in (Severity.ERROR, Severity.WARNING, Severity.INFO):
        for finding in report.of_severity(severity):
            lines.append(_format_finding(finding))
    if lines:
        lines.append("")
    lines.append(report.summary())
    return "\n".join(lines)


def render_json(report: Report) -> str:
    return json.dumps(report.to_dict(), indent=2)
