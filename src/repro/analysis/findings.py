"""Shared result model for every static-analysis pass.

A pass emits :class:`Finding` objects; a run of passes collects them into
a :class:`Report`.  Severities follow the usual linter convention:

* ``INFO`` — context worth surfacing, never actionable on its own;
* ``WARNING`` — suspicious but possibly intentional (e.g. a bandwidth far
  from the Table III presets on a custom cluster);
* ``ERROR`` — the configuration/topology/source is wrong; ``repro
  analyze`` exits non-zero and the pre-run hook refuses to simulate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..errors import ConfigurationError


class Severity(enum.IntEnum):
    """How bad a finding is; ordering is by badness."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by one pass.

    ``code`` is a short stable identifier (``CFG001``-style) so reports can
    be filtered and suppressions expressed; ``subject`` names the thing the
    finding is about (a strategy, a link, a process); ``location`` is a
    ``file:line`` anchor for source-level findings.
    """

    pass_name: str
    severity: Severity
    code: str
    message: str
    subject: str = ""
    location: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "pass": self.pass_name,
            "severity": str(self.severity),
            "code": self.code,
            "message": self.message,
            "subject": self.subject,
            "location": self.location,
        }


@dataclass
class Report:
    """All findings from one analysis run."""

    findings: List[Finding] = field(default_factory=list)
    #: passes that ran, whether or not they found anything
    passes_run: List[str] = field(default_factory=list)

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def of_severity(self, severity: Severity) -> List[Finding]:
        return [f for f in self.findings if f.severity is severity]

    @property
    def errors(self) -> List[Finding]:
        return self.of_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Finding]:
        return self.of_severity(Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True when no error-severity findings exist."""
        return not self.errors

    @property
    def exit_code(self) -> int:
        """Process exit status for CLI use: 1 on errors, 0 otherwise."""
        return self.exit_code_at(Severity.ERROR)

    def exit_code_at(self, threshold: Severity) -> int:
        """Exit status failing at ``threshold`` or worse.

        ``repro analyze --fail-on warning`` maps to
        ``exit_code_at(Severity.WARNING)``: warnings then fail the run
        too, the strict-CI posture.
        """
        if not self.findings:
            return 0
        worst = max(f.severity for f in self.findings)
        return 1 if worst >= threshold else 0

    def summary(self) -> str:
        return (
            f"{len(self.passes_run)} passes, "
            f"{len(self.errors)} errors, {len(self.warnings)} warnings, "
            f"{len(self.of_severity(Severity.INFO))} notes"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "passes_run": list(self.passes_run),
            "findings": [f.to_dict() for f in self.findings],
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "ok": self.ok,
        }

    def raise_on_error(self, prefix: Optional[str] = None) -> None:
        """Raise :class:`ConfigurationError` when error findings exist."""
        if self.ok:
            return
        header = prefix or "static analysis failed"
        details = "; ".join(
            f"[{f.code}] {f.message}" for f in self.errors
        )
        raise ConfigurationError(f"{header}: {details}")
