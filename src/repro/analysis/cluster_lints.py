"""Scheduler-determinism lints over the cluster service (``CLU0xx``).

The cluster service's whole value proposition is that a scenario is a
pure function of its spec: same arrival seed and policy, same
:class:`~repro.cluster.report.ClusterReport`, field for field.  The
generic ``DET0xx`` passes already cover the :mod:`repro.cluster` package
(it is listed in :data:`~repro.analysis.determinism.det_lints.
SIM_PACKAGES`), but scheduler code deserves stricter treatment: where
``DET010`` only flags *unseeded module-level* RNG use and ``DET011``
warns, anything in the scheduling path that consults the wall clock or
the process-global RNG stream breaks replayability outright.  Hence the
dedicated block:

* ``CLU001`` — scheduler code reads the wall clock (ERROR): time in the
  service is :attr:`Engine.now <repro.sim.engine.Engine.now>` and
  nothing else, including in "harmless" logging or tiebreaks;
* ``CLU002`` — scheduler code draws from the process-global
  :mod:`random` stream or builds an unseeded :class:`random.Random`
  (ERROR, regardless of any ``random.seed`` call elsewhere in the
  file: arrivals must thread explicit seeds).

Scope is the ``cluster`` package under the source root; a tree with no
``cluster`` directory (a unit-test fixture) is scanned wholesale, same
convention as :func:`~repro.analysis.determinism.det_lints._sim_files`.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Tuple

from .context import AnalysisContext
from .determinism.det_lints import _RANDOM_FNS, _WALL_CLOCK, _dotted
from .findings import Finding, Severity
from .registry import register_pass
from .source_lints import DEFAULT_SOURCE_ROOT


def _cluster_files(root: Path) -> List[Path]:
    package = root / "cluster"
    if package.is_dir():
        return sorted(package.rglob("*.py"))
    return sorted(root.rglob("*.py"))


def _cluster_modules(ctx: AnalysisContext
                     ) -> Iterator[Tuple[ast.Module, str]]:
    root = (ctx.source_root if ctx.source_root is not None
            else DEFAULT_SOURCE_ROOT)
    for path in _cluster_files(root):
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except (OSError, SyntaxError):
            continue  # unit hygiene (SRC000) reports unparseable files
        yield tree, path.relative_to(root).as_posix()


@register_pass(
    "clu-scheduler-determinism", family="source", cheap=False,
    description="cluster scheduler code knows only Engine.now and "
                "explicitly seeded RNG streams",
    codes=("CLU001", "CLU002"),
)
def clu_scheduler_determinism(ctx: AnalysisContext) -> Iterator[Finding]:
    for tree, location in _cluster_modules(ctx):
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted in _WALL_CLOCK:
                yield Finding(
                    "clu-scheduler-determinism", Severity.ERROR, "CLU001",
                    f"{dotted}() reads the wall clock in scheduler code; "
                    f"scheduling decisions must depend only on Engine.now",
                    location=f"{location}:{node.lineno}",
                )
            elif (dotted.startswith("random.")
                    and dotted[len("random."):] in _RANDOM_FNS):
                yield Finding(
                    "clu-scheduler-determinism", Severity.ERROR, "CLU002",
                    f"{dotted}() draws from the process-global RNG in "
                    f"scheduler code; thread a seeded random.Random "
                    f"through the scenario instead",
                    location=f"{location}:{node.lineno}",
                )
            elif dotted in ("random.Random", "Random") and not node.args:
                yield Finding(
                    "clu-scheduler-determinism", Severity.ERROR, "CLU002",
                    "random.Random() without a seed in scheduler code; "
                    "arrival and tie seeds must come from the scenario",
                    location=f"{location}:{node.lineno}",
                )
