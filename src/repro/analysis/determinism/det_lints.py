"""Nondeterminism-hazard AST lints (``DET0xx``) over the simulator core.

The DES is only reproducible if nothing in it depends on Python-level
accidents: set iteration order, the process RNG, the wall clock, or
memory addresses.  These passes walk the :mod:`ast` of the simulation
packages (:data:`SIM_PACKAGES` under the source root) and flag the
hazard patterns statically:

* ``DET001`` — iterating a set (or other unordered collection) with an
  order-sensitive body: float accumulation (``+=``/``sum`` folds) or
  calls that schedule engine work.  Set order varies with hash seeding
  and insertion history, so such loops can produce run-to-run drift
  (WARNING — the perturbation differ confirms or refutes);
* ``DET002`` — ``set.pop()``, which removes an *arbitrary* element
  (WARNING);
* ``DET010`` — module-level :mod:`random` calls with no ``random.seed``
  in the same file: irreproducible by construction (ERROR);
* ``DET011`` — ``random.Random()`` instantiated without a seed
  (WARNING);
* ``DET020`` — wall-clock reads (``time.time``, ``datetime.now``, ...)
  inside simulation code, which must know only the engine's virtual
  clock (ERROR);
* ``DET030`` — ordering by ``id(...)`` (a ``sorted``/``min``/``max``/
  ``.sort`` key), which is memory-layout-dependent (ERROR);
* ``DET040`` — mutable default arguments, which leak state across
  invocations of event callbacks (WARNING).

The passes scan only the packages whose code runs under the engine; the
analysis layer itself (this package included) is out of scope.  On trees
that have none of the known package directories — unit-test fixtures —
the whole tree is scanned instead.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Set, Tuple

from ..context import AnalysisContext
from ..findings import Finding, Severity
from ..registry import register_pass
from ..source_lints import DEFAULT_SOURCE_ROOT

#: Packages under the source root whose code runs inside the DES; only
#: these are in scope for the determinism lints.
SIM_PACKAGES = (
    "sim", "runtime", "collectives", "parallel", "faults", "hardware",
    "cluster", "inference",
)

#: Method names whose call inside a set-iteration body means the loop is
#: feeding the scheduler: the iteration order becomes the event order.
_SCHEDULING_ATTRS = frozenset({
    "schedule_at", "succeed", "transfer", "record", "add_callback",
    "process", "timeout", "note_touch",
})

#: Order-sensitive reduction callables over an unordered iterable.
_FOLD_CALLS = frozenset({"sum", "fsum"})

#: ``random`` module functions that consume the global RNG stream.
_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular", "vonmisesvariate",
})

#: Dotted call targets that read the wall clock.
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "datetime.now", "datetime.utcnow", "datetime.datetime.now",
    "datetime.datetime.utcnow", "datetime.date.today", "date.today",
})

_ParsedFile = Tuple[ast.Module, str]

#: (path, mtime) -> parsed module; five passes share one parse per file.
_PARSE_CACHE: Dict[Tuple[str, float], ast.Module] = {}


def _sim_files(root: Path) -> List[Path]:
    """The ``.py`` files in scope under ``root``.

    Prefers the known simulation packages; a root containing none of
    them (a test fixture tree) is scanned wholesale.
    """
    package_dirs = [root / name for name in SIM_PACKAGES
                    if (root / name).is_dir()]
    if package_dirs:
        files: List[Path] = []
        for directory in package_dirs:
            files.extend(directory.rglob("*.py"))
        return sorted(files)
    return sorted(root.rglob("*.py"))


def _modules(ctx: AnalysisContext) -> Iterator[_ParsedFile]:
    """Parsed (module, relative-location) pairs for the context's tree.

    Unparseable files are skipped here — the unit-hygiene pass already
    reports them as ``SRC000``.
    """
    root = (ctx.source_root if ctx.source_root is not None
            else DEFAULT_SOURCE_ROOT)
    if len(_PARSE_CACHE) > 512:
        _PARSE_CACHE.clear()
    for path in _sim_files(root):
        key = (str(path), path.stat().st_mtime)
        tree = _PARSE_CACHE.get(key)
        if tree is None:
            try:
                tree = ast.parse(path.read_text(encoding="utf-8"))
            except SyntaxError:
                continue
            _PARSE_CACHE[key] = tree
        yield tree, path.relative_to(root).as_posix()


def _dotted(node: ast.expr) -> str:
    """``a.b.c`` for an attribute chain rooted at a Name, else ''."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return ""
    parts.append(node.id)
    return ".".join(reversed(parts))


# ---------------------------------------------------------------------------
# DET001/DET002 — unordered iteration feeding order-sensitive work
# ---------------------------------------------------------------------------

def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


def _set_names(tree: ast.Module) -> Set[str]:
    """Names bound (anywhere in the module) to a set-typed value."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        if not _is_set_expr(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, ast.Attribute):
                names.add(target.attr)
    return names


def _iterates_set(node: ast.expr, set_names: Set[str]) -> str:
    """The display name of the set being iterated, or ''."""
    if _is_set_expr(node):
        return "a set literal"
    if isinstance(node, ast.Name) and node.id in set_names:
        return repr(node.id)
    if isinstance(node, ast.Attribute) and node.attr in set_names:
        return repr(node.attr)
    return ""


def _order_sensitive_stmt(body: List[ast.stmt]) -> Tuple[str, int]:
    """(reason, lineno) for the first order-sensitive statement, if any."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign):
                return ("accumulates with an augmented assignment",
                        node.lineno)
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _SCHEDULING_ATTRS):
                return (f"calls {node.func.attr}() (schedules engine work)",
                        node.lineno)
    return "", 0


@register_pass(
    "det-set-iteration", family="source", cheap=False,
    description="no scheduling or float folds driven by set iteration order",
    codes=("DET001", "DET002"),
)
def det_set_iteration(ctx: AnalysisContext) -> Iterator[Finding]:
    for tree, location in _modules(ctx):
        set_names = _set_names(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.For):
                which = _iterates_set(node.iter, set_names)
                if not which:
                    continue
                reason, line = _order_sensitive_stmt(node.body)
                if reason:
                    yield Finding(
                        "det-set-iteration", Severity.WARNING, "DET001",
                        f"loop over set {which} {reason}; set order is "
                        f"arbitrary, so this can drift run-to-run",
                        location=f"{location}:{node.lineno}",
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute) and func.attr == "pop"
                        and not node.args and not node.keywords
                        and _iterates_set(func.value, set_names)):
                    yield Finding(
                        "det-set-iteration", Severity.WARNING, "DET002",
                        f"set {_iterates_set(func.value, set_names)}."
                        f"pop() removes an arbitrary element",
                        location=f"{location}:{node.lineno}",
                    )
                elif (isinstance(func, ast.Name)
                        and func.id in _FOLD_CALLS and node.args):
                    arg = node.args[0]
                    if isinstance(arg, ast.GeneratorExp):
                        which = _iterates_set(
                            arg.generators[0].iter, set_names)
                        if which:
                            yield Finding(
                                "det-set-iteration", Severity.WARNING,
                                "DET001",
                                f"{func.id}() folds a generator over set "
                                f"{which}; float accumulation order "
                                f"follows the arbitrary set order",
                                location=f"{location}:{node.lineno}",
                            )


# ---------------------------------------------------------------------------
# DET010/DET011 — RNG discipline
# ---------------------------------------------------------------------------

@register_pass(
    "det-unseeded-random", family="source", cheap=False,
    description="no unseeded random streams in simulation code",
    codes=("DET010", "DET011"),
)
def det_unseeded_random(ctx: AnalysisContext) -> Iterator[Finding]:
    for tree, location in _modules(ctx):
        module_seeded = any(
            isinstance(node, ast.Call)
            and _dotted(node.func) == "random.seed"
            for node in ast.walk(tree)
        )
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if (dotted.startswith("random.")
                    and dotted[len("random."):] in _RANDOM_FNS
                    and not module_seeded):
                yield Finding(
                    "det-unseeded-random", Severity.ERROR, "DET010",
                    f"{dotted}() draws from the unseeded process-global "
                    f"RNG; use a seeded random.Random instance",
                    location=f"{location}:{node.lineno}",
                )
            elif dotted in ("random.Random", "Random") and not node.args:
                yield Finding(
                    "det-unseeded-random", Severity.WARNING, "DET011",
                    "random.Random() without a seed draws entropy from "
                    "the OS; pass an explicit seed",
                    location=f"{location}:{node.lineno}",
                )


# ---------------------------------------------------------------------------
# DET020 — wall-clock reads
# ---------------------------------------------------------------------------

@register_pass(
    "det-wall-clock", family="source", cheap=False,
    description="simulation code reads only the engine's virtual clock",
    codes=("DET020",),
)
def det_wall_clock(ctx: AnalysisContext) -> Iterator[Finding]:
    for tree, location in _modules(ctx):
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted in _WALL_CLOCK:
                yield Finding(
                    "det-wall-clock", Severity.ERROR, "DET020",
                    f"{dotted}() reads the wall clock inside simulation "
                    f"code; the DES must know only Engine.now",
                    location=f"{location}:{node.lineno}",
                )


# ---------------------------------------------------------------------------
# DET030 — id()-based ordering
# ---------------------------------------------------------------------------

def _key_uses_id(keyword: ast.keyword) -> bool:
    value = keyword.value
    if isinstance(value, ast.Name) and value.id == "id":
        return True
    if isinstance(value, ast.Lambda):
        return any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name) and node.func.id == "id"
            for node in ast.walk(value)
        )
    return False


@register_pass(
    "det-id-ordering", family="source", cheap=False,
    description="no sort/min/max keyed on id() (memory-layout ordering)",
    codes=("DET030",),
)
def det_id_ordering(ctx: AnalysisContext) -> Iterator[Finding]:
    for tree, location in _modules(ctx):
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_order_call = (
                (isinstance(func, ast.Name)
                 and func.id in ("sorted", "min", "max"))
                or (isinstance(func, ast.Attribute) and func.attr == "sort")
            )
            if not is_order_call:
                continue
            for keyword in node.keywords:
                if keyword.arg == "key" and _key_uses_id(keyword):
                    yield Finding(
                        "det-id-ordering", Severity.ERROR, "DET030",
                        "ordering by id() depends on memory layout and "
                        "varies across runs; key on a stable field",
                        location=f"{location}:{node.lineno}",
                    )


# ---------------------------------------------------------------------------
# DET040 — mutable default arguments
# ---------------------------------------------------------------------------

def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("list", "dict", "set", "bytearray"))


@register_pass(
    "det-mutable-default", family="source", cheap=False,
    description="no mutable default arguments on simulation callables",
    codes=("DET040",),
)
def det_mutable_default(ctx: AnalysisContext) -> Iterator[Finding]:
    for tree, location in _modules(ctx):
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = [
                *node.args.defaults,
                *(d for d in node.args.kw_defaults if d is not None),
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield Finding(
                        "det-mutable-default", Severity.WARNING, "DET040",
                        f"{node.name}() has a mutable default argument; "
                        f"state leaks across event-callback invocations",
                        subject=node.name,
                        location=f"{location}:{default.lineno}",
                    )
