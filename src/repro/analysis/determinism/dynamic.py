"""Convert dynamic determinism evidence into analysis findings.

The schedule sanitizer (:mod:`repro.sim.sanitizer`) and the perturbation
differ (:mod:`repro.analysis.determinism.differ`) are dynamic tools, so
they are not registered passes; this module gives their output the same
:class:`~repro.analysis.findings.Finding` shape the static passes use,
and claims their codes in the registry's ownership table:

* ``DET101`` — tie groups whose members touched a shared resource
  (WARNING: suspects for the differ to confirm or refute);
* ``DET110`` — a ledger interval double-books a link beyond the
  capacity in effect (ERROR: accounting is broken regardless of order);
* ``DET120`` — a headline metric diverged under a legal tie-order
  perturbation (ERROR: a confirmed schedule race).
"""

from __future__ import annotations

from typing import List

from ...sim.sanitizer import SanitizerReport
from ..findings import Finding, Severity
from ..registry import claim_codes

SANITIZER_PASS = "schedule-sanitizer"
DIFFER_PASS = "perturbation-differ"

claim_codes(SANITIZER_PASS, ("DET101", "DET110"))
claim_codes(DIFFER_PASS, ("DET120",))


def sanitizer_findings(report: SanitizerReport) -> List[Finding]:
    """Findings for one sanitized run's report."""
    findings: List[Finding] = []
    if report.conflict_groups:
        contested = sorted({
            resource
            for conflict in report.conflicts
            for resource in conflict.resources
        })
        shown = ", ".join(contested[:6])
        more = len(contested) - 6
        suffix = f" (+{more} more)" if more > 0 else ""
        findings.append(Finding(
            SANITIZER_PASS, Severity.WARNING, "DET101",
            f"{report.conflict_groups} of {report.tie_groups} "
            f"same-timestamp tie groups touched a shared resource "
            f"({shown}{suffix}); their order is decided only by "
            f"insertion seq — run the perturbation differ to confirm "
            f"or refute",
            subject=contested[0] if contested else "",
        ))
    for violation in report.capacity_violations:
        findings.append(Finding(
            SANITIZER_PASS, Severity.ERROR, "DET110",
            f"ledger interval double-books a link: {violation}",
            subject=violation.split(":", 1)[0],
        ))
    return findings


def divergence_finding(field: str, detail: str, *,
                       strategy: str = "") -> Finding:
    """The ERROR finding for one diverged headline field."""
    return Finding(
        DIFFER_PASS, Severity.ERROR, "DET120",
        f"headline field {field!r} diverged under a legal tie-order "
        f"perturbation: {detail} — a confirmed schedule race",
        subject=strategy or field,
    )
