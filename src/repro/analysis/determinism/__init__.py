"""Nondeterminism race detector: static DET passes + dynamic tools.

Three layers, one subsystem (see DESIGN.md, "Determinism guarantees"):

* :mod:`~repro.analysis.determinism.det_lints` — AST passes (``DET0xx``)
  flagging hazard *patterns* in the simulation packages;
* :mod:`repro.sim.sanitizer` — the runtime schedule sanitizer observing
  same-timestamp ties and auditing ledger capacity;
  :mod:`~repro.analysis.determinism.dynamic` converts its report into
  findings (``DET101``/``DET110``);
* :mod:`~repro.analysis.determinism.differ` — the perturbation differ
  that reruns a configuration under legal tie-order permutations and
  reports any headline divergence as a confirmed race (``DET120``).

The differ is deliberately *not* imported here: it depends on
:func:`repro.core.runner.run_training`, which imports the analysis
package for its pre-run hook.  Import it explicitly::

    from repro.analysis.determinism.differ import perturbation_diff
"""

from . import det_lints  # noqa: F401  (registers the DET0xx passes)
from .det_lints import SIM_PACKAGES
from .dynamic import (
    DIFFER_PASS,
    SANITIZER_PASS,
    divergence_finding,
    sanitizer_findings,
)

__all__ = [
    "DIFFER_PASS",
    "SANITIZER_PASS",
    "SIM_PACKAGES",
    "divergence_finding",
    "sanitizer_findings",
]
