"""Schedule-perturbation differ: confirm or refute suspected races.

The sanitizer's tie conflicts are *suspects*: two same-timestamp
callbacks touched one resource, so their ``seq``-decided order *could*
matter.  This module settles the question empirically — the DES analog
of rerunning a multithreaded program under a perturbed scheduler.  It
reruns the same configuration under legal tie-order permutations
(:class:`~repro.sim.engine.ReversedTies` and a seeded shuffle,
:class:`~repro.sim.engine.SeededTies`) and field-diffs the headline
metrics: iteration times, TFLOP/s, and every link ledger's record count
and byte total, each rounded to :data:`SIG_FIGS` significant figures
(the golden-trace harness's tolerance).  Any divergence is a confirmed
schedule race, reported as an ERROR (``DET120``); bit-equal results
refute the suspects for this configuration.

Not imported from ``repro.analysis.__init__``: this module needs
:func:`repro.core.runner.run_training`, which itself imports the
analysis package for its pre-run hook.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ...core.runner import RunMetrics, run_training
from ...core.search import model_for_billions
from ...experiments.common import make_strategy
from ...hardware.cluster import Cluster, ClusterSpec
from ...hardware.presets import dual_node_cluster, single_node_cluster
from ...parallel.placement import PLACEMENTS
from ...sim.engine import ReversedTies, SeededTies, TieOrder
from ...sim.sanitizer import SanitizerReport
from ..findings import Finding, Report
from .dynamic import DIFFER_PASS, SANITIZER_PASS, divergence_finding, sanitizer_findings

#: Significant figures headline fields are rounded to before comparison
#: — the same tolerance the golden-trace harness uses, so a divergence
#: here is one the regression suite would also see.
SIG_FIGS = 6


def round_sig(value: float, digits: int = SIG_FIGS) -> float:
    """``value`` rounded to ``digits`` significant figures."""
    if value == 0 or not math.isfinite(value):
        return value
    magnitude = int(math.floor(math.log10(abs(value))))
    return round(value, digits - 1 - magnitude)


@dataclass(frozen=True)
class FieldDiff:
    """One headline field that changed under a tie-order perturbation."""

    field: str
    baseline: float
    perturbed: float
    order: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "field": self.field,
            "baseline": self.baseline,
            "perturbed": self.perturbed,
            "order": self.order,
        }


def diff_headline_runs(
    run_fn: Callable[[TieOrder], Mapping[str, float]], *,
    seed: int = 7,
) -> Tuple[List[FieldDiff], List[str]]:
    """Run ``run_fn`` under each tie order and diff its headline dicts.

    ``run_fn`` receives a tie order and returns ``{field: value}``; it
    must build fresh state per call.  Returns the divergent fields and
    the perturbed-order names tried.  This is the differ's core, split
    out so tests can drive it with a bare engine instead of a full
    training run.
    """
    baseline = {k: round_sig(v) for k, v in run_fn(TieOrder()).items()}
    diffs: List[FieldDiff] = []
    orders: List[str] = []
    for order in (ReversedTies(), SeededTies(seed)):
        orders.append(order.name)
        perturbed = {k: round_sig(v) for k, v in run_fn(order).items()}
        for key in sorted(baseline.keys() | perturbed.keys()):
            before = baseline.get(key)
            after = perturbed.get(key)
            if before != after:
                diffs.append(FieldDiff(
                    field=key,
                    baseline=float("nan") if before is None else before,
                    perturbed=float("nan") if after is None else after,
                    order=order.name,
                ))
    return diffs, orders


def headline_fields(metrics: RunMetrics, cluster: Cluster
                    ) -> Dict[str, float]:
    """The per-run scalar fields the differ compares."""
    fields: Dict[str, float] = {
        "iteration_time_s": metrics.iteration_time,
        "tflops": metrics.tflops,
        "total_time_s": metrics.execution.total_time,
    }
    for index, seconds in enumerate(metrics.execution.iteration_times):
        fields[f"iteration[{index}]_s"] = seconds
    for link in cluster.topology.links:
        records = list(link.ledger)
        if not records:
            continue
        fields[f"ledger[{link.name}].records"] = float(len(records))
        fields[f"ledger[{link.name}].bytes"] = float(
            sum(record.num_bytes for record in records)
        )
    return fields


@dataclass
class DiffResult:
    """Outcome of one perturbation diff over a training configuration."""

    strategy: str
    size_billions: float
    nodes: int
    iterations: int
    seed: int
    orders: List[str] = field(default_factory=list)
    fields_compared: int = 0
    diffs: List[FieldDiff] = field(default_factory=list)
    sanitizer: Optional[SanitizerReport] = None

    @property
    def races_confirmed(self) -> bool:
        return bool(self.diffs)

    def findings(self) -> List[Finding]:
        found: List[Finding] = []
        if self.sanitizer is not None:
            found.extend(sanitizer_findings(self.sanitizer))
        for diff in self.diffs:
            found.append(divergence_finding(
                diff.field,
                f"{diff.baseline!r} (fifo) vs {diff.perturbed!r} "
                f"({diff.order})",
                strategy=self.strategy,
            ))
        return found

    def report(self) -> Report:
        """The findings wrapped as a standard analysis report."""
        out = Report()
        out.passes_run.append(SANITIZER_PASS)
        out.passes_run.append(DIFFER_PASS)
        out.extend(self.findings())
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "strategy": self.strategy,
            "size_billions": self.size_billions,
            "nodes": self.nodes,
            "iterations": self.iterations,
            "seed": self.seed,
            "orders": list(self.orders),
            "fields_compared": self.fields_compared,
            "races_confirmed": self.races_confirmed,
            "diffs": [d.to_dict() for d in self.diffs],
            "sanitizer": (self.sanitizer.to_dict()
                          if self.sanitizer is not None else None),
        }


def perturbation_diff(strategy_name: str = "ddp", *,
                      size_billions: float = 0.7,
                      nodes: int = 2,
                      placement: str = "B",
                      iterations: int = 2,
                      seed: int = 7) -> DiffResult:
    """Diff one training configuration across tie orders.

    The baseline (FIFO) run carries the schedule sanitizer, so the
    result bundles the suspect tie conflicts alongside the verdict; the
    perturbed runs skip it (only their headline fields matter).  Every
    run builds a fresh cluster — ledgers are per-cluster state.
    """
    placement_cfg = PLACEMENTS[placement]
    model = model_for_billions(size_billions)

    def build_cluster() -> Cluster:
        if "nvme" in strategy_name:
            return Cluster(ClusterSpec(num_nodes=nodes,
                                       node=placement_cfg.node_spec()))
        return single_node_cluster() if nodes == 1 else dual_node_cluster()

    result = DiffResult(
        strategy=strategy_name, size_billions=size_billions,
        nodes=nodes, iterations=iterations, seed=seed,
    )

    def run(order: TieOrder) -> Dict[str, float]:
        cluster = build_cluster()
        sanitize = order.name == "fifo" and result.sanitizer is None
        metrics = run_training(
            cluster, make_strategy(strategy_name), model,
            iterations=iterations, placement=placement_cfg,
            tie_order=order, sanitize=sanitize,
        )
        if sanitize:
            result.sanitizer = metrics.sanitizer
        fields = headline_fields(metrics, cluster)
        result.fields_compared = max(result.fields_compared, len(fields))
        return fields

    result.diffs, result.orders = diff_headline_runs(run, seed=seed)
    return result
