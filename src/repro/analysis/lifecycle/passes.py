"""The registered ``lifecycle``-family pass and the ``RES0xx`` catalog.

============  ========  ====================================================
code          severity  meaning
============  ========  ====================================================
``RES001``    ERROR     handle acquired but never released on some path
                        through the function (leak on normal exit)
``RES002``    WARNING   acquire..release window contains calls that can
                        raise and the release is not exception-guarded
                        (leak on the exception path; use try/finally or
                        the protocol's context manager)
``RES003``    ERROR     double release (second ``free``/``settle``/
                        ``unlock`` of the same handle)
``RES004``    ERROR     use of a handle after its release
``RES005``    ERROR     release of a handle that was provably never
                        acquired (wrong token type, unacquired label on a
                        locally-built pool, non-handle value)
``RES006``    WARNING   handle acquired inside a ``with`` scope escapes it
                        (returned/yielded/stored); the context exit
                        revokes its backing
``RES010``    WARNING   token-acquire result discarded; the handle can
                        never be released without it
============  ========  ====================================================

``RES007``-``RES009`` belong to the runtime half of the subsystem (the
:class:`~repro.sim.leaksan.LeakSanitizer` claims them via
:func:`~repro.analysis.registry.claim_codes`): ``RES007`` outstanding
pool/ledger balance at teardown, ``RES008`` runtime protocol error
observed under instrumentation, ``RES009`` cross-validation — a static
RES finding matched (or contradicted) by an observed runtime leak.

The pass scans a source tree (``ctx.source_root``), not a cluster, and
is expensive (full-tree parse + interprocedural fixpoint), so it is
``cheap=False`` and runs only from ``repro analyze --lifecycle`` and the
CI lifecycle job.
"""

from __future__ import annotations

from typing import Iterator

from ..context import AnalysisContext
from ..findings import Finding
from ..registry import register_pass
from ..source_lints import DEFAULT_SOURCE_ROOT
from .engine import analyze_tree

#: codes the typestate interpreter may emit
RES_CODES = ("RES001", "RES002", "RES003", "RES004", "RES005", "RES006",
             "RES010")


@register_pass(
    "res-typestate", family="lifecycle", cheap=False,
    description="interprocedural acquire/release typestate analysis over "
                "the paired-resource protocols (memory pool, bandwidth "
                "ledger, cache lock)",
    codes=RES_CODES,
)
def res_typestate(ctx: AnalysisContext) -> Iterator[Finding]:
    root = (ctx.source_root if ctx.source_root is not None
            else DEFAULT_SOURCE_ROOT)
    yield from analyze_tree(root)
