"""The resource-protocol table the lifecycle analysis tracks.

A *protocol* is a paired acquire/release API whose balance must close to
zero: every acquire must be matched by exactly one release, or the
simulator's steady-state accounting drifts (leaked ledger reservations
inflate outstanding bytes; leaked pool labels distort the memory
telemetry; an unreleased cache lock wedges every later writer).

Two handle *shapes* exist:

* ``token`` — the acquire call **returns** the handle
  (``r = ledger.reserve(n)``) and the release call **consumes** it
  (``ledger.settle(r)``).  Identity is the value, so the typestate
  engine follows the variable binding through assignments, calls,
  branches, and generator ``yield``\\ s.
* ``label`` — the acquire call **names** the handle with its first
  argument (``pool.allocate("params", n)``) and the release call names
  it again (``pool.free("params")``).  Identity is the
  ``(receiver, label)`` pair; only literal labels are tracked (a
  computed label is not provably matchable, and the engine never
  guesses).

Each protocol may also declare *context acquires* — ``with``-statement
helpers (``pool.lease``, ``ledger.reserving``, ``cache.locked``) that
release structurally on block exit, so handles they produce are correct
by construction and never flagged.

Two further paired protocols are **runtime-tracked only** (entries with
``static=False``): the flow-network register/epoch pair
(``FlowNetwork._active`` add on activation, discard in
``_reallocate``) and the trace span open/close pair
(``TraceRecorder.flow_started``/``flow_finished`` +
``drain_open_flows``).  Their handles are born inside the engine's
event callbacks, where static per-function reasoning has no leverage;
the runtime :class:`~repro.sim.leaksan.LeakSanitizer` audits them
instead (open flows and undrained spans at teardown), and the
cross-validation report joins both views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

#: positional-argument count window ``(min, max)`` a call must fall in
#: for the method name to be treated as a protocol verb.  This is what
#: keeps ``FlowNetwork.settle()`` (zero args — a time-accounting flush)
#: from colliding with ``BandwidthLedger.settle(reservation)``.
Arity = Tuple[int, int]


@dataclass(frozen=True)
class Protocol:
    """One paired-resource API the typestate engine enforces."""

    name: str
    #: "token" or "label" (see module docstring)
    shape: str
    #: acquire method name -> positional-arity window
    acquires: Mapping[str, Arity]
    #: release method name -> positional-arity window
    releases: Mapping[str, Arity]
    #: ``with``-statement acquire helpers (structurally released)
    context_acquires: Tuple[str, ...] = ()
    #: class names whose constructor makes a receiver *local* — a pool
    #: built inside a function dies with it, so unreleased labels on it
    #: are not leaks, but releasing a never-acquired label on it is
    #: provably wrong (RES005)
    constructors: Tuple[str, ...] = ()
    #: keyword arguments that opt a release call out of strict matching
    #: (``pool.free(label, missing_ok=True)`` is documented idempotent
    #: teardown, not a double-free)
    lenient_keywords: Tuple[str, ...] = ()
    #: False for protocols audited by the runtime leak sanitizer only
    static: bool = True
    #: human description for reports and docs
    description: str = ""


PROTOCOLS: Tuple[Protocol, ...] = (
    Protocol(
        name="memory-pool",
        shape="label",
        acquires={"allocate": (2, 2)},
        releases={"free": (1, 1)},
        context_acquires=("lease",),
        constructors=("MemoryPool",),
        lenient_keywords=("missing_ok",),
        description="MemoryPool.allocate/free byte accounting "
                    "(hardware/devices.py)",
    ),
    Protocol(
        name="ledger-reservation",
        shape="token",
        acquires={"reserve": (1, 1)},
        releases={"settle": (1, 1), "cancel": (1, 1)},
        context_acquires=("reserving",),
        constructors=("BandwidthLedger",),
        description="BandwidthLedger reserve/settle byte claims "
                    "(hardware/link.py)",
    ),
    Protocol(
        name="cache-lock",
        shape="token",
        acquires={"lock": (1, 1)},
        releases={"unlock": (1, 1)},
        context_acquires=("locked",),
        constructors=("ResultCache",),
        description="ResultCache advisory object locks "
                    "(campaign/cache.py)",
    ),
    Protocol(
        name="flow-epoch",
        shape="token",
        acquires={},
        releases={},
        static=False,
        description="FlowNetwork flow registration: activated flows must "
                    "leave _active via _reallocate (sim/flows.py); "
                    "runtime-audited as open flows at teardown",
    ),
    Protocol(
        name="trace-span",
        shape="token",
        acquires={},
        releases={},
        static=False,
        description="TraceRecorder span open/close: flow_started must "
                    "pair with flow_finished or drain_open_flows "
                    "(trace/recorder.py); runtime-audited as undrained "
                    "spans at teardown",
    ),
)

#: the statically-enforced subset
STATIC_PROTOCOLS: Tuple[Protocol, ...] = tuple(
    p for p in PROTOCOLS if p.static
)


def _index(attr: str) -> Dict[str, Protocol]:
    table: Dict[str, Protocol] = {}
    for protocol in STATIC_PROTOCOLS:
        for method in getattr(protocol, attr):
            if method in table:  # pragma: no cover - table invariant
                raise ValueError(
                    f"protocol method {method!r} claimed twice"
                )
            table[method] = protocol
    return table


#: method name -> protocol, for each verb class
ACQUIRE_METHODS: Dict[str, Protocol] = _index("acquires")
RELEASE_METHODS: Dict[str, Protocol] = _index("releases")
CONTEXT_METHODS: Dict[str, Protocol] = _index("context_acquires")

#: constructor class name -> protocol (local-receiver detection)
CONSTRUCTORS: Dict[str, Protocol] = {
    cls: protocol
    for protocol in STATIC_PROTOCOLS
    for cls in protocol.constructors
}

#: builtins through which a released token may flow without being a
#: "use": rendering and introspection, not resource access
SAFE_TOKEN_SINKS = frozenset({
    "print", "repr", "str", "len", "format", "bool", "id", "isinstance",
    "type",
})
