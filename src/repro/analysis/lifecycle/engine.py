"""The resource-lifecycle typestate interpreter.

:func:`analyze_tree` drives three phases over every module in scope,
mirroring the dimensional engine (:mod:`~repro.analysis.dimensions.
engine`) it shares its architecture with:

1. **Collection** — parse each file once and harvest every function
   definition plus each module's import map.
2. **Fixpoint inference** — every function gets an interprocedural
   *lifecycle summary*: which parameter positions it releases, which it
   escapes (stores/returns/containers), and whether it returns a freshly
   acquired handle.  Summaries are iterated to a fixpoint so a helper
   that forwards its argument to ``ledger.settle`` counts as a release
   in every caller.
3. **Checking** — re-interpret every function body with findings
   enabled, running each tracked handle through the typestate machine::

       acquired --release--> released --release--> RES003 (double)
       acquired --exit----------------------------> RES001 (leak)
       acquired --risky call, unguarded release---> RES002 (warning)
       released --use-----------------------------> RES004
       (never acquired) --release-----------------> RES005
       acquired --escape (return/yield/store)-----> silent (escaped)

The interpreter is flow-sensitive (branches analyzed separately and
joined) and alias-aware: the environment maps variable names to handle
*identities*, with states held in a side table, so ``r2 = r1;
settle(r2); settle(r1)`` is recognized as a double release of one
handle.  It is deliberately conservative — the escape lattice (owned →
borrowed → escaped) silences anything whose ownership provably or
plausibly moved elsewhere, and a state that differs between branches
joins to ``maybe`` which never flags.  The engine's job is catching
protocol usage that is wrong on *every* path, not demanding a style.
"""

from __future__ import annotations

import ast
import itertools
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..findings import Finding, Severity
from .protocols import (
    ACQUIRE_METHODS,
    CONSTRUCTORS,
    CONTEXT_METHODS,
    RELEASE_METHODS,
    SAFE_TOKEN_SINKS,
    STATIC_PROTOCOLS,
    Protocol,
)

PASS_NAME = "res-typestate"

#: packages under the source root whose resource handling is in scope; a
#: root containing none of them (a unit-test fixture tree) is scanned
#: whole.
LIFECYCLE_PACKAGES = (
    "sim", "runtime", "collectives", "parallel", "hardware", "model",
    "telemetry", "trace", "faults", "campaign", "core",
)

#: fixpoint iteration cap; summaries stabilize in 2-3 rounds in practice
_MAX_ROUNDS = 5

# -- handle states ---------------------------------------------------------

ACQUIRED = "acquired"
RELEASED = "released"
ESCAPED = "escaped"      # ownership moved (returned/yielded/stored)
MANAGED = "managed"      # produced by a with-statement context acquire
BORROWED = "borrowed"    # came in as a parameter; caller owns it
MAYBE = "maybe"          # differs between joined branches; never flags

#: states that silence every subsequent check on the handle
_QUIET = frozenset({ESCAPED, MANAGED, MAYBE})


@dataclass
class Handle:
    """One tracked resource handle (identity lives in the env)."""

    protocol: Protocol
    state: str
    line: int = 0
    #: dotted receiver path of the acquire (``self.ledger``)
    receiver: str = ""
    #: label-shape handles: the literal label
    label: str = ""
    #: parameter position for borrowed handles (summary building)
    param_index: Optional[int] = None
    #: a non-protocol call ran while this handle was acquired, so an
    #: exception there would leak it (RES002 input)
    risky: bool = False
    #: line of the releasing call (RES003/RES004 messages)
    released_line: int = 0

    def copy(self) -> "Handle":
        return replace(self)


#: environment value for names that are provably not handles
_NOT_HANDLE = -1

Env = Dict[str, int]
States = Dict[int, Handle]


@dataclass
class FunctionInfo:
    """Interprocedural lifecycle summary of one function definition."""

    name: str
    qualname: str
    module: str
    node: ast.FunctionDef
    is_method: bool
    param_names: List[str]
    #: parameter positions whose handle this function releases
    releases_params: Tuple[int, ...] = ()
    #: parameter positions whose handle this function escapes
    escapes_params: Tuple[int, ...] = ()
    #: protocol name when the function returns a freshly acquired token
    returns_fresh: Optional[str] = None


@dataclass
class ModuleInfo:
    """One parsed module in the scanned tree."""

    location: str
    tree: ast.Module
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)


class Program:
    """Everything the interpreter knows about the scanned tree."""

    def __init__(self) -> None:
        self.modules: List[ModuleInfo] = []
        self.by_name: Dict[str, List[FunctionInfo]] = {}

    def add_module(self, location: str, tree: ast.Module) -> None:
        info = ModuleInfo(location=location, tree=tree)
        self._collect_functions(info)
        self.modules.append(info)

    def _collect_functions(self, info: ModuleInfo) -> None:
        def visit(body: Iterable[ast.stmt], class_name: str = "") -> None:
            for node in body:
                if isinstance(node, ast.ClassDef):
                    visit(node.body, node.name)
                elif isinstance(node, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    self._add_function(info, node, class_name)

        visit(info.tree.body)

    def _add_function(self, info: ModuleInfo, node: ast.FunctionDef,
                      class_name: str) -> None:
        decorators = _decorator_names(node)
        is_method = bool(class_name) and "staticmethod" not in decorators
        params = [*node.args.posonlyargs, *node.args.args]
        fn = FunctionInfo(
            name=node.name,
            qualname=(f"{class_name}.{node.name}"
                      if class_name else node.name),
            module=info.location,
            node=node,
            is_method=is_method,
            param_names=[p.arg for p in params],
        )
        info.functions.setdefault(node.name, fn)
        self.by_name.setdefault(node.name, []).append(fn)

    def resolve_call(self, info: ModuleInfo,
                     name: str) -> Optional[FunctionInfo]:
        """The summary a call by bare name resolves to, if unambiguous.

        Module-local definitions win; otherwise a tree-wide unique name
        resolves, and several same-named definitions resolve only when
        their lifecycle summaries agree.
        """
        local = info.functions.get(name)
        if local is not None:
            return local
        candidates = self.by_name.get(name, [])
        if not candidates:
            return None
        if len(candidates) == 1:
            return candidates[0]
        first = candidates[0]
        if all(c.releases_params == first.releases_params
               and c.escapes_params == first.escapes_params
               and c.returns_fresh == first.returns_fresh
               and c.is_method == first.is_method
               for c in candidates[1:]):
            return first
        return None

    def infer_round(self) -> bool:
        """One fixpoint round; returns True when any summary changed."""
        changed = False
        for info in self.modules:
            for fn in info.functions.values():
                interp = _Interpreter(self, info, fn, collect=False)
                interp.run()
                summary = (tuple(sorted(interp.released_params)),
                           tuple(sorted(interp.escaped_params)),
                           interp.returns_fresh)
                held = (fn.releases_params, fn.escapes_params,
                        fn.returns_fresh)
                if summary != held:
                    (fn.releases_params, fn.escapes_params,
                     fn.returns_fresh) = summary
                    changed = True
        return changed


class _Interpreter:
    """Typestate interpretation of one function body."""

    def __init__(self, program: Program, module: ModuleInfo,
                 fn: FunctionInfo, *, collect: bool) -> None:
        self.program = program
        self.module = module
        self.fn = fn
        self.collect = collect
        self.findings: List[Finding] = []
        self._ids = itertools.count()
        #: summary outputs (read after run())
        self.released_params: Set[int] = set()
        self.escaped_params: Set[int] = set()
        self.returns_fresh: Optional[str] = None
        #: protocols this function releases somewhere — the *intent*
        #: signal that arms label-shape leak reporting (a function that
        #: never frees anything is a planner, not a leaker)
        self._released_protocols: Set[str] = set()
        #: names bound to protocol-class constructor calls; resources on
        #: them die with the function, so leaks there are silent but
        #: releasing a never-acquired handle is provably wrong
        self._local_receivers: Set[str] = set()
        self._finally_depth = 0
        #: stack of with-block context variable name sets (RES006)
        self._with_ctx: List[Set[str]] = []
        #: label-shape leaks found at branch exits (deduped at exit)
        self._leaks: Dict[int, Handle] = {}

    # -- entry point -------------------------------------------------------
    def run(self) -> None:
        env: Env = {}
        states: States = {}
        args = self.fn.node.args
        params = [*args.posonlyargs, *args.args]
        for index, param in enumerate(params):
            hid = next(self._ids)
            env[param.arg] = hid
            states[hid] = Handle(protocol=_ANY, state=BORROWED,
                                 param_index=index)
        for param in args.kwonlyargs:
            env[param.arg] = _NOT_HANDLE
        self._exec_block(self.fn.node.body, env, states)
        self._check_exit(states)

    def _check_exit(self, states: States) -> None:
        for handle in states.values():
            self._note_leak_candidate(handle)
        for handle in self._leaks.values():
            if handle.protocol.shape == "label":
                what = (f"label {handle.label!r} allocated on "
                        f"{handle.receiver}")
            else:
                what = (f"{handle.protocol.name} token from "
                        f"{handle.receiver or 'acquire'}")
            self._emit(
                Severity.ERROR, "RES001",
                f"{what} is never released on some path through "
                f"{self.fn.qualname}() ({handle.protocol.name} protocol)",
                handle.line,
            )

    def _note_leak_candidate(self, handle: Handle) -> None:
        """Queue an acquired-at-exit handle for RES001, per intent rules."""
        if handle.state != ACQUIRED or handle.param_index is not None:
            return
        root = handle.receiver.split(".", 1)[0]
        if root in self._local_receivers:
            return  # the pool/ledger itself dies with this function
        if handle.protocol.shape == "label" and \
                handle.protocol.name not in self._released_protocols:
            # A function that allocates labels and never frees any is a
            # planner handing long-lived state to its caller, not a
            # leaker; only mixed acquire/release functions must balance.
            return
        if self.collect:
            self._leaks[id(handle)] = handle

    # -- findings ----------------------------------------------------------
    def _emit(self, severity: Severity, code: str, message: str,
              line: int) -> None:
        if not self.collect:
            return
        self.findings.append(Finding(
            PASS_NAME, severity, code, message,
            subject=self.fn.qualname,
            location=f"{self.module.location}:{line}",
        ))

    # -- statements --------------------------------------------------------
    def _exec_block(self, body: Iterable[ast.stmt], env: Env,
                    states: States) -> None:
        for stmt in body:
            self._mark_risky(stmt, env, states)
            self._exec_stmt(stmt, env, states)

    def _mark_risky(self, stmt: ast.stmt, env: Env,
                    states: States) -> None:
        """Before a statement with non-protocol calls runs, every live
        handle becomes exception-exposed (the RES002 precondition).

        Marking *before* interpreting the statement keeps a handle's own
        acquire expression from poisoning it (the acquire runs last)."""
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return
        if not any(self._call_is_risky(node)
                   for node in ast.walk(stmt)
                   if isinstance(node, ast.Call)):
            return
        for handle in states.values():
            if handle.state == ACQUIRED:
                handle.risky = True

    @staticmethod
    def _call_is_risky(node: ast.Call) -> bool:
        if isinstance(node.func, ast.Attribute):
            name = node.func.attr
            if name in ACQUIRE_METHODS or name in RELEASE_METHODS or \
                    name in CONTEXT_METHODS:
                return False
            return True
        if isinstance(node.func, ast.Name):
            return node.func.id not in SAFE_TOKEN_SINKS
        return True

    def _exec_stmt(self, stmt: ast.stmt, env: Env,
                   states: States) -> None:
        if isinstance(stmt, ast.Assign):
            hid = self._eval(stmt.value, env, states)
            for target in stmt.targets:
                self._bind(target, hid, env, states, value=stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            hid = self._eval(stmt.value, env, states) \
                if stmt.value is not None else None
            self._bind(stmt.target, hid, env, states, value=stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self._eval(stmt.value, env, states)
        elif isinstance(stmt, ast.Return):
            self._exec_return(stmt, env, states)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test, env, states)
            then_env, then_states = dict(env), _copy(states)
            else_env, else_states = dict(env), _copy(states)
            self._exec_block(stmt.body, then_env, then_states)
            self._exec_block(stmt.orelse, else_env, else_states)
            if _terminates(stmt.body):
                self._branch_exit(then_states)
                env.clear()
                env.update(else_env)
                states.clear()
                states.update(else_states)
            elif stmt.orelse and _terminates(stmt.orelse):
                self._branch_exit(else_states)
                env.clear()
                env.update(then_env)
                states.clear()
                states.update(then_states)
            else:
                self._merge(env, states, (then_env, then_states),
                            (else_env, else_states))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._eval(stmt.iter, env, states)
            body_env, body_states = dict(env), _copy(states)
            self._bind(stmt.target, None, body_env, body_states)
            self._exec_block(stmt.body, body_env, body_states)
            self._exec_block(stmt.orelse, body_env, body_states)
            self._merge(env, states, (body_env, body_states),
                        (dict(env), _copy(states)))
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test, env, states)
            body_env, body_states = dict(env), _copy(states)
            self._exec_block(stmt.body, body_env, body_states)
            self._exec_block(stmt.orelse, body_env, body_states)
            self._merge(env, states, (body_env, body_states),
                        (dict(env), _copy(states)))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._exec_with(stmt, env, states)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body, env, states)
            for handler in stmt.handlers:
                handler_env, handler_states = dict(env), _copy(states)
                if handler.name:
                    handler_env[handler.name] = _NOT_HANDLE
                self._exec_block(handler.body, handler_env,
                                 handler_states)
                self._merge(env, states, (handler_env, handler_states),
                            (dict(env), _copy(states)))
            self._exec_block(stmt.orelse, env, states)
            self._finally_depth += 1
            try:
                self._exec_block(stmt.finalbody, env, states)
            finally:
                self._finally_depth -= 1
        elif isinstance(stmt, ast.Expr):
            hid = self._eval(stmt.value, env, states)
            self._check_discarded(stmt.value, hid, states)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child, env, states)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            pass  # nested definitions are analyzed on their own
        # pass/break/continue/import/global: nothing to track

    def _exec_return(self, stmt: ast.Return, env: Env,
                     states: States) -> None:
        if stmt.value is None:
            self._branch_exit(states)
            return
        hid = self._eval(stmt.value, env, states)
        if hid is not None and hid != _NOT_HANDLE and hid in states:
            handle = states[hid]
            if handle.state == ACQUIRED:
                if handle.protocol.shape == "token":
                    self.returns_fresh = handle.protocol.name
                self._check_scope_escape(handle, stmt.lineno,
                                         verb="returned")
                handle.state = ESCAPED
            elif handle.state == BORROWED and \
                    handle.param_index is not None:
                self.escaped_params.add(handle.param_index)
        self._escape_names(stmt.value, env, states, line=stmt.lineno,
                           verb="returned")
        self._branch_exit(states)

    def _branch_exit(self, states: States) -> None:
        """A path leaves the function here; audit its live handles."""
        for handle in states.values():
            self._note_leak_candidate(handle)

    def _exec_with(self, stmt: ast.stmt, env: Env,
                   states: States) -> None:
        ctx_names: Set[str] = set()
        for item in stmt.items:  # type: ignore[attr-defined]
            self._eval(item.context_expr, env, states)
            is_protocol_ctx = (
                isinstance(item.context_expr, ast.Call)
                and isinstance(item.context_expr.func, ast.Attribute)
                and item.context_expr.func.attr in CONTEXT_METHODS
            )
            if item.optional_vars is not None and \
                    isinstance(item.optional_vars, ast.Name):
                name = item.optional_vars.id
                ctx_names.add(name)
                hid = next(self._ids)
                env[name] = hid
                states[hid] = Handle(
                    protocol=(CONTEXT_METHODS[item.context_expr.func.attr]
                              if is_protocol_ctx else _ANY),
                    state=MANAGED, line=stmt.lineno)
            elif item.optional_vars is not None:
                self._bind(item.optional_vars, None, env, states)
        self._with_ctx.append(ctx_names)
        try:
            self._exec_block(stmt.body, env, states)  # type: ignore
        finally:
            self._with_ctx.pop()

    def _check_scope_escape(self, handle: Handle, line: int, *,
                            verb: str) -> None:
        """RES006: a token acquired from a with-managed receiver must not
        outlive the with block (the context exit revokes its backing —
        the fault-revert / lease-teardown escape)."""
        root = handle.receiver.split(".", 1)[0]
        if any(root in names for names in self._with_ctx):
            self._emit(
                Severity.WARNING, "RES006",
                f"{handle.protocol.name} token acquired from "
                f"with-managed {handle.receiver!r} is {verb} out of its "
                f"with block; the context exit revokes it",
                line,
            )

    def _check_discarded(self, value: ast.expr, hid: Optional[int],
                         states: States) -> None:
        """RES010: a token-acquire result dropped on the floor can never
        be released."""
        if hid is None or hid == _NOT_HANDLE or hid not in states:
            return
        handle = states[hid]
        if handle.state != ACQUIRED or handle.protocol.shape != "token":
            return
        if not (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in ACQUIRE_METHODS):
            return
        self._emit(
            Severity.WARNING, "RES010",
            f"result of {handle.receiver}."
            f"{value.func.attr}() is discarded; the "
            f"{handle.protocol.name} token is unreleasable without it",
            value.lineno,
        )
        handle.state = ESCAPED  # don't double-report as RES001

    # -- env plumbing ------------------------------------------------------
    def _merge(self, env: Env, states: States,
               left: Tuple[Env, States],
               right: Tuple[Env, States]) -> None:
        left_env, left_states = left
        right_env, right_states = right
        env.clear()
        states.clear()
        for hid in set(left_states) | set(right_states):
            a = left_states.get(hid)
            b = right_states.get(hid)
            if a is None:
                states[hid] = b.copy()  # type: ignore[union-attr]
            elif b is None:
                states[hid] = a.copy()
            else:
                joined = a.copy()
                joined.state = _join(a.state, b.state)
                joined.risky = a.risky or b.risky
                states[hid] = joined
        for name in set(left_env) | set(right_env):
            a_id = left_env.get(name)
            b_id = right_env.get(name)
            if a_id == b_id and a_id is not None:
                env[name] = a_id
            # a name bound to different handles per branch is dropped;
            # the handles themselves stay in ``states`` for exit audit

    def _bind(self, target: ast.expr, hid: Optional[int], env: Env,
              states: States, value: Optional[ast.expr] = None) -> None:
        if isinstance(target, ast.Name):
            if value is not None and isinstance(value, ast.Call) and \
                    isinstance(value.func, ast.Name) and \
                    value.func.id in CONSTRUCTORS:
                self._local_receivers.add(target.id)
            if hid is None:
                env.pop(target.id, None)
            else:
                env[target.id] = hid
        elif isinstance(target, ast.Attribute):
            # Storing a handle on an object escapes it (long-lived owner)
            if hid is not None and hid != _NOT_HANDLE and hid in states:
                handle = states[hid]
                if handle.state == ACQUIRED:
                    self._check_scope_escape(handle, target.lineno,
                                             verb="stored")
                    handle.state = ESCAPED
                elif handle.state == BORROWED and \
                        handle.param_index is not None:
                    self.escaped_params.add(handle.param_index)
        elif isinstance(target, ast.Subscript):
            if hid is not None and hid != _NOT_HANDLE and hid in states:
                handle = states[hid]
                if handle.state == ACQUIRED:
                    handle.state = ESCAPED
                elif handle.state == BORROWED and \
                        handle.param_index is not None:
                    self.escaped_params.add(handle.param_index)
            self._eval(target.value, env, states)
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, (ast.Tuple, ast.List)) and \
                    len(value.elts) == len(target.elts):
                for sub_target, sub_value in zip(target.elts, value.elts):
                    sub_id = env.get(sub_value.id) \
                        if isinstance(sub_value, ast.Name) else None
                    self._bind(sub_target, sub_id, env, states)
            else:
                for sub_target in target.elts:
                    self._bind(sub_target, None, env, states)

    def _escape_names(self, node: ast.expr, env: Env, states: States, *,
                      line: int, verb: str) -> None:
        """Every handle named inside ``node`` escapes (containers,
        yields, returns of compound expressions)."""
        for child in ast.walk(node):
            if not isinstance(child, ast.Name):
                continue
            hid = env.get(child.id)
            if hid is None or hid == _NOT_HANDLE or hid not in states:
                continue
            handle = states[hid]
            if handle.state == ACQUIRED:
                self._check_scope_escape(handle, line, verb=verb)
                handle.state = ESCAPED
            elif handle.state == BORROWED and \
                    handle.param_index is not None:
                self.escaped_params.add(handle.param_index)

    # -- expressions -------------------------------------------------------
    def _eval(self, node: Optional[ast.expr], env: Env,
              states: States) -> Optional[int]:
        """Interpret an expression; returns the handle identity it
        evaluates to (``_NOT_HANDLE`` for provable non-handles, ``None``
        for unknown)."""
        if node is None:
            return None
        if isinstance(node, ast.Constant):
            return _NOT_HANDLE
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env, states)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                self._eval(node.value, env, states)
                self._escape_names(node.value, env, states,
                                   line=node.lineno, verb="yielded")
            return None
        if isinstance(node, ast.Await):
            return self._eval(node.value, env, states)
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env, states)
            left = self._eval(node.body, env, states)
            right = self._eval(node.orelse, env, states)
            return left if left == right else None
        if isinstance(node, (ast.Tuple, ast.List, ast.Set, ast.Dict)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child, env, states)
            self._escape_names(node, env, states, line=node.lineno,
                               verb="stored in a container and passed on")
            return _NOT_HANDLE
        if isinstance(node, ast.NamedExpr):
            hid = self._eval(node.value, env, states)
            self._bind(node.target, hid, env, states, value=node.value)
            return hid
        if isinstance(node, ast.Attribute):
            if not isinstance(node.value, (ast.Name, ast.Attribute)):
                self._eval(node.value, env, states)
            return None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            comp_env, comp_states = dict(env), states
            for generator in node.generators:
                self._eval(generator.iter, comp_env, comp_states)
                self._bind(generator.target, None, comp_env, comp_states)
                for condition in generator.ifs:
                    self._eval(condition, comp_env, comp_states)
            if isinstance(node, ast.DictComp):
                self._eval(node.key, comp_env, comp_states)
                self._eval(node.value, comp_env, comp_states)
            else:
                self._eval(node.elt, comp_env,  # type: ignore[attr-defined]
                           comp_states)
            return _NOT_HANDLE
        # BinOp/BoolOp/Compare/UnaryOp/Subscript/JoinedStr/Starred/...:
        # recurse for nested calls, never a handle themselves
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child, env, states)
        return _NOT_HANDLE if isinstance(
            node, (ast.BinOp, ast.BoolOp, ast.Compare, ast.UnaryOp,
                   ast.JoinedStr)) else None

    # -- calls -------------------------------------------------------------
    def _eval_call(self, node: ast.Call, env: Env,
                   states: States) -> Optional[int]:
        for kw in node.keywords:
            self._eval(kw.value, env, states)
        if isinstance(node.func, ast.Attribute):
            return self._eval_method_call(node, env, states)
        if isinstance(node.func, ast.Name):
            return self._eval_name_call(node, env, states)
        self._eval(node.func, env, states)
        for arg in node.args:
            self._eval(arg, env, states)
        self._escape_args(node, env, states)
        return None

    def _eval_method_call(self, node: ast.Call, env: Env,
                          states: States) -> Optional[int]:
        func = node.func
        assert isinstance(func, ast.Attribute)
        method = func.attr
        receiver = _dotted(func.value)
        npos = len(node.args)
        self._check_receiver_use(receiver, env, states, node.lineno,
                                 method)
        arg_ids = [env.get(arg.id) if isinstance(arg, ast.Name)
                   else self._eval(arg, env, states)
                   for arg in node.args]

        protocol = RELEASE_METHODS.get(method)
        if protocol is not None and _in_arity(protocol.releases[method],
                                              npos):
            self._do_release(node, protocol, method, receiver,
                             arg_ids[0] if arg_ids else None, env,
                             states)
            return _NOT_HANDLE

        protocol = ACQUIRE_METHODS.get(method)
        if protocol is not None and _in_arity(protocol.acquires[method],
                                              npos):
            return self._do_acquire(node, protocol, receiver, env,
                                    states)

        if method in CONTEXT_METHODS:
            hid = next(self._ids)
            states[hid] = Handle(protocol=CONTEXT_METHODS[method],
                                 state=MANAGED, line=node.lineno,
                                 receiver=receiver)
            return hid

        # ordinary method call: resolve interprocedurally, else assume
        # the callee takes ownership of handle arguments (conservative)
        resolved = self.program.resolve_call(self.module, method)
        self._apply_summary(node, resolved, env, states,
                            offset=1 if resolved is not None
                            and resolved.is_method else 0,
                            arg_ids=arg_ids)
        if resolved is not None and resolved.returns_fresh is not None:
            return self._fresh_from_summary(resolved, node, receiver,
                                            states)
        return None

    def _eval_name_call(self, node: ast.Call, env: Env,
                        states: States) -> Optional[int]:
        func = node.func
        assert isinstance(func, ast.Name)
        name = func.id
        if name in SAFE_TOKEN_SINKS:
            for arg in node.args:
                if not isinstance(arg, ast.Name):
                    self._eval(arg, env, states)
            return _NOT_HANDLE
        if name in CONSTRUCTORS:
            for arg in node.args:
                self._eval(arg, env, states)
            return None  # _bind records the local receiver
        resolved = self.program.resolve_call(self.module, name)
        if resolved is not None and resolved.is_method:
            resolved = None  # a bare name cannot be a bound method here
        arg_ids = [env.get(arg.id) if isinstance(arg, ast.Name)
                   else self._eval(arg, env, states)
                   for arg in node.args]
        self._apply_summary(node, resolved, env, states, offset=0,
                            arg_ids=arg_ids)
        if resolved is not None and resolved.returns_fresh is not None:
            return self._fresh_from_summary(resolved, node, "", states)
        return None

    def _fresh_from_summary(self, resolved: FunctionInfo, node: ast.Call,
                            receiver: str, states: States) -> int:
        protocol = next((p for p in STATIC_PROTOCOLS
                         if p.name == resolved.returns_fresh), None)
        if protocol is None:  # pragma: no cover - summary invariant
            return _NOT_HANDLE
        hid = next(self._ids)
        states[hid] = Handle(protocol=protocol, state=ACQUIRED,
                             line=node.lineno,
                             receiver=receiver or resolved.qualname)
        return hid

    def _apply_summary(self, node: ast.Call,
                       resolved: Optional[FunctionInfo], env: Env,
                       states: States, *, offset: int,
                       arg_ids: Optional[List[Optional[int]]] = None
                       ) -> None:
        """Propagate a callee's lifecycle effects onto handle arguments.

        An unresolvable callee is assumed to take ownership (escape) —
        the conservative choice that avoids false leak reports.
        ``arg_ids`` carries the already-evaluated handle id per
        positional argument, so handles born inline in an argument
        expression (``sink.push(ledger.reserve(n))``) are covered too."""
        for index, arg in enumerate(node.args):
            if isinstance(arg, ast.Name):
                hid = env.get(arg.id)
                name = arg.id
            elif arg_ids is not None:
                hid = arg_ids[index]
                name = "<expression>"
            else:
                continue
            if hid is None or hid == _NOT_HANDLE or hid not in states:
                continue
            handle = states[hid]
            callee_pos = index + offset
            if handle.state == RELEASED:
                self._use_after_release(handle, name, node.lineno)
                continue
            if resolved is None:
                self._escape_handle(handle)
            elif callee_pos in resolved.releases_params:
                self._release_handle(handle, node.lineno,
                                     via=resolved.qualname)
            elif callee_pos in resolved.escapes_params:
                self._escape_handle(handle)
        for kw in node.keywords:
            if isinstance(kw.value, ast.Name):
                hid = env.get(kw.value.id)
                if hid is not None and hid != _NOT_HANDLE and \
                        hid in states:
                    self._escape_handle(states[hid])

    def _escape_args(self, node: ast.Call, env: Env,
                     states: States) -> None:
        for arg in node.args:
            if isinstance(arg, ast.Name):
                hid = env.get(arg.id)
                if hid is not None and hid != _NOT_HANDLE and \
                        hid in states:
                    self._escape_handle(states[hid])

    def _escape_handle(self, handle: Handle) -> None:
        if handle.state == ACQUIRED:
            handle.state = ESCAPED
        elif handle.state == BORROWED and handle.param_index is not None:
            self.escaped_params.add(handle.param_index)

    def _release_handle(self, handle: Handle, line: int, *,
                        via: str) -> None:
        if handle.state == ACQUIRED:
            self._check_unguarded(handle, line)
            handle.state = RELEASED
            handle.released_line = line
        elif handle.state == BORROWED:
            if handle.param_index is not None:
                self.released_params.add(handle.param_index)
            handle.state = RELEASED
            handle.released_line = line
        elif handle.state == RELEASED:
            self._emit(
                Severity.ERROR, "RES003",
                f"handle released again via {via}() after the release on "
                f"line {handle.released_line} (double release)",
                line,
            )

    def _use_after_release(self, handle: Handle, name: str,
                           line: int) -> None:
        self._emit(
            Severity.ERROR, "RES004",
            f"{name!r} is used after its release on line "
            f"{handle.released_line}; a settled/freed handle is dead",
            line,
        )

    def _check_receiver_use(self, receiver: str, env: Env,
                            states: States, line: int,
                            method: str) -> None:
        """Calling a method *on* a released token is a use (RES004)."""
        root = receiver.split(".", 1)[0]
        hid = env.get(root)
        if hid is None or hid == _NOT_HANDLE or hid not in states:
            return
        handle = states[hid]
        if handle.state == RELEASED and receiver == root:
            self._use_after_release(handle, root, line)

    # -- protocol verbs ----------------------------------------------------
    def _do_release(self, node: ast.Call, protocol: Protocol,
                    method: str, receiver: str, arg_id: Optional[int],
                    env: Env, states: States) -> None:
        self._released_protocols.add(protocol.name)
        if any(kw.arg in protocol.lenient_keywords
               for kw in node.keywords):
            return  # documented idempotent teardown; exempt
        arg = node.args[0] if node.args else None
        if protocol.shape == "token":
            self._release_token(node, protocol, method, arg, arg_id,
                                env, states)
        else:
            self._release_label(node, protocol, method, receiver, arg,
                                env, states)

    def _release_token(self, node: ast.Call, protocol: Protocol,
                       method: str, arg: Optional[ast.expr],
                       arg_id: Optional[int], env: Env,
                       states: States) -> None:
        if not isinstance(arg, ast.Name):
            # releasing a fresh sub-expression (``settle(make())``) or a
            # stored attribute: close the inline handle if we made one
            if arg_id is not None and arg_id != _NOT_HANDLE and \
                    arg_id in states and states[arg_id].state == ACQUIRED:
                states[arg_id].state = RELEASED
                states[arg_id].released_line = node.lineno
            return
        hid = env.get(arg.id)
        if hid is None:
            return  # unknown binding (global, closure): stay silent
        if hid == _NOT_HANDLE:
            self._emit(
                Severity.ERROR, "RES005",
                f"{arg.id!r} passed to {method}() was never acquired "
                f"from a {protocol.name} acquire call",
                node.lineno,
            )
            return
        handle = states.get(hid)
        if handle is None:
            return
        if handle.state in _QUIET:
            return
        if handle.state == RELEASED:
            self._emit(
                Severity.ERROR, "RES003",
                f"{arg.id!r} released again via {method}() after the "
                f"release on line {handle.released_line} "
                f"(double release)",
                node.lineno,
            )
            return
        if handle.state == BORROWED:
            if handle.param_index is not None:
                self.released_params.add(handle.param_index)
            handle.state = RELEASED
            handle.released_line = node.lineno
            return
        if handle.protocol.shape == "token" and \
                handle.protocol.name != protocol.name:
            self._emit(
                Severity.ERROR, "RES005",
                f"{arg.id!r} is a {handle.protocol.name} token but "
                f"{method}() releases {protocol.name} handles",
                node.lineno,
            )
            return
        self._check_unguarded(handle, node.lineno)
        handle.state = RELEASED
        handle.released_line = node.lineno

    def _release_label(self, node: ast.Call, protocol: Protocol,
                       method: str, receiver: str,
                       arg: Optional[ast.expr], env: Env,
                       states: States) -> None:
        label = _literal_str(arg)
        if label is None:
            return  # computed labels are not provably matchable
        key = f"{receiver}::{label}"
        hid = env.get(key)
        handle = states.get(hid) if hid is not None and \
            hid != _NOT_HANDLE else None
        if handle is not None:
            if handle.state == ACQUIRED:
                self._check_unguarded(handle, node.lineno)
                handle.state = RELEASED
                handle.released_line = node.lineno
            elif handle.state == RELEASED:
                self._emit(
                    Severity.ERROR, "RES003",
                    f"label {label!r} freed again via {method}() after "
                    f"the free on line {handle.released_line} "
                    f"(double free)",
                    node.lineno,
                )
            return
        root = receiver.split(".", 1)[0]
        if root in self._local_receivers:
            # the receiver was constructed here and every acquire on it
            # is visible, so this label provably was never allocated
            self._emit(
                Severity.ERROR, "RES005",
                f"label {label!r} freed on locally-constructed "
                f"{receiver} but never allocated there",
                node.lineno,
            )
            return
        # Unknown history on a borrowed receiver: record the release so
        # a *second* free of the same label still flags as double-free.
        hid = next(self._ids)
        env[key] = hid
        states[hid] = Handle(protocol=protocol, state=RELEASED,
                             line=node.lineno, receiver=receiver,
                             label=label,
                             released_line=node.lineno)

    def _do_acquire(self, node: ast.Call, protocol: Protocol,
                    receiver: str, env: Env,
                    states: States) -> Optional[int]:
        if protocol.shape == "token":
            hid = next(self._ids)
            states[hid] = Handle(protocol=protocol, state=ACQUIRED,
                                 line=node.lineno, receiver=receiver)
            return hid
        label = _literal_str(node.args[0] if node.args else None)
        if label is None:
            return _NOT_HANDLE  # computed labels are not tracked
        key = f"{receiver}::{label}"
        hid = env.get(key)
        existing = states.get(hid) if hid is not None and \
            hid != _NOT_HANDLE else None
        if existing is not None:
            # labels accumulate; re-allocation after free is legal
            existing.state = ACQUIRED
            existing.risky = False
            return _NOT_HANDLE
        hid = next(self._ids)
        env[key] = hid
        states[hid] = Handle(protocol=protocol, state=ACQUIRED,
                             line=node.lineno, receiver=receiver,
                             label=label)
        return _NOT_HANDLE

    def _check_unguarded(self, handle: Handle, line: int) -> None:
        """RES002: the acquire..release window contained a call that can
        raise, and this release is not in a ``finally`` block, so the
        exception path leaks."""
        if not handle.risky or self._finally_depth > 0:
            return
        what = (f"label {handle.label!r}" if handle.protocol.shape ==
                "label" else f"{handle.protocol.name} token")
        self._emit(
            Severity.WARNING, "RES002",
            f"{what} acquired on line {handle.line} is released here "
            f"outside any finally block, but calls in between can "
            f"raise; an exception would leak it (wrap in try/finally "
            f"or use the protocol's context manager)",
            line,
        )


#: placeholder protocol for borrowed parameters / generic with-vars
_ANY = Protocol(name="any", shape="token", acquires={}, releases={})


def _join(a: str, b: str) -> str:
    if a == b:
        return a
    if ESCAPED in (a, b) or MANAGED in (a, b):
        return ESCAPED
    return MAYBE


def _in_arity(window: Tuple[int, int], count: int) -> bool:
    low, high = window
    return low <= count <= high


def _terminates(body: List[ast.stmt]) -> bool:
    """True when a block provably leaves the function (early-exit guard
    shape: ``if x is None: raise/return``)."""
    return bool(body) and isinstance(body[-1],
                                     (ast.Raise, ast.Return, ast.Continue,
                                      ast.Break))


def _literal_str(node: Optional[ast.expr]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _decorator_names(node: ast.FunctionDef) -> List[str]:
    names = []
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, ast.Attribute):
            names.append(target.attr)
    return names


def _dotted(node: ast.expr) -> str:
    """``a.b.c`` for an attribute chain rooted at a Name, else ''."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return ""
    parts.append(node.id)
    return ".".join(reversed(parts))


def _copy(states: States) -> States:
    return {hid: handle.copy() for hid, handle in states.items()}


def _scan_files(root: Path) -> List[Path]:
    package_dirs = [root / name for name in LIFECYCLE_PACKAGES
                    if (root / name).is_dir()]
    if package_dirs:
        files: List[Path] = []
        for directory in package_dirs:
            files.extend(directory.rglob("*.py"))
        return sorted(files)
    return sorted(root.rglob("*.py"))


class LifecycleAnalyzer:
    """Builds a :class:`Program` over a tree and checks every function."""

    def __init__(self, root: Path) -> None:
        root = Path(root)
        self.root = root
        self.program = Program()
        for path in _scan_files(root):
            try:
                tree = ast.parse(path.read_text(encoding="utf-8"))
            except (SyntaxError, OSError):
                continue  # SRC000 reports unparseable files
            self.program.add_module(path.relative_to(root).as_posix(),
                                    tree)

    def infer(self) -> None:
        for _ in range(_MAX_ROUNDS):
            if not self.program.infer_round():
                break

    def check(self) -> List[Finding]:
        findings: List[Finding] = []
        for module in self.program.modules:
            for fn in module.functions.values():
                interp = _Interpreter(self.program, module, fn,
                                      collect=True)
                interp.run()
                findings.extend(interp.findings)
        findings.sort(key=lambda f: (f.location, f.code, f.message))
        return findings


def analyze_tree(root: Path) -> List[Finding]:
    """Run the full lifecycle analysis over every module under ``root``."""
    analyzer = LifecycleAnalyzer(root)
    analyzer.infer()
    return analyzer.check()
