"""Resource-lifecycle typestate analysis (the ``RES0xx`` pass family).

:mod:`~repro.analysis.lifecycle.protocols` declares the paired
acquire/release APIs under contract; :mod:`~repro.analysis.lifecycle.
engine` is the interprocedural typestate interpreter; :mod:`~repro.
analysis.lifecycle.passes` registers the ``res-typestate`` pass.  The
runtime counterpart lives in :mod:`repro.sim.leaksan`.
"""

from .engine import LifecycleAnalyzer, analyze_tree
from .protocols import PROTOCOLS, STATIC_PROTOCOLS, Protocol

__all__ = [
    "LifecycleAnalyzer",
    "analyze_tree",
    "PROTOCOLS",
    "STATIC_PROTOCOLS",
    "Protocol",
]
