"""DES liveness diagnostics: name the process that deadlocked.

A discrete-event run that drains its queue while named processes are
still pending is deadlocked — some process yielded a :class:`SimEvent`
nobody triggers, or an :class:`AllOf` with children that can never fire.
The stock failure mode is a silent short run (the executor returns early
with too-small iteration times); these diagnostics turn it into an error
naming the stalled :class:`~repro.sim.engine.Process` and describing what
it is waiting on, using the ``waiting_on`` breadcrumbs the engine keeps.

Relies on :class:`~repro.sim.engine.AnyOf` detaching its callbacks from
losing children once triggered: without that cleanup, an event that lost
a race still carries waiter callbacks and would be reported as awaited.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import SimulationError
from ..sim.engine import AllOf, AnyOf, BaseEvent, Engine, Process, SimEvent, Timeout
from .findings import Finding, Severity
from .registry import claim_codes

claim_codes("des-liveness", ("LIVE001",))


def describe_wait(event: Optional[BaseEvent]) -> str:
    """Human-readable description of what a stalled process awaits."""
    if event is None:
        return "nothing (stalled before its first yield)"
    if isinstance(event, Process):
        return f"process {event.name!r}, itself unfinished"
    if isinstance(event, AllOf):
        pending = event.pending_children
        inner = "; ".join(describe_wait(child) for child in pending[:3])
        return (
            f"an AllOf with {len(pending)}/{event.num_children} children "
            f"pending ({inner})"
        )
    if isinstance(event, AnyOf):
        return f"an AnyOf of {event.num_children} events, none fired"
    if isinstance(event, Timeout):
        return f"a Timeout of {event.delay}s that never fired"
    if isinstance(event, SimEvent):
        return "a SimEvent that was never triggered"
    return f"an untriggered {type(event).__name__}"


def diagnose(engine: Engine) -> List[Finding]:
    """Findings for every process left pending after the queue drained.

    Only meaningful on a fully drained engine: with callbacks still
    queued, pending processes are simply *not finished yet*, so an
    undrained engine yields no findings.
    """
    if engine.peek() is not None:
        return []
    findings = []
    for process in engine.processes:
        if process.triggered:
            continue
        findings.append(Finding(
            "des-liveness", Severity.ERROR, "LIVE001",
            f"process {process.name!r} never finished: the event queue "
            f"drained while it was waiting on "
            f"{describe_wait(process.waiting_on)}",
            subject=process.name,
        ))
    return findings


def check_liveness(engine: Engine) -> None:
    """Raise :class:`SimulationError` if the drained engine deadlocked."""
    findings = diagnose(engine)
    if findings:
        stalled = ", ".join(f.subject for f in findings)
        raise SimulationError(
            f"simulation deadlocked; stalled processes: {stalled}. "
            + " ".join(f.message for f in findings[:3])
        )
