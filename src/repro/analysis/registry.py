"""Plugin registry for static-analysis passes.

A *pass* is a named function from an :class:`~repro.analysis.context.
AnalysisContext` to an iterable of :class:`~repro.analysis.findings.
Finding`s, tagged with a family and a cost class:

* family ``config`` — validates a Strategy x Cluster pairing;
* family ``topology`` — validates the hardware graph on its own;
* family ``faults`` — validates a fault-injection plan against the
  cluster (targets exist, kinds match, events inside the horizon);
* family ``source`` — AST lints over the codebase itself.

``cheap`` passes are safe to run on *every* simulation (the
:func:`repro.core.runner.run_training` hook runs them); expensive or
advisory passes (e.g. static memory-capacity prediction, which duplicates
the runtime OOM signal) only run from ``repro analyze``.

Writing a new pass::

    from repro.analysis.registry import register_pass
    from repro.analysis.findings import Finding, Severity

    @register_pass("my-check", family="config",
                   description="what it validates")
    def my_check(ctx):
        if something_wrong(ctx):
            yield Finding("my-check", Severity.ERROR, "CFG999", "...")

Importing the module that defines the pass registers it; the built-in
pass modules are imported by :mod:`repro.analysis.api`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from ..errors import ConfigurationError
from .context import AnalysisContext
from .findings import Finding

PassFn = Callable[[AnalysisContext], Iterable[Finding]]

FAMILIES = ("config", "topology", "faults", "source")


@dataclass(frozen=True)
class AnalysisPass:
    """One registered pass."""

    name: str
    family: str
    description: str
    cheap: bool
    fn: PassFn

    def run(self, ctx: AnalysisContext) -> List[Finding]:
        return list(self.fn(ctx))


_REGISTRY: Dict[str, AnalysisPass] = {}


def register_pass(name: str, *, family: str, description: str,
                  cheap: bool = True) -> Callable[[PassFn], PassFn]:
    """Decorator registering a pass function under ``name``."""
    if family not in FAMILIES:
        raise ConfigurationError(f"unknown pass family {family!r}")

    def decorate(fn: PassFn) -> PassFn:
        if name in _REGISTRY:
            raise ConfigurationError(f"duplicate pass name {name!r}")
        _REGISTRY[name] = AnalysisPass(
            name=name, family=family, description=description,
            cheap=cheap, fn=fn,
        )
        return fn

    return decorate


def get_pass(name: str) -> AnalysisPass:
    return _REGISTRY[name]


def iter_passes(families: Optional[Iterable[str]] = None, *,
                cheap_only: bool = False) -> Iterator[AnalysisPass]:
    """Registered passes, filtered by family and cost class."""
    wanted = set(families) if families is not None else set(FAMILIES)
    for name in sorted(_REGISTRY):
        p = _REGISTRY[name]
        if p.family not in wanted:
            continue
        if cheap_only and not p.cheap:
            continue
        yield p
