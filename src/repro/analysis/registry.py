"""Plugin registry for static-analysis passes.

A *pass* is a named function from an :class:`~repro.analysis.context.
AnalysisContext` to an iterable of :class:`~repro.analysis.findings.
Finding`s, tagged with a family and a cost class:

* family ``config`` — validates a Strategy x Cluster pairing;
* family ``topology`` — validates the hardware graph on its own;
* family ``faults`` — validates a fault-injection plan against the
  cluster (targets exist, kinds match, events inside the horizon);
* family ``source`` — AST lints over the codebase itself (unit hygiene
  and the ``DET0xx`` nondeterminism-hazard passes);
* family ``dims`` — the interprocedural dimensional analysis
  (``DIM0xx``): a flow-sensitive abstract interpreter enforcing
  byte/second/bandwidth unit algebra across the simulator;
* family ``lifecycle`` — the interprocedural resource-lifecycle
  typestate analysis (``RES0xx``): acquire/release protocol conformance
  for memory pools, bandwidth ledgers, and cache locks.

``cheap`` passes are safe to run on *every* simulation (the
:func:`repro.core.runner.run_training` hook runs them); expensive or
advisory passes (e.g. static memory-capacity prediction, which duplicates
the runtime OOM signal, or the source lints, which walk the whole tree)
only run from ``repro analyze``.

Writing a new pass::

    from repro.analysis.registry import register_pass
    from repro.analysis.findings import Finding, Severity

    @register_pass("my-check", family="config",
                   description="what it validates", codes=("CFG999",))
    def my_check(ctx):
        if something_wrong(ctx):
            yield Finding("my-check", Severity.ERROR, "CFG999", "...")

Importing the module that defines the pass registers it; the built-in
pass modules are imported by :mod:`repro.analysis.api`.

**Finding-code discipline.**  Every stable code (``CFG001``-style) is
claimed by exactly one owner: ``register_pass(codes=...)`` claims codes
for a pass, and dynamic reporters (the schedule sanitizer, the
perturbation differ) claim theirs through :func:`claim_codes`.  A
collision raises at import time, and :func:`self_check` re-verifies the
whole table (codes well-formed and uniquely owned, every family known,
every declared-code pass honest) — the registry's own regression test.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import ConfigurationError
from .context import AnalysisContext
from .findings import Finding

PassFn = Callable[[AnalysisContext], Iterable[Finding]]

FAMILIES = ("config", "topology", "faults", "source", "dims", "lifecycle")

#: Stable finding codes look like ``CFG001`` / ``TOPO020`` / ``DET101``.
_CODE_RE = re.compile(r"^[A-Z]{3,4}\d{3}$")


@dataclass(frozen=True)
class AnalysisPass:
    """One registered pass."""

    name: str
    family: str
    description: str
    cheap: bool
    fn: PassFn
    #: the stable finding codes this pass may emit; enforced by run()
    codes: Tuple[str, ...] = ()

    def run(self, ctx: AnalysisContext) -> List[Finding]:
        findings = list(self.fn(ctx))
        if self.codes:
            for finding in findings:
                if finding.code not in self.codes:
                    raise ConfigurationError(
                        f"pass {self.name!r} emitted undeclared finding "
                        f"code {finding.code!r}; declared: {self.codes}"
                    )
        return findings


_REGISTRY: Dict[str, AnalysisPass] = {}

#: finding code -> owner (pass name or dynamic-reporter name)
_CODE_OWNERS: Dict[str, str] = {}


def claim_codes(owner: str, codes: Iterable[str]) -> None:
    """Claim stable finding codes for ``owner``; collisions raise.

    Re-claiming a code for the same owner is a no-op (module reimports).
    """
    for code in codes:
        if not _CODE_RE.match(code):
            raise ConfigurationError(
                f"malformed finding code {code!r} claimed by {owner!r} "
                f"(want e.g. CFG001 / TOPO020 / DET101)"
            )
        holder = _CODE_OWNERS.get(code)
        if holder is not None and holder != owner:
            raise ConfigurationError(
                f"finding code {code!r} claimed by both {holder!r} "
                f"and {owner!r}"
            )
        _CODE_OWNERS[code] = owner


def code_owners() -> Dict[str, str]:
    """A copy of the finding-code claim table (for diagnostics/tests)."""
    return dict(_CODE_OWNERS)


def register_pass(name: str, *, family: str, description: str,
                  cheap: bool = True,
                  codes: Tuple[str, ...] = ()) -> Callable[[PassFn], PassFn]:
    """Decorator registering a pass function under ``name``."""
    if family not in FAMILIES:
        raise ConfigurationError(f"unknown pass family {family!r}")

    def decorate(fn: PassFn) -> PassFn:
        if name in _REGISTRY:
            raise ConfigurationError(f"duplicate pass name {name!r}")
        claim_codes(name, codes)
        _REGISTRY[name] = AnalysisPass(
            name=name, family=family, description=description,
            cheap=cheap, fn=fn, codes=codes,
        )
        return fn

    return decorate


def get_pass(name: str) -> AnalysisPass:
    return _REGISTRY[name]


def iter_passes(families: Optional[Iterable[str]] = None, *,
                cheap_only: bool = False) -> Iterator[AnalysisPass]:
    """Registered passes, filtered by family and cost class."""
    wanted = set(families) if families is not None else set(FAMILIES)
    for name in sorted(_REGISTRY):
        p = _REGISTRY[name]
        if p.family not in wanted:
            continue
        if cheap_only and not p.cheap:
            continue
        yield p


def self_check() -> Dict[str, object]:
    """Validate the registry's internal consistency; raise on violation.

    Checks, in order:

    * every registered pass belongs to a known family;
    * every declared finding code is well-formed and claimed by exactly
      one owner (pass-declared codes must match the claim table);
    * no two passes share a finding code.

    Returns a small summary (pass/code counts) for reporting.
    """
    for p in _REGISTRY.values():
        if p.family not in FAMILIES:
            raise ConfigurationError(
                f"pass {p.name!r} has unknown family {p.family!r}"
            )
        for code in p.codes:
            if not _CODE_RE.match(code):
                raise ConfigurationError(
                    f"pass {p.name!r} declares malformed code {code!r}"
                )
            owner = _CODE_OWNERS.get(code)
            if owner != p.name:
                raise ConfigurationError(
                    f"pass {p.name!r} declares code {code!r} but the "
                    f"claim table says it belongs to {owner!r}"
                )
    return {
        "passes": len(_REGISTRY),
        "claimed_codes": len(_CODE_OWNERS),
        "families": sorted({p.family for p in _REGISTRY.values()}),
    }
