"""Pre-run static analysis: config/topology lints, DES liveness, source
hygiene, the determinism race detector, the interprocedural dimensional
analysis (``DIM0xx``), and the resource-lifecycle typestate passes
(``RES0xx``).

See DESIGN.md ("Static analysis" and "Determinism guarantees") for the
pass catalog and how to write a new pass.  The CLI front end is ``repro
analyze``; the perturbation differ lives in
:mod:`repro.analysis.determinism.differ` (imported explicitly, not
here — it needs the training runner).
"""

from .api import (
    DEFAULT_SOURCE_ROOT,
    analyze_dimensions,
    analyze_lifecycle,
    analyze_run_config,
    analyze_source,
    run_passes,
)
from .baseline import (
    BaselineEntry,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .context import AnalysisContext
from .determinism import sanitizer_findings
from .findings import Finding, Report, Severity
from .liveness import check_liveness, diagnose
from .registry import (
    AnalysisPass,
    claim_codes,
    code_owners,
    iter_passes,
    register_pass,
    self_check,
)
from .reporters import render_json, render_text

__all__ = [
    "AnalysisContext",
    "AnalysisPass",
    "BaselineEntry",
    "DEFAULT_SOURCE_ROOT",
    "Finding",
    "Report",
    "Severity",
    "analyze_dimensions",
    "analyze_lifecycle",
    "analyze_run_config",
    "analyze_source",
    "apply_baseline",
    "check_liveness",
    "claim_codes",
    "code_owners",
    "diagnose",
    "iter_passes",
    "load_baseline",
    "register_pass",
    "render_json",
    "render_text",
    "run_passes",
    "sanitizer_findings",
    "self_check",
    "write_baseline",
]
