"""Pre-run static analysis: config/topology lints, DES liveness, source hygiene.

See DESIGN.md ("Static analysis") for the pass catalog and how to write a
new pass.  The CLI front end is ``repro analyze``.
"""

from .api import (
    DEFAULT_SOURCE_ROOT,
    analyze_run_config,
    analyze_source,
    run_passes,
)
from .context import AnalysisContext
from .findings import Finding, Report, Severity
from .liveness import check_liveness, diagnose
from .registry import AnalysisPass, iter_passes, register_pass
from .reporters import render_json, render_text

__all__ = [
    "AnalysisContext",
    "AnalysisPass",
    "DEFAULT_SOURCE_ROOT",
    "Finding",
    "Report",
    "Severity",
    "analyze_run_config",
    "analyze_source",
    "check_liveness",
    "diagnose",
    "iter_passes",
    "register_pass",
    "render_json",
    "render_text",
    "run_passes",
]
