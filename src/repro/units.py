"""Units and physical constants used throughout the simulator.

The simulator's canonical units are:

* time      — seconds (float)
* data size — bytes (float; fractional bytes are fine for rate math)
* bandwidth — bytes per second
* compute   — floating-point operations (FLOPs) and FLOP/s

Helpers here convert the paper's units (GBps, GT/s, TFLOP/s, microseconds)
into canonical units and back.  "GB" follows the paper's convention of
10**9 bytes for bandwidth figures and memory-capacity marketing numbers;
"GiB" (2**30) is available where binary sizes matter.

The ``Bytes``/``Seconds``/``BytesPerSecond``/``Flops``/``FlopsPerSecond``/
``Scalar`` aliases below are unit annotations: at runtime they are plain
``float``, but the dimensional-analysis engine
(:mod:`repro.analysis.dimensions`) reads them off signatures to seed and
check its dimension lattice.  Annotate hot arithmetic with them::

    def transfer_time(self, num_bytes: Bytes) -> Seconds: ...
"""

from __future__ import annotations

# --- unit annotations (plain floats at runtime; see module docstring) ------
Bytes = float
Seconds = float
BytesPerSecond = float
Flops = float
FlopsPerSecond = float
Scalar = float

# --- data sizes -----------------------------------------------------------
KB = 1e3
MB = 1e6
GB = 1e9
TB = 1e12

KIB = 2**10
MIB = 2**20
GIB = 2**30
TIB = 2**40

# --- time ------------------------------------------------------------------
SECOND = 1.0
MS = 1e-3
US = 1e-6
NS = 1e-9

# --- bandwidth -------------------------------------------------------------
GBPS = GB  # bytes/second per "GBps" in the paper
MBPS = MB

# --- compute ---------------------------------------------------------------
GFLOPS = 1e9
TFLOPS = 1e12

# --- datatype sizes (bytes per element) -------------------------------------
FP16_BYTES = 2
BF16_BYTES = 2
FP32_BYTES = 4
FP64_BYTES = 8
ADAM_STATE_BYTES_FP32 = 12  # fp32 master weights + momentum + variance


def gbps(value: float) -> float:
    """Convert a bandwidth expressed in GB/s into bytes/s."""
    return value * GBPS


def to_gbps(bytes_per_second: float) -> float:
    """Convert bytes/s into GB/s for reporting."""
    return bytes_per_second / GBPS


def tflops(value: float) -> float:
    """Convert TFLOP/s into FLOP/s."""
    return value * TFLOPS


def to_tflops(flops_per_second: float) -> float:
    """Convert FLOP/s into TFLOP/s for reporting."""
    return flops_per_second / TFLOPS


def gib(value: float) -> float:
    """Convert GiB into bytes."""
    return value * GIB


def to_gb(num_bytes: float) -> float:
    """Convert bytes into decimal GB for reporting."""
    return num_bytes / GB


def usec(value: float) -> float:
    """Convert microseconds into seconds."""
    return value * US


def to_usec(seconds: float) -> float:
    """Convert seconds into microseconds for reporting."""
    return seconds / US


def billion(value: float) -> float:
    """Express a count given in billions (e.g. model parameters)."""
    return value * 1e9


def to_billion(count: float) -> float:
    """Convert a raw count into billions for reporting."""
    return count / 1e9
