"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An experiment, hardware, or strategy configuration is invalid."""


class TopologyError(ReproError):
    """A route could not be resolved or a device reference is unknown."""


class OutOfMemoryError(ReproError):
    """A training configuration does not fit in the available memory.

    Mirrors CUDA OOM during model-size search: the search treats this as
    "this layer count does not fit" and backs off.
    """

    def __init__(self, message: str, *, device: str = "", required_bytes: float = 0.0,
                 available_bytes: float = 0.0) -> None:
        super().__init__(message)
        self.device = device
        self.required_bytes = required_bytes
        self.available_bytes = available_bytes


class CapabilityError(ReproError):
    """A requested feature is not supported by the selected ZeRO stage.

    E.g. parameter offload requires ZeRO-3 (paper Table I); NVMe offload
    requires ZeRO-3 via ZeRO-Infinity.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class FaultPlanError(ConfigurationError):
    """A fault-injection plan is malformed or references unknown hardware."""


class TransportTimeoutError(ReproError):
    """A collective exhausted its retry budget while its path was dark.

    Raised by the NCCL layer's outage handling (see
    :class:`repro.collectives.nccl.RetryPolicy`): the simulated analog of
    a NCCL communicator abort after ``NCCL_IB_RETRY_CNT``-style retries,
    which in a real fleet kills the training job.
    """
