"""Calibration constants tying the simulator to the paper's testbed.

Everything the analytic hardware model cannot derive from first principles
is concentrated here, each entry annotated with the paper observation it
is calibrated against.  The calibration is deliberately coarse — the goal
is to reproduce the *shape* of every result (who wins, by what rough
factor, where crossovers fall), not testbed-exact numbers.

Two kinds of constants:

* **Throughput** — the attained fraction of A100 Tensor-Core peak for each
  strategy's GEMM mix (DeepSpeed/Megatron kernels differ in fusion and
  GEMM shapes), plus fixed per-iteration host overhead.
* **Memory** — framework buffer allocations (NCCL channels, DeepSpeed
  bucket buffers, Megatron pipeline/logit buffers) that determine where
  the max-model-size search lands (Fig. 6).  These are reverse-engineered
  from the published achieved sizes and documented per entry.
"""

from __future__ import annotations

from dataclasses import dataclass

from .units import GB


@dataclass(frozen=True)
class StrategyCalibration:
    """Per-strategy throughput/memory constants."""

    #: Attained fraction of FP16 Tensor-Core peak during compute phases.
    gemm_efficiency: float
    #: Fixed per-iteration host-side overhead (launches, python, profiler).
    fixed_overhead_s: float
    #: GPU-resident framework buffers, independent of model size.
    gpu_buffer_bytes: float
    #: GPU-resident buffers that scale inversely with data-parallel degree
    #: (partition-sized communication buckets).
    gpu_buffer_bytes_per_dp: float = 0.0
    #: NCCL's attained fraction of stress-test RoCE bandwidth for this
    #: strategy's collective mix.  Large pipelined all-reduces (Megatron)
    #: sustain a higher fraction than bucketed bursty partition traffic
    #: (DDP buckets, ZeRO's reduce/gather paths in DeepSpeed 0.7.1).
    #: Calibrated per strategy against the paper's dual-node Fig. 7-b.
    internode_efficiency: float = 0.35


#: PyTorch DDP with AMP.  Efficiency calibrated to Fig. 7-a's 438 TFLOP/s;
#: buffers cover the DDP reducer's bucket pool.
DDP = StrategyCalibration(
    gemm_efficiency=0.42,
    fixed_overhead_s=0.040,
    gpu_buffer_bytes=2.0 * GB,
    internode_efficiency=0.42,
)

#: Extra GPU bytes per parameter DDP/AMP holds beyond the 16 B mixed-
#: precision states: fp32 gradient working copies (+4 B) and the reducer's
#: flattened fp16 bucket mirror (+2 B).  Calibrated so 1.4 B fits and the
#: grid's next size (2.9 B) does not (Fig. 6-a).
DDP_EXTRA_BYTES_PER_PARAM = 6.0

#: Megatron-LM TP+PP.  Efficiency reflects TP-sharded (narrower) GEMMs;
#: the pipeline bubble is modelled structurally by the schedule.  Buffers:
#: fp32 vocab-parallel logits for in-flight micro-batches, TP all-reduce
#: workspaces, and pipeline send/recv buffers — calibrated so 5.5 B fits a
#: single node and 11.4 B fits two (Fig. 6).
MEGATRON = StrategyCalibration(
    gemm_efficiency=0.39,
    fixed_overhead_s=0.040,
    gpu_buffer_bytes=10.5 * GB,
    gpu_buffer_bytes_per_dp=0.0,
    internode_efficiency=0.64,
)
#: Megatron per-model-parallel-rank buffer term (vocab-parallel logits
#: shrink as mp grows): bytes added = MEGATRON_BUFFER_PER_MP / mp_degree.
MEGATRON_BUFFER_PER_MP = 8.0 * GB
#: Pipeline bubble: fraction of compute time lost to fill/drain with the
#: paper's m = mp in-flight micro-batches (Fig. 5 shows four forward/
#: backward pairs on four GPUs).
MEGATRON_BUBBLE_FRACTION = 0.25

#: DeepSpeed ZeRO stages.  Efficiencies calibrated to Fig. 7-a
#: (391 / 524 / 381 TFLOP/s); buffer terms to the Fig. 6 size boundaries.
ZERO1 = StrategyCalibration(
    gemm_efficiency=0.36,
    fixed_overhead_s=0.040,
    gpu_buffer_bytes=0.3 * GB,
    gpu_buffer_bytes_per_dp=3.2 * GB,   # updated-parameter all-gather bucket
    internode_efficiency=0.28,
)
ZERO2 = StrategyCalibration(
    gemm_efficiency=0.47,
    fixed_overhead_s=0.040,
    gpu_buffer_bytes=0.3 * GB,
    gpu_buffer_bytes_per_dp=28.0 * GB,  # reduce bucket + fp32 partition staging
    internode_efficiency=0.20,
)
ZERO3 = StrategyCalibration(
    gemm_efficiency=0.36,
    fixed_overhead_s=0.040,
    gpu_buffer_bytes=6.0 * GB,          # gathered-parameter working set + prefetch
    gpu_buffer_bytes_per_dp=0.0,
    internode_efficiency=0.45,
)

#: ZeRO-Offload / ZeRO-Infinity variants inherit their base stage's GEMM
#: efficiency; offload data movement is modelled physically.  The paper's
#: offloaded runs keep more GPU memory free for buffers, so the search
#: uses the same buffer constants as the base stage.
OFFLOAD_FIXED_OVERHEAD_S = 0.060

#: GPU-resident buffer pool when model states are offloaded: DeepSpeed
#: shrinks its buckets and keeps pinned staging slabs instead (calibrated
#: so ZeRO-2 (CPU) fits 14.2 B on one node but not the grid's 20.6 B,
#: Fig. 13-a).
OFFLOAD_GPU_BUFFER_BYTES = 4.0 * GB

#: Host-DRAM staging for ZeRO-Infinity *parameter* offload beyond the
#: optimizer staging: pinned fp16 parameter slabs for the aio layer
#: (calibrated to Fig. 11-b's 488 GB host usage at 11.4 B parameters).
NVME_PARAM_HOST_STAGING_BYTES_PER_PARAM = 17.0

#: Fraction of the socket's streaming DRAM bandwidth DeepSpeed's AVX CPU
#: Adam attains while two ranks share one socket.  Well below 1: the
#: paper observes the offload engine is NUMA-unaware ("the offloading
#: mechanism may not take into account the topology of the platform",
#: Section V-A3), so optimizer streams cross NUMA domains and the xGMI
#: link instead of staying channel-local.  Calibrated to Fig. 11-a's
#: 191 TFLOP/s for ZeRO-2 (CPU) at 11.4 B parameters.
CPU_ADAM_SHARE_EFFICIENCY = 0.40

#: Fraction of a socket's DRAM the kernel allows as page-locked (pinned)
#: allocations for DeepSpeed's aio staging.  This — not total DRAM — is
#: what stops ZeRO-Infinity's model growth on the paper's nodes
#: (calibrated so the single-node maximum lands at ~33 B parameters,
#: Fig. 13-a).
PINNED_MEMORY_FRACTION = 0.68

#: Memory-plan labels that count against the pinned ceiling.
PINNED_LABELS = frozenset({"pinned_buffers", "nvme_staging", "param_staging"})

#: Host-DRAM bytes DeepSpeed pins per offloaded parameter beyond the fp32
#: optimizer partition itself: fp32 gradient staging + double buffers for
#: overlapping PCIe traffic (paper Section V-A2 explains the 39.5 % extra
#: total memory vs. Megatron as "double buffers").
CPU_OFFLOAD_PINNED_BYTES_PER_PARAM = 12.0

#: NVMe swap traffic per parameter per iteration with optimizer offload:
#: the fp32 optimizer partition is read and written back each step, but
#: DeepSpeed's swapper holds a slice pinned in host DRAM, so the observed
#: media traffic is ~half of the naive 24 B (calibrated to Table VI's
#: PCIe-NVME averages and Fig. 11-a throughputs).
NVME_SWAP_READ_BYTES_PER_PARAM = 6.0
NVME_SWAP_WRITE_BYTES_PER_PARAM = 6.0
#: Additional NVMe traffic per parameter with parameter offload (fp16
#: weights in for forward and backward, updated weights out).
NVME_PARAM_READ_BYTES_PER_PARAM = 4.0
NVME_PARAM_WRITE_BYTES_PER_PARAM = 2.0
#: ZeRO-Infinity's host staging tier is a pool of *fixed-size* pinned aio
#: buffers, not proportional to the model: the paper's host usage grows
#: only ~5 B/param between its 11.4 B and 33.3 B runs while staging stays
#: ~constant (Figs. 11-b and 13-c).  Slab sizes calibrated to 317 GB
#: (optimizer-only) and 488 GB (optimizer+parameter) host usage at 11.4 B.
NVME_STAGING_SLAB_BYTES = 63.0 * GB      # per rank, optimizer swapper
NVME_PARAM_STAGING_SLAB_BYTES = 43.0 * GB  # per rank, parameter swapper
NVME_MEDIA_OVERPROVISION = 1.15  # swap-file slack on the volume

#: Host background activity visible in the paper's counters even when all
#: model states live on GPU (Section IV-E1 reports 1.5-3.5 GB/s DRAM and
#: sub-GB/s xGMI averages): data-loader workers, pinned-buffer refills,
#: NCCL host proxies, and OS noise.  Charged per socket / per node for
#: the duration of the run.
HOST_BACKGROUND_DRAM_BYTES_PER_S = 1.1e9   # per socket
HOST_BACKGROUND_XGMI_BYTES_PER_S = 0.20e9  # per node
#: Input-batch staging traffic per rank per iteration (token ids plus the
#: pinned-memory bounce buffer), visible on the PCIe-GPU roots.
INPUT_STAGING_BYTES_PER_ITERATION = 100e6

#: Baseline host memory per node unrelated to model states: OS, CUDA/NCCL
#: runtime, dataset cache (paper Section IV-D: 18-25 GB per node).
HOST_BASE_BYTES_PER_NODE = 20.0 * GB

#: Efficiency of DeepSpeed's async-IO (aio) layer relative to raw media
#: bandwidth (queue management, alignment, pinned-buffer copies).
AIO_EFFICIENCY = 0.85

