"""Distributed batch loader (DistributedSampler analog).

Shards a dataset across data-parallel ranks and yields per-rank
micro-batches of shape ``(micro_batch, seq_length)`` — the data-side
counterpart of the per-GPU batch size 16 the paper fixes.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from ..errors import ConfigurationError
from .dataset import LmDataset


class DistributedBatchLoader:
    """Round-robin sharded, optionally shuffled micro-batch iterator."""

    def __init__(self, dataset: LmDataset, *, micro_batch: int, rank: int,
                 world_size: int, shuffle: bool = True, seed: int = 0) -> None:
        if world_size < 1:
            raise ConfigurationError("world_size must be >= 1")
        if not 0 <= rank < world_size:
            raise ConfigurationError("rank out of range")
        if micro_batch < 1:
            raise ConfigurationError("micro_batch must be >= 1")
        self.dataset = dataset
        self.micro_batch = micro_batch
        self.rank = rank
        self.world_size = world_size
        self.shuffle = shuffle
        self.seed = seed
        self.epoch = 0

    def set_epoch(self, epoch: int) -> None:
        """Reshuffle deterministically per epoch (DistributedSampler API)."""
        self.epoch = epoch

    def _rank_indices(self) -> List[int]:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            rng = np.random.default_rng((self.seed, self.epoch))
            rng.shuffle(indices)
        # Drop the ragged tail so every rank sees the same batch count.
        usable = (len(indices) // (self.world_size * self.micro_batch)
                  * self.world_size * self.micro_batch)
        indices = indices[:usable]
        return list(indices[self.rank::self.world_size])

    @property
    def batches_per_epoch(self) -> int:
        return len(self.dataset) // (self.world_size * self.micro_batch)

    def __iter__(self) -> Iterator[np.ndarray]:
        mine = self._rank_indices()
        for start in range(0, len(mine), self.micro_batch):
            chunk = mine[start:start + self.micro_batch]
            if len(chunk) < self.micro_batch:
                break
            yield np.stack([self.dataset[i] for i in chunk])
