"""Language-model dataset: tokenized corpus packed into fixed windows.

Documents are tokenized, joined with EOS separators, and chunked into
``seq_length``-token samples — the standard GPT-2 pre-training packing
the paper's training scripts use.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

from ..errors import ConfigurationError
from .corpus import SyntheticCorpus
from .tokenizer import Tokenizer


class LmDataset:
    """Fixed-window language-modelling samples over a token stream."""

    def __init__(self, tokens: Sequence[int], seq_length: int) -> None:
        if seq_length < 2:
            raise ConfigurationError("seq_length must be at least 2")
        if len(tokens) < seq_length:
            raise ConfigurationError(
                f"token stream ({len(tokens)}) shorter than one window "
                f"({seq_length})"
            )
        self._tokens = np.asarray(tokens, dtype=np.int64)
        self.seq_length = seq_length

    @classmethod
    def from_corpus(cls, corpus: SyntheticCorpus, tokenizer: Tokenizer, *,
                    num_articles: int, seq_length: int) -> "LmDataset":
        tokens: List[int] = []
        for article in corpus.articles(num_articles):
            tokens.extend(tokenizer.encode(article.text, add_eos=True))
        return cls(tokens, seq_length)

    def __len__(self) -> int:
        return len(self._tokens) // self.seq_length

    def __getitem__(self, index: int) -> np.ndarray:
        if not 0 <= index < len(self):
            raise IndexError(index)
        start = index * self.seq_length
        return self._tokens[start:start + self.seq_length]

    @property
    def total_tokens(self) -> int:
        return len(self) * self.seq_length

    def __iter__(self) -> Iterator[np.ndarray]:
        for index in range(len(self)):
            yield self[index]
