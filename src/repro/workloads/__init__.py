"""Training workload: synthetic corpus, tokenizer, dataset, loader."""

from .corpus import Article, SyntheticCorpus
from .dataset import LmDataset
from .loader import DistributedBatchLoader
from .tokenizer import EOS_TOKEN, PAD_TOKEN, SPECIAL_TOKENS, UNK_TOKEN, Tokenizer

__all__ = [
    "Article",
    "DistributedBatchLoader",
    "EOS_TOKEN",
    "LmDataset",
    "PAD_TOKEN",
    "SPECIAL_TOKENS",
    "SyntheticCorpus",
    "Tokenizer",
    "UNK_TOKEN",
]
