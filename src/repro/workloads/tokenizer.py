"""Word-piece tokenizer for the synthetic corpus.

A small trainable tokenizer standing in for GPT-2's BPE: the vocabulary
is learned from corpus frequency (most frequent whole words, then
character fallback), capped at the model's vocabulary size.  It is
deterministic, reversible on its own output, and fast enough for the
examples and tests.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List

from ..errors import ConfigurationError

PAD_TOKEN = "<pad>"
UNK_TOKEN = "<unk>"
EOS_TOKEN = "<eos>"
SPECIAL_TOKENS = (PAD_TOKEN, UNK_TOKEN, EOS_TOKEN)


class Tokenizer:
    """Frequency-trained word tokenizer with character-level fallback."""

    def __init__(self, vocab: Dict[str, int]) -> None:
        for token in SPECIAL_TOKENS:
            if token not in vocab:
                raise ConfigurationError(f"vocab is missing {token!r}")
        self._token_to_id = dict(vocab)
        self._id_to_token = {i: t for t, i in vocab.items()}
        if len(self._id_to_token) != len(self._token_to_id):
            raise ConfigurationError("vocab ids must be unique")

    # -- construction --------------------------------------------------------
    @classmethod
    def train(cls, texts: Iterable[str], *, vocab_size: int = 8192) -> "Tokenizer":
        """Learn a vocabulary from raw text."""
        if vocab_size < len(SPECIAL_TOKENS) + 64:
            raise ConfigurationError("vocab_size too small")
        counts: Counter = Counter()
        chars: Counter = Counter()
        for text in texts:
            for word in text.lower().split():
                word = word.strip(".,;:!?\"'()")
                if word:
                    counts[word] += 1
                    chars.update(word)
        vocab: Dict[str, int] = {t: i for i, t in enumerate(SPECIAL_TOKENS)}
        for ch, _ in chars.most_common():
            if len(vocab) >= vocab_size:
                break
            key = f"#{ch}"
            if key not in vocab:
                vocab[key] = len(vocab)
        for word, _ in counts.most_common():
            if len(vocab) >= vocab_size:
                break
            if word not in vocab:
                vocab[word] = len(vocab)
        return cls(vocab)

    # -- properties ------------------------------------------------------------
    @property
    def vocab_size(self) -> int:
        return len(self._token_to_id)

    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD_TOKEN]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK_TOKEN]

    @property
    def eos_id(self) -> int:
        return self._token_to_id[EOS_TOKEN]

    # -- coding ------------------------------------------------------------------
    def encode(self, text: str, *, add_eos: bool = False) -> List[int]:
        ids: List[int] = []
        for word in text.lower().split():
            word = word.strip(".,;:!?\"'()")
            if not word:
                continue
            token_id = self._token_to_id.get(word)
            if token_id is not None:
                ids.append(token_id)
                continue
            # character fallback
            for ch in word:
                ids.append(self._token_to_id.get(f"#{ch}", self.unk_id))
        if add_eos:
            ids.append(self.eos_id)
        return ids

    def decode(self, ids: Iterable[int]) -> str:
        parts: List[str] = []
        for token_id in ids:
            token = self._id_to_token.get(int(token_id), UNK_TOKEN)
            if token in (PAD_TOKEN, EOS_TOKEN):
                continue
            parts.append(token[1:] if token.startswith("#") else token)
        return " ".join(parts)
