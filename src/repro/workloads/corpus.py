"""Synthetic Wikipedia-like corpus generator.

The paper trains on a Wikipedia dump extracted with WikiExtractor
(Section III-B2).  Offline we synthesize a statistically similar corpus:
articles of heading + paragraphs, with word frequencies following a
Zipfian distribution over a generated lexicon — enough structure to
exercise the tokenizer/dataset/loader path end-to-end with realistic
token statistics.  Generation is fully deterministic under a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from ..errors import ConfigurationError

_CONSONANTS = "bcdfghjklmnprstvwz"
_VOWELS = "aeiou"


def _make_lexicon(rng: np.random.Generator, size: int) -> List[str]:
    """Pronounceable pseudo-words, unique, of 2-12 characters."""
    words = set()
    while len(words) < size:
        syllables = rng.integers(1, 5)
        word = "".join(
            _CONSONANTS[rng.integers(len(_CONSONANTS))]
            + _VOWELS[rng.integers(len(_VOWELS))]
            for _ in range(syllables)
        )
        words.add(word)
    out = sorted(words)
    rng.shuffle(out)
    return out


@dataclass(frozen=True)
class Article:
    """One synthetic article."""

    title: str
    paragraphs: List[str]

    @property
    def text(self) -> str:
        return self.title + "\n\n" + "\n\n".join(self.paragraphs)

    @property
    def word_count(self) -> int:
        return sum(len(p.split()) for p in self.paragraphs)


class SyntheticCorpus:
    """A deterministic stream of Zipf-distributed articles."""

    def __init__(self, *, lexicon_size: int = 5000, zipf_exponent: float = 1.1,
                 seed: int = 0) -> None:
        if lexicon_size < 100:
            raise ConfigurationError("lexicon must have at least 100 words")
        if zipf_exponent <= 1.0:
            raise ConfigurationError("zipf exponent must exceed 1.0")
        self.seed = seed
        rng = np.random.default_rng(seed)
        self.lexicon = _make_lexicon(rng, lexicon_size)
        ranks = np.arange(1, lexicon_size + 1, dtype=float)
        weights = ranks ** (-zipf_exponent)
        self._probs = weights / weights.sum()

    def _words(self, rng: np.random.Generator, count: int) -> List[str]:
        indices = rng.choice(len(self.lexicon), size=count, p=self._probs)
        return [self.lexicon[i] for i in indices]

    def article(self, index: int) -> Article:
        """The ``index``-th article (random-access, deterministic)."""
        rng = np.random.default_rng((self.seed, index))
        title = " ".join(w.capitalize() for w in self._words(rng, int(rng.integers(1, 5))))
        paragraphs = []
        for _ in range(int(rng.integers(2, 8))):
            sentences = []
            for _ in range(int(rng.integers(2, 9))):
                words = self._words(rng, int(rng.integers(5, 25)))
                sentences.append(" ".join(words).capitalize() + ".")
            paragraphs.append(" ".join(sentences))
        return Article(title=title, paragraphs=paragraphs)

    def articles(self, count: int) -> Iterator[Article]:
        for index in range(count):
            yield self.article(index)

    def text(self, num_articles: int) -> str:
        """A WikiExtractor-style concatenated dump."""
        return "\n\n".join(a.text for a in self.articles(num_articles))
