"""The cluster trace: every job's activity on one shared timeline.

Where :func:`~repro.trace.recorder.build_trace` assembles one run's
trace from one executor's result, :func:`build_cluster_trace` assembles
a *service* trace: rank-lane spans from every job's collected timeline
(already mapped to global ranks and prefixed ``job_id:`` by the
service), flow and collective spans from the one shared
:class:`~repro.trace.recorder.TraceRecorder`, and link accounts plus
utilization counter tracks from the shared ledgers — which, because the
ledgers are shared, show *cross-job* contention directly.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..hardware.cluster import Cluster
from ..trace.model import CounterTrack, LinkAccount, Trace
from ..trace.recorder import DEFAULT_COUNTER_SAMPLES, TraceRecorder
from .jobs import JobStore


def build_cluster_trace(cluster: Cluster, store: JobStore,
                        recorder: TraceRecorder, total_time: float, *,
                        meta: Optional[Dict[str, object]] = None,
                        counter_samples: int = DEFAULT_COUNTER_SAMPLES
                        ) -> Trace:
    """Assemble the shared-machine :class:`Trace` for a cluster run."""
    trace = Trace(meta=dict(meta or {}))
    trace.meta.setdefault("total_time", total_time)
    trace.meta.setdefault("jobs", len(store.records))

    for record in store.records:  # submission order: deterministic
        trace.spans.extend(record.spans)

    recorder.drain_open_flows(total_time)
    trace.flows = list(recorder.flows)
    trace.collectives = list(recorder.collectives)

    for link in cluster.topology.links:
        ledger = link.ledger
        if len(ledger) == 0:
            continue
        trace.links.append(LinkAccount(
            name=link.name,
            link_class=str(link.link_class),
            total_bytes=ledger.total_bytes,
            record_count=len(ledger),
            degraded=tuple(ledger.degraded_intervals()),
        ))
        if total_time > 0 and counter_samples > 0:
            trace.counters.append(CounterTrack(
                name=f"link:{link.name}",
                unit="bytes/s",
                start=0.0,
                period=total_time / counter_samples,
                values=tuple(
                    ledger.sample(0.0, total_time, counter_samples)
                ),
            ))

    for rank in range(cluster.num_gpus):
        trace.counters.append(CounterTrack(
            name=f"rank{rank}:device_mem",
            unit="bytes",
            start=0.0,
            period=total_time if total_time > 0 else 1.0,
            values=(cluster.gpu(rank).memory.used_bytes,),
        ))
    return trace
