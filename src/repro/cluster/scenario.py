"""Canonical serializable cluster scenarios (the RunSpec analog).

A :class:`ClusterScenario` pins everything a cluster-service run depends
on — fabric size, scheduling policy, the arrival profile (seeded
Poisson parameters or an explicit trace), aging rate, tie order, and
the observability flags — with the same round-trip and cache-key
contract as :class:`~repro.api.RunSpec`, so campaigns can sweep and
cache cluster runs exactly like training runs.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, List, Mapping, Optional, Tuple

from ..api.spec import TIE_ORDERS, stable_key
from ..errors import ConfigurationError
from .arrivals import JOB_MIXES, Arrival, poisson_arrivals, trace_arrivals
from .daemon import POLICIES


@dataclass(frozen=True)
class ClusterScenario:
    """One cluster-service run, as pure serializable data.

    ``arrivals`` selects the profile: ``"poisson"`` generates
    ``num_jobs`` seeded arrivals at ``rate_per_hour`` from ``mix``;
    ``"trace"`` replays ``trace_jobs`` (tuples of JSON-safe job dicts
    with a ``time`` field) verbatim.
    """

    name: str = "cluster"
    nodes: int = 4
    policy: str = "fifo"
    arrivals: str = "poisson"
    rate_per_hour: float = 1200.0
    num_jobs: int = 12
    arrival_seed: int = 7
    mix: str = "default"
    trace_jobs: Tuple[Dict[str, object], ...] = ()
    #: effective priority grows by this per queued second (0 = no aging)
    aging_rate: float = 0.0
    tie_order: str = "fifo"
    tie_seed: int = 7
    leak_check: bool = False
    trace: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario needs a name")
        if self.nodes < 1:
            raise ConfigurationError("nodes must be >= 1")
        if self.policy not in POLICIES:
            raise ConfigurationError(
                f"unknown policy {self.policy!r} "
                f"(expected one of {POLICIES})"
            )
        if self.arrivals not in ("poisson", "trace"):
            raise ConfigurationError(
                f"unknown arrival profile {self.arrivals!r} "
                f"(expected 'poisson' or 'trace')"
            )
        if self.arrivals == "poisson":
            if self.rate_per_hour <= 0:
                raise ConfigurationError("rate_per_hour must be positive")
            if self.num_jobs < 1:
                raise ConfigurationError("num_jobs must be >= 1")
            if self.mix not in JOB_MIXES:
                raise ConfigurationError(
                    f"unknown job mix {self.mix!r}; "
                    f"known: {sorted(JOB_MIXES)}"
                )
        elif not self.trace_jobs:
            raise ConfigurationError(
                "trace arrivals need at least one trace_jobs entry"
            )
        if self.aging_rate < 0:
            raise ConfigurationError("aging_rate must be >= 0")
        if self.tie_order not in TIE_ORDERS:
            raise ConfigurationError(
                f"unknown tie order {self.tie_order!r} "
                f"(expected one of {TIE_ORDERS})"
            )
        if not isinstance(self.trace_jobs, tuple):
            object.__setattr__(self, "trace_jobs", tuple(
                dict(entry) for entry in self.trace_jobs
            ))

    def expand_arrivals(self) -> List[Arrival]:
        """The scenario's concrete arrival stream, deterministically."""
        if self.arrivals == "poisson":
            return poisson_arrivals(self.rate_per_hour, self.num_jobs,
                                    seed=self.arrival_seed, mix=self.mix)
        return trace_arrivals(self.trace_jobs)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if spec_field.name == "trace_jobs":
                value = [dict(entry) for entry in value]
            payload[spec_field.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ClusterScenario":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown ClusterScenario fields {unknown}; "
                f"known: {sorted(known)}"
            )
        data = dict(payload)
        trace_jobs = data.get("trace_jobs")
        if trace_jobs is not None:
            data["trace_jobs"] = tuple(dict(entry) for entry in trace_jobs)
        try:
            return cls(**data)  # type: ignore[arg-type]
        except TypeError as error:
            raise ConfigurationError(
                f"bad ClusterScenario payload: {error}"
            ) from None

    def cache_key(self, *, salt: Optional[str] = None) -> str:
        """Stable content hash (same contract as ``RunSpec.cache_key``)."""
        return stable_key({"kind": "cluster", "spec": self.to_dict()},
                          salt=salt)

    def replace(self, **changes: object) -> "ClusterScenario":
        return replace(self, **changes)  # type: ignore[arg-type]

    @property
    def label(self) -> str:
        """A short human-readable identity, used for campaign job ids."""
        profile = (f"p{self.rate_per_hour:g}x{self.num_jobs}"
                   if self.arrivals == "poisson"
                   else f"t{len(self.trace_jobs)}")
        return f"{self.name}-{self.policy}-n{self.nodes}-{profile}"
