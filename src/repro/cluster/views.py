"""Job-scoped views over the shared machine.

A scheduled job sees a :class:`ClusterView`: the subset of GPUs the
scheduler allocated it, re-numbered as a dense rank space 0..k-1.  The
view quacks like :class:`~repro.hardware.cluster.Cluster` for every
consumer a job body touches — strategies (``StrategyContext``), the
executor, the NCCL communicator, and the memory-plan walkers — while
all devices, pools, links, and the topology remain the *shared* live
objects, so concurrent jobs contend on the same ledgers.

Allocations are restricted to two shapes that preserve the uniform
``rank // gpus_per_node`` arithmetic the communicator's ring
construction assumes:

* **intra-node**: k GPUs on one node (k <= the node's GPU count) — the
  view reports ``gpus_per_node == k`` and one node;
* **whole-node**: m complete nodes — the view reports the machine's
  real ``gpus_per_node`` and m nodes.

Anything else (e.g. 3 GPUs here plus 5 there) would break ring
adjacency assumptions and is rejected at validation time.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import ConfigurationError, TopologyError
from ..hardware.cluster import Cluster
from ..hardware.node import Node

#: One allocated node: (node index in the shared cluster, GPU indices
#: on that node, in ascending order).
NodeAllocation = Tuple[int, Tuple[int, ...]]


class NodeView:
    """One node as a job sees it: a GPU subset, everything else shared."""

    def __init__(self, node: Node, gpu_indices: Sequence[int]) -> None:
        self._node = node
        self.gpu_indices = tuple(gpu_indices)
        self.gpus = [node.gpus[i] for i in self.gpu_indices]

    def __getattr__(self, name: str):
        return getattr(self._node, name)


class ClusterView:
    """A job's dense rank space over an allocation of the shared machine.

    ``global_gpu_indices`` maps the view's local rank to the machine's
    global rank — what the cluster trace builder uses to place a job's
    timeline spans on the shared timeline.
    """

    def __init__(self, cluster: Cluster,
                 allocation: Sequence[NodeAllocation]) -> None:
        if not allocation:
            raise ConfigurationError("cluster view needs an allocation")
        counts = {len(gpus) for _, gpus in allocation}
        if len(counts) != 1:
            raise ConfigurationError(
                f"allocation is ragged ({sorted(counts)} GPUs per node); "
                f"rank arithmetic needs a uniform count"
            )
        per_node = len(allocation[0][1])
        if per_node < 1:
            raise ConfigurationError("allocation has an empty node")
        if len(allocation) > 1 and per_node != cluster.gpus_per_node:
            raise ConfigurationError(
                "multi-node allocations must take whole nodes "
                f"({per_node} of {cluster.gpus_per_node} GPUs allocated)"
            )
        self.cluster = cluster
        self.allocation = tuple(
            (node_index, tuple(gpus)) for node_index, gpus in allocation
        )
        self.spec = cluster.spec
        self.topology = cluster.topology
        self.switch = cluster.switch
        self.nodes: List[NodeView] = [
            NodeView(cluster.nodes[node_index], gpus)
            for node_index, gpus in self.allocation
        ]
        self._gpus_per_node = per_node
        self.global_gpu_indices: Tuple[int, ...] = tuple(
            node_index * cluster.gpus_per_node + gpu_index
            for node_index, gpus in self.allocation
            for gpu_index in gpus
        )

    # -- Cluster protocol ------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def gpus_per_node(self) -> int:
        return self._gpus_per_node

    @property
    def num_gpus(self) -> int:
        return len(self.global_gpu_indices)

    def all_gpus(self):
        return [gpu for node in self.nodes for gpu in node.gpus]

    def gpu(self, rank: int):
        if not 0 <= rank < self.num_gpus:
            raise TopologyError(
                f"GPU rank {rank} out of range (0..{self.num_gpus - 1})"
            )
        node = self.nodes[rank // self._gpus_per_node]
        return node.gpus[rank % self._gpus_per_node]

    def node_of_rank(self, rank: int) -> NodeView:
        if not 0 <= rank < self.num_gpus:
            raise TopologyError(
                f"GPU rank {rank} out of range (0..{self.num_gpus - 1})"
            )
        return self.nodes[rank // self._gpus_per_node]

    def dram_for_rank(self, rank: int):
        node = self.node_of_rank(rank)
        gpu = self.gpu(rank)
        return node.drams[gpu.socket_index or 0]

    def global_rank(self, rank: int) -> int:
        """The shared machine's rank for the view's local rank."""
        return self.global_gpu_indices[rank]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ClusterView({self.num_gpus} GPUs over "
                f"{self.num_nodes} node(s): {self.allocation})")


def probe_view(cluster: Cluster, gpus: int) -> ClusterView:
    """A hypothetical view of ``gpus`` GPUs, for pre-admission planning.

    Pools are uniform across the machine, so a memory plan computed on
    this canonical shape (first k GPUs of node 0, or the first m whole
    nodes) equals the plan for any legal allocation of the same size.
    """
    per_node = cluster.gpus_per_node
    if gpus <= per_node:
        return ClusterView(cluster, [(0, tuple(range(gpus)))])
    if gpus % per_node:
        raise ConfigurationError(
            f"a {gpus}-GPU job neither fits one node "
            f"({per_node} GPUs) nor takes whole nodes"
        )
    num_nodes = gpus // per_node
    if num_nodes > cluster.num_nodes:
        raise ConfigurationError(
            f"a {gpus}-GPU job needs {num_nodes} nodes; "
            f"the cluster has {cluster.num_nodes}"
        )
    return ClusterView(cluster, [
        (node_index, tuple(range(per_node)))
        for node_index in range(num_nodes)
    ])
