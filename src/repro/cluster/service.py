"""Wire it all together: one engine, one network, many job bodies.

:func:`run_cluster` builds the shared machine (a parametric N-node
:class:`~repro.hardware.cluster.Cluster`), one
:class:`~repro.sim.engine.Engine`, and one
:class:`~repro.sim.flows.FlowNetwork`, schedules the scenario's
arrivals, and runs the :class:`~repro.cluster.daemon.SchedulerDaemon`
as a process among the job bodies.  Each granted job runs the existing
:class:`~repro.runtime.executor.Executor` as a generator
(:meth:`~repro.runtime.executor.Executor.execute`) against its
:class:`~repro.cluster.views.ClusterView`, with ``flow_tag=f"{job}/"``
so every flow in the shared ledgers and trace is attributable.

Ledger ownership: the *service* owns the shared network's recorder and
leak-sanitizer hooks and the pools' observers; job bodies only charge
and release their own job-prefixed memory-plan labels through the
existing :func:`~repro.core.runner.apply_memory_plan` /
:func:`~repro.core.runner.release_memory_plan` walkers, so the
byte-conservation audit covers the whole multi-job run.

Hybrid fidelity per job: the body simulates the measured window and,
once steady, *holds* its resources for the extrapolated remainder via a
timeout raced against the preemption event — occupancy and GPU-second
accounting stay exact while the event count stays small.  (Unlike
single-job hybrid runs, the analytic window does not replay link
traffic; the cluster report's contention figures come from the
simulated windows.)
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..analysis.liveness import check_liveness
from ..collectives.nccl import NcclCommunicator
from ..core.runner import apply_memory_plan, release_memory_plan
from ..core.search import model_for_billions
from ..errors import ConfigurationError, OutOfMemoryError
from ..experiments.common import make_strategy
from ..hardware.cluster import Cluster, ClusterSpec
from ..model.config import TrainingConfig
from ..parallel.strategy import MemoryPlan, StrategyContext
from ..runtime.executor import Executor
from ..sim.engine import Engine, ReversedTies, SeededTies, TieOrder
from ..sim.fastpath import hybrid_simulated_iterations, is_steady
from ..sim.flows import FlowNetwork
from ..sim.leaksan import LeakReport, LeakSanitizer
from ..trace.model import Span, Trace
from ..units import GIB
from ..trace.recorder import TraceRecorder
from .daemon import SchedulerDaemon, checkpoint_seconds
from .jobs import JobRecord, JobSpec, JobStore
from .report import ClusterReport, build_report
from .scenario import ClusterScenario
from .trace import build_cluster_trace
from .views import ClusterView, probe_view


@dataclass
class ClusterRun:
    """Everything one cluster-service run produced."""

    report: ClusterReport
    trace: Optional[Trace] = None

    @property
    def leaks(self) -> Optional[LeakReport]:
        return self.report.leaks


class _JobCollectives:
    """Per-job recorder facade: tags collective phases with the job id.

    Flow spans come from the shared network recorder (already
    job-tagged via ``flow_tag``); collective phases are reported by the
    executor's gates with job-local comm names and ranks, so this shim
    prefixes the comm and maps ranks to the shared machine before
    forwarding to the shared recorder.
    """

    def __init__(self, job_id: str, view: ClusterView,
                 sink: TraceRecorder) -> None:
        self.job_id = job_id
        self.view = view
        self.sink = sink

    def collective_phase(self, comm: str, group_index: int, kind: str,
                         payload_bytes: float, launch_count: int,
                         ranks: Tuple[int, ...], start: float,
                         end: float) -> None:
        self.sink.collective_phase(
            f"{self.job_id}:{comm}", group_index, kind, payload_bytes,
            launch_count,
            tuple(self.view.global_rank(rank) for rank in ranks),
            start, end,
        )


def _build_tie_order(scenario: ClusterScenario) -> Optional[TieOrder]:
    if scenario.tie_order == "reversed":
        return ReversedTies()
    if scenario.tie_order == "seeded":
        return SeededTies(scenario.tie_seed)
    return None  # fifo: the engine default


class _ClusterService:
    """The live run state shared by arrivals, daemon, and job bodies."""

    def __init__(self, scenario: ClusterScenario, cluster: Cluster,
                 engine: Engine, network: FlowNetwork,
                 recorder: Optional[TraceRecorder]) -> None:
        self.scenario = scenario
        self.cluster = cluster
        self.engine = engine
        self.network = network
        self.recorder = recorder
        self.store = JobStore()
        #: memoized per-rank memory plans; pools are uniform, so the
        #: plan depends only on the workload and allocation size
        self._plans: Dict[Tuple[object, ...], MemoryPlan] = {}
        self.daemon: Optional[SchedulerDaemon] = None

    # -- planning --------------------------------------------------------------
    def demand_plan(self, record: JobRecord) -> MemoryPlan:
        return self.plan_for(record.spec)

    def plan_for(self, spec: JobSpec) -> MemoryPlan:
        key = (spec.workload, spec.strategy, spec.size_billions, spec.gpus,
               spec.micro_batch_per_gpu, spec.request_mix,
               spec.max_batch_tokens)
        plan = self._plans.get(key)
        if plan is None:
            if spec.workload == "inference":
                plan = self._serving_plan(spec)
            else:
                view = probe_view(self.cluster, spec.gpus)
                ctx = StrategyContext(
                    view, model_for_billions(spec.size_billions),
                    TrainingConfig(
                        micro_batch_per_gpu=spec.micro_batch_per_gpu),
                )
                plan = make_strategy(spec.strategy).memory_plan(ctx)
                if plan.nvme:
                    raise ConfigurationError(
                        f"job strategy {spec.strategy!r} plans NVMe "
                        f"residency; not schedulable on the shared service"
                    )
            self._plans[key] = plan
        return plan

    def _serving_plan(self, spec: JobSpec) -> MemoryPlan:
        """Per-rank demand of an inference job: weights + KV budget.

        The KV budget is sized so the token-level admission cap
        (``max_batch_tokens``) is the binding constraint: with the
        reserve-max policy a batch can never hold more than
        ``max_batch_tokens`` of context, so that many tokens of KV per
        rank is exactly enough for the cache never to block admission.
        Also front-loads the traffic-shape validation (mix name, every
        template admissible) so the daemon never waits on a job that
        could not serve a single request.
        """
        from ..inference.costmodel import PhaseCostModel
        from ..inference.requests import REQUEST_MIXES

        config = model_for_billions(spec.size_billions)
        if config.num_heads % spec.gpus:
            raise ConfigurationError(
                f"job {spec.name!r}: tensor parallelism needs gpus to "
                f"divide num_heads ({spec.gpus} does not divide "
                f"{config.num_heads})"
            )
        templates = REQUEST_MIXES.get(spec.request_mix)
        if templates is None:
            raise ConfigurationError(
                f"job {spec.name!r}: unknown request mix "
                f"{spec.request_mix!r}; known: {sorted(REQUEST_MIXES)}"
            )
        largest = max(template["prompt_tokens"] + template["output_tokens"]
                      for _, template in templates)
        if largest > spec.max_batch_tokens:
            raise ConfigurationError(
                f"job {spec.name!r}: mix {spec.request_mix!r} can draw a "
                f"{largest}-token request but max_batch_tokens is "
                f"{spec.max_batch_tokens}; it could never be admitted"
            )
        if largest > config.max_position_embeddings:
            raise ConfigurationError(
                f"job {spec.name!r}: mix {spec.request_mix!r} can draw a "
                f"{largest}-token context; the model serves at most "
                f"{config.max_position_embeddings}"
            )
        cost = PhaseCostModel(
            config, self.cluster.nodes[0].spec.gpu,
            tensor_parallel=spec.gpus,
        )
        return MemoryPlan(gpu={
            "weights": cost.weight_bytes_per_rank,
            "kv_budget": spec.max_batch_tokens * cost.kv_token_bytes_per_rank,
        })

    def validate(self, specs: List[JobSpec]) -> None:
        """Reject arrivals no schedule could ever place.

        Every job must fit an *empty* fabric (GPU shape and per-pool
        capacity); otherwise the daemon would wait on it forever and
        the run could never terminate.
        """
        for spec in specs:
            view = probe_view(self.cluster, spec.gpus)  # shape check
            plan = self.plan_for(spec)
            needed: Dict[int, float] = {}
            capacity: Dict[int, float] = {}
            for rank in range(view.num_gpus):
                for pool, amount in (
                        (view.gpu(rank).memory, plan.gpu_total),
                        (view.dram_for_rank(rank).memory, plan.cpu_total)):
                    capacity[id(pool)] = pool.capacity_bytes
                    needed[id(pool)] = needed.get(id(pool), 0.0) + amount
            for key, amount in needed.items():
                if amount > capacity[key] + 1e-6:
                    raise ConfigurationError(
                        f"job {spec.name!r} ({spec.strategy}, "
                        f"{spec.size_billions}B on {spec.gpus} GPUs) can "
                        f"never fit: needs {amount / GIB:.1f} GiB of a "
                        f"{capacity[key] / GIB:.1f} GiB pool"
                    )

    # -- arrival callback ------------------------------------------------------
    def submit(self, spec: JobSpec) -> None:
        record = self.store.submit(spec, self.engine.now)
        assert self.daemon is not None
        self.daemon.submit(record)

    # -- job execution ---------------------------------------------------------
    def launch(self, record: JobRecord, view: ClusterView) -> None:
        self.engine.process(self._job_body(record, view),
                            name=f"{record.job_id}/body")

    def _job_body(self, record: JobRecord, view: ClusterView):
        if record.spec.workload == "inference":
            yield from self._serving_body(record, view)
            return
        engine = self.engine
        store = self.store
        daemon = self.daemon
        assert daemon is not None
        spec = record.spec
        job = record.job_id
        strategy = make_strategy(spec.strategy)
        model = model_for_billions(spec.size_billions)
        training = TrainingConfig(micro_batch_per_gpu=spec.micro_batch_per_gpu)
        ctx = StrategyContext(view, model, training)
        plan = strategy.memory_plan(ctx)
        prefixed = MemoryPlan(
            gpu={f"{job}/{label}": num_bytes
                 for label, num_bytes in plan.gpu.items()},
            cpu={f"{job}/{label}": num_bytes
                 for label, num_bytes in plan.cpu.items()},
        )
        try:
            apply_memory_plan(view, prefixed)
        except OutOfMemoryError as error:
            # The daemon's admission check makes this unreachable under
            # normal operation; kept as a terminal state, not a crash.
            store.mark_failed(record, engine.now, str(error))
            daemon.job_failed(record)
            return
        segment_start = engine.now
        record.preempt_event = engine.event()
        if record.completed_iterations:
            # Restart after preemption: restore the checkpoint before
            # training resumes, on the preempted tenant's bill.
            restore = checkpoint_seconds(plan)
            store.charge_checkpoint(record, restore)
            yield engine.timeout(restore)
        remaining = record.remaining_iterations
        sim_iterations = remaining
        if spec.fidelity == "hybrid":
            measured = hybrid_simulated_iterations(
                remaining, spec.warmup_iterations)
            if measured < remaining:
                sim_iterations = measured
        executor = Executor(
            view, strategy.build_schedule(ctx),
            traffic_profile=strategy.traffic_profile,
            internode_rate_efficiency=(
                strategy.calibration.internode_efficiency),
            engine=engine,
            network=self.network,
            flow_tag=f"{job}/",
            trace_recorder=(
                _JobCollectives(job, view, self.recorder)
                if self.recorder is not None else None),
        )
        result = yield from executor.execute(
            sim_iterations,
            should_stop=lambda: record.preempt_requested,
        )
        completed = len(result.iteration_times)
        record.completed_iterations += completed
        if (sim_iterations < remaining
                and completed == sim_iterations
                and not record.preempt_requested
                and is_steady(result.iteration_times,
                              spec.warmup_iterations)):
            # Steady: hold the allocation for the analytic remainder,
            # but stay preemptible throughout the hold.
            period = result.iteration_times[-1]
            extra = remaining - sim_iterations
            hold_start = engine.now
            yield engine.any_of([
                engine.timeout(period * extra), record.preempt_event,
            ])
            if record.preempt_requested:
                elapsed = engine.now - hold_start
                record.completed_iterations += min(
                    extra, int(elapsed / period))
            else:
                record.completed_iterations += extra
        preempted = (record.preempt_requested
                     and record.remaining_iterations > 0)
        if preempted:
            # Checkpoint while still holding the allocation; the cost
            # lands on the preempted tenant.
            save = checkpoint_seconds(plan)
            store.charge_checkpoint(record, save)
            yield engine.timeout(save)
        self._collect_spans(record, view, executor)
        release_memory_plan(view, prefixed)
        store.charge_gpu_seconds(
            record, spec.gpus * (engine.now - segment_start))
        if preempted:
            store.mark_preempted(record, engine.now)
            daemon.job_preempted(record)
        else:
            store.mark_completed(record, engine.now)
            daemon.job_finished(record)

    def _serving_body(self, record: JobRecord, view: ClusterView):
        """An inference job: the serving scheduler as a cluster tenant.

        Imports are deferred: :mod:`repro.inference` imports cluster
        submodules (arrivals, views), so a top-level import here would
        close an import cycle through ``cluster/__init__``.

        One completed request is one unit of progress.  On preemption
        the in-flight batch is aborted (KV reservations released, no
        checkpoint — a serving instance has no optimizer state worth
        saving) and the *remaining* requests replay from the seeded
        stream at the next residency, re-timed to the restart instant.
        """
        from ..inference.batching import RequestRecord, ServingScheduler
        from ..inference.costmodel import PhaseCostModel
        from ..inference.kvcache import KvCache
        from ..inference.requests import poisson_requests

        engine = self.engine
        store = self.store
        daemon = self.daemon
        assert daemon is not None
        spec = record.spec
        job = record.job_id
        config = model_for_billions(spec.size_billions)
        cost = PhaseCostModel(config, self.cluster.nodes[0].spec.gpu,
                              tensor_parallel=spec.gpus)
        plan = self.plan_for(spec)
        weights_plan = MemoryPlan(
            gpu={f"{job}/weights": plan.gpu["weights"]})
        pools = [view.gpu(rank).memory for rank in range(view.num_gpus)]
        try:
            apply_memory_plan(view, weights_plan)
            kvcache = KvCache(
                pools,
                budget_per_rank=plan.gpu["kv_budget"],
                bytes_per_token_per_rank=cost.kv_token_bytes_per_rank,
                tag=f"{job}/",
            )
        except OutOfMemoryError as error:
            # Unreachable under the daemon's admission check (demand is
            # weights + KV budget); kept as a terminal state.
            store.mark_failed(record, engine.now, str(error))
            daemon.job_failed(record)
            return
        segment_start = engine.now
        record.preempt_event = engine.event()
        # Replay the seeded open-loop stream, skipping requests already
        # completed in earlier residencies; re-time so the first pending
        # request arrives at the restart instant and the rest keep their
        # seeded interarrival gaps.
        stream = poisson_requests(
            spec.request_rate_per_s, spec.iterations,
            seed=spec.request_seed, mix=spec.request_mix,
        )
        pending = stream[record.completed_iterations:]
        offset = engine.now - pending[0].time
        ranks = list(range(view.num_gpus))
        comm = None
        if view.num_gpus > 1:
            comm = NcclCommunicator(view, engine, self.network, ranks,
                                    label_prefix=f"{job}/")
        scheduler = ServingScheduler(
            engine, cost, kvcache,
            comm=comm,
            batching="continuous",
            max_batch_tokens=spec.max_batch_tokens,
            max_batch_requests=spec.max_batch_requests,
            span_ranks=(
                tuple(view.global_rank(rank) for rank in ranks)
                if self.recorder is not None else ()),
            collective_sink=(
                _JobCollectives(job, view, self.recorder)
                if self.recorder is not None else None),
            tag=f"{job}:",
        )
        records = [RequestRecord(replace(request, time=request.time + offset))
                   for request in pending]
        for request_record in records:
            engine.schedule_at(request_record.request.time,
                               scheduler.submit, request_record)
        stats = yield from scheduler.serve(
            records,
            should_stop=lambda: record.preempt_requested,
            stop_event=record.preempt_event,
        )
        record.completed_iterations += stats.completed
        preempted = (record.preempt_requested
                     and record.remaining_iterations > 0)
        if self.recorder is not None:
            record.spans.extend(stats.spans)
        kvcache.close()
        release_memory_plan(view, weights_plan)
        store.charge_gpu_seconds(
            record, spec.gpus * (engine.now - segment_start))
        if preempted:
            store.mark_preempted(record, engine.now)
            daemon.job_preempted(record)
        else:
            store.mark_completed(record, engine.now)
            daemon.job_finished(record)

    def _collect_spans(self, record: JobRecord, view: ClusterView,
                       executor: Executor) -> None:
        if self.recorder is None:
            return
        record.spans.extend(
            Span(view.global_rank(span.rank), span.lane, span.kind,
                 f"{record.job_id}:{span.name}", span.start, span.end,
                 synthetic=span.synthetic)
            for span in executor.timeline.spans
        )


def run_cluster(scenario: ClusterScenario) -> ClusterRun:
    """Simulate one :class:`ClusterScenario` end to end."""
    arrivals = scenario.expand_arrivals()
    cluster = Cluster(ClusterSpec(num_nodes=scenario.nodes))
    engine = Engine(tie_order=_build_tie_order(scenario))
    network = FlowNetwork(engine)
    recorder = TraceRecorder() if scenario.trace else None
    network.recorder = recorder
    leaksan: Optional[LeakSanitizer] = None
    if scenario.leak_check:
        leaksan = LeakSanitizer()
        leaksan.attach(cluster)
        network.leaksan = leaksan

    service = _ClusterService(scenario, cluster, engine, network, recorder)
    service.validate([arrival.spec for arrival in arrivals])
    daemon = SchedulerDaemon(
        engine, cluster, service.store,
        policy=scenario.policy,
        aging_rate=scenario.aging_rate,
        expected_jobs=len(arrivals),
        demand=service.demand_plan,
        launch=service.launch,
    )
    service.daemon = daemon

    for arrival in arrivals:
        engine.schedule_at(arrival.time, service.submit, arrival.spec)
    engine.process(daemon.run(), name="scheduler-daemon")
    engine.run()
    check_liveness(engine)

    total_time = engine.now
    leaks: Optional[LeakReport] = None
    if leaksan is not None:
        leaks = leaksan.finalize(cluster, network=network,
                                 recorder=recorder)
    report = build_report(
        scenario.name, scenario.policy,
        nodes=cluster.num_nodes, num_gpus=cluster.num_gpus,
        total_time=total_time, store=service.store,
        events_processed=engine.events_processed,
        events_folded=engine.events_folded,
        leaks=leaks,
    )
    trace = (
        build_cluster_trace(cluster, service.store, recorder, total_time,
                            meta={
                                "scenario": scenario.name,
                                "policy": scenario.policy,
                                "num_nodes": cluster.num_nodes,
                                "num_gpus": cluster.num_gpus,
                            })
        if recorder is not None else None
    )
    return ClusterRun(report=report, trace=trace)
