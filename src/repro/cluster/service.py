"""Wire it all together: one engine, one network, many job bodies.

:func:`run_cluster` builds the shared machine (a parametric N-node
:class:`~repro.hardware.cluster.Cluster`), one
:class:`~repro.sim.engine.Engine`, and one
:class:`~repro.sim.flows.FlowNetwork`, schedules the scenario's
arrivals, and runs the :class:`~repro.cluster.daemon.SchedulerDaemon`
as a process among the job bodies.  Each granted job runs the existing
:class:`~repro.runtime.executor.Executor` as a generator
(:meth:`~repro.runtime.executor.Executor.execute`) against its
:class:`~repro.cluster.views.ClusterView`, with ``flow_tag=f"{job}/"``
so every flow in the shared ledgers and trace is attributable.

Ledger ownership: the *service* owns the shared network's recorder and
leak-sanitizer hooks and the pools' observers; job bodies only charge
and release their own job-prefixed memory-plan labels through the
existing :func:`~repro.core.runner.apply_memory_plan` /
:func:`~repro.core.runner.release_memory_plan` walkers, so the
byte-conservation audit covers the whole multi-job run.

Hybrid fidelity per job: the body simulates the measured window and,
once steady, *holds* its resources for the extrapolated remainder via a
timeout raced against the preemption event — occupancy and GPU-second
accounting stay exact while the event count stays small.  (Unlike
single-job hybrid runs, the analytic window does not replay link
traffic; the cluster report's contention figures come from the
simulated windows.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.liveness import check_liveness
from ..core.runner import apply_memory_plan, release_memory_plan
from ..core.search import model_for_billions
from ..errors import ConfigurationError, OutOfMemoryError
from ..experiments.common import make_strategy
from ..hardware.cluster import Cluster, ClusterSpec
from ..model.config import TrainingConfig
from ..parallel.strategy import MemoryPlan, StrategyContext
from ..runtime.executor import Executor
from ..sim.engine import Engine, ReversedTies, SeededTies, TieOrder
from ..sim.fastpath import hybrid_simulated_iterations, is_steady
from ..sim.flows import FlowNetwork
from ..sim.leaksan import LeakReport, LeakSanitizer
from ..trace.model import Span, Trace
from ..units import GIB
from ..trace.recorder import TraceRecorder
from .daemon import SchedulerDaemon, checkpoint_seconds
from .jobs import JobRecord, JobSpec, JobStore
from .report import ClusterReport, build_report
from .scenario import ClusterScenario
from .trace import build_cluster_trace
from .views import ClusterView, probe_view


@dataclass
class ClusterRun:
    """Everything one cluster-service run produced."""

    report: ClusterReport
    trace: Optional[Trace] = None

    @property
    def leaks(self) -> Optional[LeakReport]:
        return self.report.leaks


class _JobCollectives:
    """Per-job recorder facade: tags collective phases with the job id.

    Flow spans come from the shared network recorder (already
    job-tagged via ``flow_tag``); collective phases are reported by the
    executor's gates with job-local comm names and ranks, so this shim
    prefixes the comm and maps ranks to the shared machine before
    forwarding to the shared recorder.
    """

    def __init__(self, job_id: str, view: ClusterView,
                 sink: TraceRecorder) -> None:
        self.job_id = job_id
        self.view = view
        self.sink = sink

    def collective_phase(self, comm: str, group_index: int, kind: str,
                         payload_bytes: float, launch_count: int,
                         ranks: Tuple[int, ...], start: float,
                         end: float) -> None:
        self.sink.collective_phase(
            f"{self.job_id}:{comm}", group_index, kind, payload_bytes,
            launch_count,
            tuple(self.view.global_rank(rank) for rank in ranks),
            start, end,
        )


def _build_tie_order(scenario: ClusterScenario) -> Optional[TieOrder]:
    if scenario.tie_order == "reversed":
        return ReversedTies()
    if scenario.tie_order == "seeded":
        return SeededTies(scenario.tie_seed)
    return None  # fifo: the engine default


class _ClusterService:
    """The live run state shared by arrivals, daemon, and job bodies."""

    def __init__(self, scenario: ClusterScenario, cluster: Cluster,
                 engine: Engine, network: FlowNetwork,
                 recorder: Optional[TraceRecorder]) -> None:
        self.scenario = scenario
        self.cluster = cluster
        self.engine = engine
        self.network = network
        self.recorder = recorder
        self.store = JobStore()
        #: memoized per-rank memory plans; pools are uniform, so the
        #: plan depends only on the workload and allocation size
        self._plans: Dict[Tuple[str, float, int, int], MemoryPlan] = {}
        self.daemon: Optional[SchedulerDaemon] = None

    # -- planning --------------------------------------------------------------
    def demand_plan(self, record: JobRecord) -> MemoryPlan:
        return self.plan_for(record.spec)

    def plan_for(self, spec: JobSpec) -> MemoryPlan:
        key = (spec.strategy, spec.size_billions, spec.gpus,
               spec.micro_batch_per_gpu)
        plan = self._plans.get(key)
        if plan is None:
            view = probe_view(self.cluster, spec.gpus)
            ctx = StrategyContext(
                view, model_for_billions(spec.size_billions),
                TrainingConfig(micro_batch_per_gpu=spec.micro_batch_per_gpu),
            )
            plan = make_strategy(spec.strategy).memory_plan(ctx)
            if plan.nvme:
                raise ConfigurationError(
                    f"job strategy {spec.strategy!r} plans NVMe residency; "
                    f"not schedulable on the shared service"
                )
            self._plans[key] = plan
        return plan

    def validate(self, specs: List[JobSpec]) -> None:
        """Reject arrivals no schedule could ever place.

        Every job must fit an *empty* fabric (GPU shape and per-pool
        capacity); otherwise the daemon would wait on it forever and
        the run could never terminate.
        """
        for spec in specs:
            view = probe_view(self.cluster, spec.gpus)  # shape check
            plan = self.plan_for(spec)
            needed: Dict[int, float] = {}
            capacity: Dict[int, float] = {}
            for rank in range(view.num_gpus):
                for pool, amount in (
                        (view.gpu(rank).memory, plan.gpu_total),
                        (view.dram_for_rank(rank).memory, plan.cpu_total)):
                    capacity[id(pool)] = pool.capacity_bytes
                    needed[id(pool)] = needed.get(id(pool), 0.0) + amount
            for key, amount in needed.items():
                if amount > capacity[key] + 1e-6:
                    raise ConfigurationError(
                        f"job {spec.name!r} ({spec.strategy}, "
                        f"{spec.size_billions}B on {spec.gpus} GPUs) can "
                        f"never fit: needs {amount / GIB:.1f} GiB of a "
                        f"{capacity[key] / GIB:.1f} GiB pool"
                    )

    # -- arrival callback ------------------------------------------------------
    def submit(self, spec: JobSpec) -> None:
        record = self.store.submit(spec, self.engine.now)
        assert self.daemon is not None
        self.daemon.submit(record)

    # -- job execution ---------------------------------------------------------
    def launch(self, record: JobRecord, view: ClusterView) -> None:
        self.engine.process(self._job_body(record, view),
                            name=f"{record.job_id}/body")

    def _job_body(self, record: JobRecord, view: ClusterView):
        engine = self.engine
        store = self.store
        daemon = self.daemon
        assert daemon is not None
        spec = record.spec
        job = record.job_id
        strategy = make_strategy(spec.strategy)
        model = model_for_billions(spec.size_billions)
        training = TrainingConfig(micro_batch_per_gpu=spec.micro_batch_per_gpu)
        ctx = StrategyContext(view, model, training)
        plan = strategy.memory_plan(ctx)
        prefixed = MemoryPlan(
            gpu={f"{job}/{label}": num_bytes
                 for label, num_bytes in plan.gpu.items()},
            cpu={f"{job}/{label}": num_bytes
                 for label, num_bytes in plan.cpu.items()},
        )
        try:
            apply_memory_plan(view, prefixed)
        except OutOfMemoryError as error:
            # The daemon's admission check makes this unreachable under
            # normal operation; kept as a terminal state, not a crash.
            store.mark_failed(record, engine.now, str(error))
            daemon.job_failed(record)
            return
        segment_start = engine.now
        record.preempt_event = engine.event()
        if record.completed_iterations:
            # Restart after preemption: restore the checkpoint before
            # training resumes, on the preempted tenant's bill.
            restore = checkpoint_seconds(plan)
            store.charge_checkpoint(record, restore)
            yield engine.timeout(restore)
        remaining = record.remaining_iterations
        sim_iterations = remaining
        if spec.fidelity == "hybrid":
            measured = hybrid_simulated_iterations(
                remaining, spec.warmup_iterations)
            if measured < remaining:
                sim_iterations = measured
        executor = Executor(
            view, strategy.build_schedule(ctx),
            traffic_profile=strategy.traffic_profile,
            internode_rate_efficiency=(
                strategy.calibration.internode_efficiency),
            engine=engine,
            network=self.network,
            flow_tag=f"{job}/",
            trace_recorder=(
                _JobCollectives(job, view, self.recorder)
                if self.recorder is not None else None),
        )
        result = yield from executor.execute(
            sim_iterations,
            should_stop=lambda: record.preempt_requested,
        )
        completed = len(result.iteration_times)
        record.completed_iterations += completed
        if (sim_iterations < remaining
                and completed == sim_iterations
                and not record.preempt_requested
                and is_steady(result.iteration_times,
                              spec.warmup_iterations)):
            # Steady: hold the allocation for the analytic remainder,
            # but stay preemptible throughout the hold.
            period = result.iteration_times[-1]
            extra = remaining - sim_iterations
            hold_start = engine.now
            yield engine.any_of([
                engine.timeout(period * extra), record.preempt_event,
            ])
            if record.preempt_requested:
                elapsed = engine.now - hold_start
                record.completed_iterations += min(
                    extra, int(elapsed / period))
            else:
                record.completed_iterations += extra
        preempted = (record.preempt_requested
                     and record.remaining_iterations > 0)
        if preempted:
            # Checkpoint while still holding the allocation; the cost
            # lands on the preempted tenant.
            save = checkpoint_seconds(plan)
            store.charge_checkpoint(record, save)
            yield engine.timeout(save)
        self._collect_spans(record, view, executor)
        release_memory_plan(view, prefixed)
        store.charge_gpu_seconds(
            record, spec.gpus * (engine.now - segment_start))
        if preempted:
            store.mark_preempted(record, engine.now)
            daemon.job_preempted(record)
        else:
            store.mark_completed(record, engine.now)
            daemon.job_finished(record)

    def _collect_spans(self, record: JobRecord, view: ClusterView,
                       executor: Executor) -> None:
        if self.recorder is None:
            return
        record.spans.extend(
            Span(view.global_rank(span.rank), span.lane, span.kind,
                 f"{record.job_id}:{span.name}", span.start, span.end,
                 synthetic=span.synthetic)
            for span in executor.timeline.spans
        )


def run_cluster(scenario: ClusterScenario) -> ClusterRun:
    """Simulate one :class:`ClusterScenario` end to end."""
    arrivals = scenario.expand_arrivals()
    cluster = Cluster(ClusterSpec(num_nodes=scenario.nodes))
    engine = Engine(tie_order=_build_tie_order(scenario))
    network = FlowNetwork(engine)
    recorder = TraceRecorder() if scenario.trace else None
    network.recorder = recorder
    leaksan: Optional[LeakSanitizer] = None
    if scenario.leak_check:
        leaksan = LeakSanitizer()
        leaksan.attach(cluster)
        network.leaksan = leaksan

    service = _ClusterService(scenario, cluster, engine, network, recorder)
    service.validate([arrival.spec for arrival in arrivals])
    daemon = SchedulerDaemon(
        engine, cluster, service.store,
        policy=scenario.policy,
        aging_rate=scenario.aging_rate,
        expected_jobs=len(arrivals),
        demand=service.demand_plan,
        launch=service.launch,
    )
    service.daemon = daemon

    for arrival in arrivals:
        engine.schedule_at(arrival.time, service.submit, arrival.spec)
    engine.process(daemon.run(), name="scheduler-daemon")
    engine.run()
    check_liveness(engine)

    total_time = engine.now
    leaks: Optional[LeakReport] = None
    if leaksan is not None:
        leaks = leaksan.finalize(cluster, network=network,
                                 recorder=recorder)
    report = build_report(
        scenario.name, scenario.policy,
        nodes=cluster.num_nodes, num_gpus=cluster.num_gpus,
        total_time=total_time, store=service.store,
        events_processed=engine.events_processed,
        events_folded=engine.events_folded,
        leaks=leaks,
    )
    trace = (
        build_cluster_trace(cluster, service.store, recorder, total_time,
                            meta={
                                "scenario": scenario.name,
                                "policy": scenario.policy,
                                "num_nodes": cluster.num_nodes,
                                "num_gpus": cluster.num_gpus,
                            })
        if recorder is not None else None
    )
    return ClusterRun(report=report, trace=trace)
