"""The scheduler daemon: a process on the shared DES engine.

The daemon owns the cluster's *allocation* state (which GPUs are free,
which job holds what) and makes every scheduling decision; actually
executing a job body is the service's problem (dependency injection via
the ``launch`` callback keeps this module free of workload imports).

Decisions, in order of application:

* **Queue ordering** — waiting jobs sort by effective priority
  (base + ``aging_rate`` x queued seconds, so old jobs rise), then the
  policy key (FIFO: submission order; SJF: size-weighted iteration
  count; memory-aware: smallest memory footprint first), then
  submission order as the final deterministic tiebreak.
* **Packing** — best-fit: an intra-node job takes the feasible node
  with the *fewest* free GPUs (lowest index on ties, lowest-index GPUs
  within the node); a multi-node job takes the lowest-index fully-free
  nodes.  Only these two shapes exist (see :mod:`.views`).
* **Admission** — a job starts only if every memory pool its
  allocation touches has headroom for the job's plan (the same
  per-pool accumulation :func:`~repro.core.runner.apply_memory_plan`
  performs, checked against ``free_bytes`` first so a rejected job
  never partially charges shared pools).
* **Head-of-line semantics** — FIFO blocks behind the head job
  (strict arrival-order fairness); SJF and memory-aware skip over jobs
  that do not fit (greedy backfill).
* **Preemption** — when the top waiting job outranks running work by
  *base* priority (aging never grants preemption rights) and cannot be
  placed, the daemon plans the cheapest victim set (lowest base
  priority first, most recently started first within a priority),
  verifies on a scratch copy of the free lists that evicting exactly
  that set makes the allocation feasible, then requests cooperative
  preemption.  While the drain is in flight the freed capacity is
  *reserved*: no other job may start, so the beneficiary cannot be
  starved by backfill (and a beneficiary that still cannot start once
  the drain completes gives its reservation up rather than livelock).

Everything the daemon reads is engine-virtual time or seeded state —
no wall clock, no process-global RNG (the ``CLU0xx`` lints pin this).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..parallel.strategy import MemoryPlan
from ..sim.engine import BaseEvent, Engine
from ..units import GB
from .jobs import JobRecord, JobStore
from .views import ClusterView, NodeAllocation

#: Scheduling policies ``repro cluster run --policy`` accepts.
POLICIES = ("fifo", "sjf", "memory-aware")

#: Checkpoint/restore streaming rate per rank (all ranks write their
#: shard in parallel, so a job's checkpoint time is its *per-rank* state
#: over this rate).  Deliberately a round calibration constant: the cost
#: model only needs to make preemption expensive in proportion to state.
CHECKPOINT_BYTES_PER_S = 8 * GB

#: Admission slack so float accumulation never rejects an exact fit.
_EPSILON_BYTES = 1e-6


def checkpoint_seconds(plan: MemoryPlan) -> float:
    """Time to checkpoint (or restore) one rank's resident state."""
    return (plan.gpu_total + plan.cpu_total) / CHECKPOINT_BYTES_PER_S


class SchedulerDaemon:
    """Admission, packing, priorities, and preemption over the store.

    ``demand`` maps a record to its per-rank :class:`MemoryPlan`
    (memoized by the service); ``launch`` spawns the job body for a
    granted allocation.  The daemon itself runs as one engine process
    (:meth:`run`) and sleeps on a wakeup event between decisions.
    """

    def __init__(self, engine: Engine, cluster, store: JobStore, *,
                 policy: str = "fifo",
                 aging_rate: float = 0.0,
                 expected_jobs: int,
                 demand: Callable[[JobRecord], MemoryPlan],
                 launch: Callable[[JobRecord, ClusterView], None]) -> None:
        if policy not in POLICIES:
            raise ConfigurationError(
                f"unknown policy {policy!r} (expected one of {POLICIES})"
            )
        self.engine = engine
        self.cluster = cluster
        self.store = store
        self.policy = policy
        self.aging_rate = aging_rate
        self.expected_jobs = expected_jobs
        self._demand = demand
        self._launch = launch
        #: per-node ascending free GPU indices
        self._free: List[List[int]] = [
            list(range(cluster.gpus_per_node))
            for _ in range(cluster.num_nodes)
        ]
        self._allocations: Dict[str, Tuple[NodeAllocation, ...]] = {}
        #: job id whose preemption drain has reserved the freed capacity
        self._reserved: Optional[str] = None
        #: victims asked to preempt that have not released yet
        self._draining: Dict[str, bool] = {}
        self._wakeup: Optional[BaseEvent] = None

    # -- engine process --------------------------------------------------------
    def run(self):
        """The daemon's generator body (``engine.process(daemon.run())``)."""
        while not (len(self.store.records) >= self.expected_jobs
                   and self.store.all_done()):
            self._dispatch()
            self._wakeup = self.engine.event()
            yield self._wakeup
            self._wakeup = None

    def wake(self) -> None:
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed(None)

    # -- events from the service ----------------------------------------------
    def submit(self, record: JobRecord) -> None:
        self.wake()

    def job_finished(self, record: JobRecord) -> None:
        self._release(record)
        self.wake()

    def job_failed(self, record: JobRecord) -> None:
        self._release(record)
        self.wake()

    def job_preempted(self, record: JobRecord) -> None:
        self._draining.pop(record.job_id, None)
        self._release(record)
        self.wake()

    # -- queue ordering --------------------------------------------------------
    def _order_key(self, record: JobRecord, now: float):
        effective = (record.spec.priority
                     + self.aging_rate * (now - record.queued_at))
        if self.policy == "sjf":
            policy_key = record.spec.work_units
        elif self.policy == "memory-aware":
            plan = self._demand(record)
            policy_key = (plan.gpu_total + plan.cpu_total) * record.spec.gpus
        else:
            policy_key = 0.0
        return (-effective, policy_key, record.submit_index)

    # -- packing ---------------------------------------------------------------
    def _find_allocation(self, gpus: int,
                         free: Optional[List[List[int]]] = None
                         ) -> Optional[Tuple[NodeAllocation, ...]]:
        """Best-fit allocation of ``gpus`` on the (given) free lists."""
        if free is None:
            free = self._free
        per_node = self.cluster.gpus_per_node
        if gpus <= per_node:
            best: Optional[int] = None
            for node_index, available in enumerate(free):
                if len(available) >= gpus and (
                        best is None or len(available) < len(free[best])):
                    best = node_index
            if best is None:
                return None
            return ((best, tuple(free[best][:gpus])),)
        if gpus % per_node:
            return None  # rejected at validation; defensive here
        needed = gpus // per_node
        full = [node_index for node_index, available in enumerate(free)
                if len(available) == per_node]
        if len(full) < needed:
            return None
        return tuple((node_index, tuple(free[node_index]))
                     for node_index in full[:needed])

    def _fits_memory(self, record: JobRecord,
                     allocation: Tuple[NodeAllocation, ...]) -> bool:
        """Would the job's plan fit every pool this allocation touches?"""
        plan = self._demand(record)
        view = ClusterView(self.cluster, allocation)
        needed: Dict[int, float] = {}
        pools: Dict[int, Any] = {}
        for rank in range(view.num_gpus):
            for pool, amount in ((view.gpu(rank).memory, plan.gpu_total),
                                 (view.dram_for_rank(rank).memory,
                                  plan.cpu_total)):
                pools[id(pool)] = pool
                needed[id(pool)] = needed.get(id(pool), 0.0) + amount
        return all(
            pools[key].free_bytes + _EPSILON_BYTES >= amount
            for key, amount in needed.items()
        )

    # -- allocation bookkeeping ------------------------------------------------
    def _take(self, record: JobRecord,
              allocation: Tuple[NodeAllocation, ...]) -> None:
        for node_index, gpu_indices in allocation:
            available = self._free[node_index]
            for gpu_index in gpu_indices:
                available.remove(gpu_index)
        self._allocations[record.job_id] = allocation

    def _release(self, record: JobRecord) -> None:
        allocation = self._allocations.pop(record.job_id, None)
        if allocation is None:
            return
        for node_index, gpu_indices in allocation:
            merged = sorted(self._free[node_index] + list(gpu_indices))
            self._free[node_index][:] = merged

    # -- dispatch --------------------------------------------------------------
    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            waiting = self.store.waiting()
            if not waiting:
                break
            now = self.engine.now
            ordered = sorted(waiting,
                             key=lambda r: self._order_key(r, now))
            for record in ordered:
                if (self._reserved is not None
                        and record.job_id != self._reserved):
                    continue  # capacity is draining for the beneficiary
                allocation = self._find_allocation(record.spec.gpus)
                if (allocation is not None
                        and self._fits_memory(record, allocation)):
                    if record.job_id == self._reserved:
                        self._reserved = None
                    self._start(record, allocation)
                    progress = True
                    break
                if record.job_id == self._reserved and not self._draining:
                    # Drain finished but the job still cannot start
                    # (e.g. memory headroom): give the reservation up
                    # rather than starve everyone behind it.
                    self._reserved = None
                    progress = True
                    break
                if self.policy == "fifo":
                    break  # head-of-line blocking
        self._maybe_preempt()

    def _start(self, record: JobRecord,
               allocation: Tuple[NodeAllocation, ...]) -> None:
        self._take(record, allocation)
        self.store.mark_started(record, self.engine.now)
        self._launch(record, ClusterView(self.cluster, allocation))

    # -- preemption ------------------------------------------------------------
    def _maybe_preempt(self) -> None:
        if self._reserved is not None or self._draining:
            return
        waiting = self.store.waiting()
        if not waiting:
            return
        now = self.engine.now
        top = min(waiting, key=lambda r: self._order_key(r, now))
        victims = self._plan_preemption(top)
        if victims is None:
            return
        self._reserved = top.job_id
        for victim in victims:
            self._draining[victim.job_id] = True
            victim.preempt_requested = True
            event = victim.preempt_event
            if event is not None and not event.triggered:
                event.succeed(None)
        if not self._draining:
            # succeed() resumes waiters synchronously, so a victim
            # parked directly on its preempt event (a serving loop
            # idling between requests) has already drained: its
            # job_preempted wake() found no waiting daemon.  Dispatch
            # again here rather than lose that wakeup forever.  The
            # recursion is bounded: _maybe_preempt early-returns while
            # ``_reserved`` is held.
            self._dispatch()

    def _plan_preemption(self, top: JobRecord
                         ) -> Optional[List[JobRecord]]:
        """The cheapest victim set that makes ``top`` placeable, if any.

        Eligibility is *base* priority only (aging raises a job in the
        queue but never lets it evict others).  Victims are taken lowest
        priority first; within a priority the most recently started job
        loses (least sunk work).  Feasibility is simulated on a scratch
        copy of the free lists before anything is asked to stop.
        """
        candidates = sorted(
            (record for record in self.store.running()
             if record.spec.priority < top.spec.priority),
            key=lambda r: (r.spec.priority,
                           -(r.started_at or 0.0),
                           -r.submit_index),
        )
        if not candidates:
            return None
        scratch = [list(available) for available in self._free]
        victims: List[JobRecord] = []
        for victim in candidates:
            for node_index, gpu_indices in self._allocations[victim.job_id]:
                scratch[node_index] = sorted(
                    scratch[node_index] + list(gpu_indices)
                )
            victims.append(victim)
            if self._find_allocation(top.spec.gpus, scratch) is not None:
                return victims
        return None
