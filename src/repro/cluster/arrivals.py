"""Open-loop arrival generation: seeded Poisson and trace-driven.

The service is *open-loop*: arrivals are generated up front from a seed
(or an explicit trace) and scheduled on the engine, independent of how
the cluster is coping — the queueing-theory regime where heavy traffic
means the queue genuinely builds.  Everything draws from one
``random.Random(seed)`` instance, so a scenario's arrival stream is a
pure function of ``(seed, rate, num_jobs, mix)``.

The seeded-process primitives (:func:`poisson_times`,
:func:`draw_weighted`, :func:`validate_trace_times`) are shared with
the inference serving subsystem (:mod:`repro.inference.requests`),
which generates per-request arrival streams the same open-loop way —
one generator, two workload kinds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple, TypeVar

from ..errors import ConfigurationError
from .jobs import JobSpec

_T = TypeVar("_T")


def poisson_times(rate_per_s: float, count: int,
                  rng: random.Random) -> List[float]:
    """``count`` open-loop Poisson arrival times at ``rate_per_s``.

    Interarrival gaps are exponential with mean ``1 / rate_per_s``
    seconds, drawn from the caller's seeded ``rng`` (never the
    process-global RNG — the CLU002 lint enforces this for cluster
    code, and :mod:`repro.inference` holds itself to the same rule).
    """
    if rate_per_s <= 0:
        raise ConfigurationError("arrival rate must be positive")
    if count < 1:
        raise ConfigurationError("need at least one arrival")
    times: List[float] = []
    now = 0.0
    for _ in range(count):
        now += rng.expovariate(rate_per_s)
        times.append(now)
    return times


def draw_weighted(templates: Sequence[Tuple[float, _T]],
                  rng: random.Random) -> _T:
    """One template drawn by relative weight from a (weight, value) mix."""
    weights = [weight for weight, _ in templates]
    _, chosen = rng.choices(list(templates), weights=weights, k=1)[0]
    return chosen


def validate_trace_times(index: int, time_s: float, last: float) -> float:
    """Check one trace entry's time is non-negative and non-decreasing."""
    if time_s < 0:
        raise ConfigurationError(
            f"trace entry {index} has a negative arrival time ({time_s})"
        )
    if time_s < last:
        raise ConfigurationError(
            f"trace entry {index} goes back in time "
            f"({time_s} after {last})"
        )
    return time_s


@dataclass(frozen=True)
class Arrival:
    """One job submission at one simulated time."""

    time: float
    spec: JobSpec


#: Named job mixes: (weight, spec template) pairs.  Weights are relative
#: draw probabilities; templates omit ``name`` (stamped per arrival).
#: The mixes deliberately span tenants, priorities, and GPU footprints
#: so packing, aging, and preemption all get exercised.
JOB_MIXES: Dict[str, Tuple[Tuple[float, Dict[str, object]], ...]] = {
    # Interactive-ish small jobs next to batch training: the default.
    "default": (
        (0.5, {"tenant": "research", "strategy": "ddp",
               "size_billions": 0.35, "gpus": 2, "iterations": 4,
               "priority": 0}),
        (0.3, {"tenant": "product", "strategy": "zero2",
               "size_billions": 0.7, "gpus": 4, "iterations": 4,
               "priority": 1}),
        (0.2, {"tenant": "platform", "strategy": "zero3",
               "size_billions": 0.7, "gpus": 8, "iterations": 3,
               "priority": 2}),
    ),
    # Everything wants whole nodes: queueing and preemption dominate.
    "heavy": (
        (0.4, {"tenant": "research", "strategy": "zero2",
               "size_billions": 0.7, "gpus": 4, "iterations": 4,
               "priority": 0}),
        (0.4, {"tenant": "product", "strategy": "zero3",
               "size_billions": 0.7, "gpus": 4, "iterations": 4,
               "priority": 1}),
        (0.2, {"tenant": "platform", "strategy": "zero3",
               "size_billions": 1.4, "gpus": 8, "iterations": 3,
               "priority": 2}),
    ),
    # Uniform small jobs: pure packing/throughput, no priority skew.
    "small": (
        (1.0, {"tenant": "research", "strategy": "ddp",
               "size_billions": 0.35, "gpus": 2, "iterations": 3,
               "priority": 0}),
    ),
    # Training batch jobs next to latency-sensitive serving instances:
    # inference jobs run the serving scheduler (iterations = requests)
    # at higher base priority, contending for the same fabric/pools.
    "mixed": (
        (0.4, {"tenant": "research", "strategy": "ddp",
               "size_billions": 0.35, "gpus": 2, "iterations": 4,
               "priority": 0}),
        (0.3, {"tenant": "product", "strategy": "zero2",
               "size_billions": 0.7, "gpus": 4, "iterations": 4,
               "priority": 1}),
        (0.3, {"tenant": "serving", "workload": "inference",
               "size_billions": 0.35, "gpus": 2, "iterations": 6,
               "priority": 2, "request_rate_per_s": 4.0,
               "request_mix": "chat"}),
    ),
}


def poisson_arrivals(rate_per_hour: float, num_jobs: int, *,
                     seed: int = 7,
                     mix: str = "default") -> List[Arrival]:
    """``num_jobs`` Poisson arrivals at ``rate_per_hour``, seeded.

    Interarrival gaps are exponential with mean ``3600 / rate`` seconds;
    each arrival draws a spec template from the weighted ``mix``.  All
    randomness comes from one seeded :class:`random.Random`, never the
    process-global RNG.
    """
    if rate_per_hour <= 0:
        raise ConfigurationError("rate_per_hour must be positive")
    if num_jobs < 1:
        raise ConfigurationError("need at least one arrival")
    templates = JOB_MIXES.get(mix)
    if templates is None:
        raise ConfigurationError(
            f"unknown job mix {mix!r}; known: {sorted(JOB_MIXES)}"
        )
    rng = random.Random(seed)
    rate_per_s = rate_per_hour / 3600.0
    arrivals: List[Arrival] = []
    now = 0.0
    # Gap and template draws stay interleaved (gap, template, gap, ...)
    # so seeded streams from earlier releases replay byte-identically.
    for index in range(num_jobs):
        now += rng.expovariate(rate_per_s)
        template = draw_weighted(templates, rng)
        spec = JobSpec(name=f"{mix}-{index}", **template)
        arrivals.append(Arrival(time=now, spec=spec))
    return arrivals


def trace_arrivals(entries: Sequence[Mapping[str, object]]) -> List[Arrival]:
    """Arrivals from explicit trace entries.

    Each entry is ``{"time": seconds, ...JobSpec fields...}`` — the
    JSON shape ``repro cluster run --arrivals FILE.json`` reads.  Times
    must be non-negative and non-decreasing (an open-loop trace is a
    recorded schedule, not a bag).
    """
    arrivals: List[Arrival] = []
    last = 0.0
    for index, entry in enumerate(entries):
        payload = dict(entry)
        try:
            time_s = float(payload.pop("time"))
        except KeyError:
            raise ConfigurationError(
                f"trace entry {index} has no arrival time"
            ) from None
        last = validate_trace_times(index, time_s, last)
        payload.setdefault("name", f"trace-{index}")
        arrivals.append(Arrival(time=time_s,
                                spec=JobSpec.from_dict(payload)))
    if not arrivals:
        raise ConfigurationError("arrival trace is empty")
    return arrivals
