"""The cluster-service result payload: goodput, waits, tenants.

:class:`ClusterReport` is to a cluster run what
:func:`~repro.core.results.metrics_to_dict` is to a training run: a
JSON-safe, schema-versioned summary (the shared results
``SCHEMA_VERSION``, currently v3) the CLI prints, campaigns cache, and
the determinism tests field-diff via :meth:`ClusterReport.headline`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.results import SCHEMA_VERSION, headline_from_payload
from ..sim.leaksan import LeakReport
from .jobs import JobStore


def percentile(values: List[float], q: float) -> float:
    """The q-quantile by the nearest-rank method (deterministic)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@dataclass
class ClusterReport:
    """Everything one cluster-service run measured."""

    scenario: str
    policy: str
    nodes: int
    num_gpus: int
    total_time_s: float
    jobs_submitted: int
    jobs_completed: int
    jobs_failed: int
    preemptions: int
    goodput_jobs_per_hour: float
    queue_wait_p50_s: float
    queue_wait_p99_s: float
    max_concurrent_jobs: int
    max_in_system_jobs: int
    gpu_seconds_total: float
    cluster_utilization: float
    checkpoint_overhead_s: float
    events_processed: int
    events_folded: int
    tenants: Dict[str, Dict[str, object]] = field(default_factory=dict)
    leaks: Optional[LeakReport] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "cluster",
            "scenario": self.scenario,
            "policy": self.policy,
            "nodes": self.nodes,
            "num_gpus": self.num_gpus,
            "total_time_s": round(self.total_time_s, 9),
            "jobs_submitted": self.jobs_submitted,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "preemptions": self.preemptions,
            "goodput_jobs_per_hour": round(self.goodput_jobs_per_hour, 6),
            "queue_wait_p50_s": round(self.queue_wait_p50_s, 9),
            "queue_wait_p99_s": round(self.queue_wait_p99_s, 9),
            "max_concurrent_jobs": self.max_concurrent_jobs,
            "max_in_system_jobs": self.max_in_system_jobs,
            "gpu_seconds_total": round(self.gpu_seconds_total, 9),
            "cluster_utilization": round(self.cluster_utilization, 9),
            "checkpoint_overhead_s": round(self.checkpoint_overhead_s, 9),
            "events_processed": self.events_processed,
            "events_folded": self.events_folded,
            "tenants": dict(sorted(self.tenants.items())),
            "leaks": self.leaks.to_dict() if self.leaks is not None else None,
        }

    def headline(self) -> Dict[str, float]:
        """Flat *numeric* fields for the perturbation differ.

        Strings (scenario/policy/kind) are spec identity, not
        measurement, and the differ's significant-figure rounding is
        numeric-only; ``leaks`` is provenance.
        """
        payload = self.to_dict()
        payload.pop("leaks", None)
        return {
            key: float(value)
            for key, value in headline_from_payload(payload).items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }


def build_report(scenario_name: str, policy: str, *,
                 nodes: int, num_gpus: int, total_time: float,
                 store: JobStore, events_processed: int,
                 events_folded: int,
                 leaks: Optional[LeakReport] = None) -> ClusterReport:
    """Assemble the report from the finished store's records."""
    counts = store.counts()
    completed = counts["completed"]
    waits = [record.queue_wait_s for record in store.records
             if record.done]
    gpu_seconds = sum(account.gpu_seconds
                      for account in store.tenants.values())
    capacity = num_gpus * total_time
    tenants: Dict[str, Dict[str, object]] = {}
    for name, account in store.tenants.items():
        payload = account.to_dict()
        payload["utilization"] = (
            round(account.gpu_seconds / capacity, 9) if capacity else 0.0
        )
        tenants[name] = payload
    return ClusterReport(
        scenario=scenario_name,
        policy=policy,
        nodes=nodes,
        num_gpus=num_gpus,
        total_time_s=total_time,
        jobs_submitted=len(store.records),
        jobs_completed=completed,
        jobs_failed=counts["failed"],
        preemptions=sum(record.preemptions for record in store.records),
        goodput_jobs_per_hour=(
            completed / total_time * 3600.0 if total_time else 0.0
        ),
        queue_wait_p50_s=percentile(waits, 0.50),
        queue_wait_p99_s=percentile(waits, 0.99),
        max_concurrent_jobs=store.max_concurrent,
        max_in_system_jobs=store.max_in_system,
        gpu_seconds_total=gpu_seconds,
        cluster_utilization=(gpu_seconds / capacity if capacity else 0.0),
        checkpoint_overhead_s=sum(
            account.checkpoint_overhead_s
            for account in store.tenants.values()
        ),
        events_processed=events_processed,
        events_folded=events_folded,
        tenants=tenants,
        leaks=leaks,
    )
