"""Multi-tenant cluster service: many jobs on one shared DES.

The paper characterizes one training job on one dedicated cluster; this
package turns that single-job simulator into a long-lived *cluster*
that admits a stream of concurrent jobs (the ROADMAP's heavy-traffic
north star).  The pieces:

* :mod:`.views` — :class:`ClusterView`/:class:`NodeView`: a job's rank
  space mapped onto a subset of the shared machine's GPUs, preserving
  the uniform rank arithmetic every existing subsystem assumes;
* :mod:`.jobs` — :class:`JobSpec`/:class:`JobRecord`/:class:`JobStore`:
  job specs, lifecycle states, and per-tenant accounting;
* :mod:`.arrivals` — seeded open-loop arrival generation (Poisson and
  trace-driven interarrival/job-mix profiles, heavy-traffic presets);
* :mod:`.scenario` — :class:`ClusterScenario`, the canonical
  serializable form (the cluster analog of :class:`~repro.api.RunSpec`);
* :mod:`.daemon` — :class:`SchedulerDaemon`: a process on the shared
  engine doing memory-aware admission, best-fit GPU packing, priority
  queues with aging, and preemption with checkpoint/restart cost;
* :mod:`.report` — :class:`ClusterReport`: goodput, queue-wait
  percentiles, per-tenant utilization, preemption counts;
* :mod:`.service` — :func:`run_cluster`, the entry point wiring all of
  the above onto one engine, one flow network, and one set of ledgers.

Every job runs the *existing* executor as a schedulable job body
(:meth:`~repro.runtime.executor.Executor.execute`) against its
:class:`ClusterView`, so collectives, host transfers, ledgers, the
hybrid fast path, tracing, and leak checking all work unchanged — just
tagged with the job id via ``flow_tag``.
"""

from .arrivals import JOB_MIXES, Arrival, poisson_arrivals, trace_arrivals
from .daemon import POLICIES, SchedulerDaemon
from .jobs import JobRecord, JobSpec, JobState, JobStore
from .report import ClusterReport
from .scenario import ClusterScenario
from .service import ClusterRun, run_cluster
from .views import ClusterView, NodeView

__all__ = [
    "Arrival",
    "ClusterReport",
    "ClusterRun",
    "ClusterScenario",
    "ClusterView",
    "JOB_MIXES",
    "JobRecord",
    "JobSpec",
    "JobState",
    "JobStore",
    "NodeView",
    "POLICIES",
    "SchedulerDaemon",
    "poisson_arrivals",
    "run_cluster",
    "trace_arrivals",
]
