"""Job specs, lifecycle states, and the per-tenant job store.

A :class:`JobSpec` is pure serializable data (the cluster analog of
:class:`~repro.api.RunSpec` fields); a :class:`JobRecord` is the live
mutable state the scheduler owns — lifecycle transitions, queue waits,
GPU-second accounting, preemption bookkeeping.  The :class:`JobStore`
assigns sequential job ids, aggregates per-tenant accounts, and tracks
the in-system high-water mark (the heavy-traffic acceptance figure).

The state machine::

    PENDING --start--> RUNNING --finish--> COMPLETED
       ^                  | \\--oom/error--> FAILED
       |                  v
       +---requeue--- PREEMPTED

A preempted job re-enters the queue with its completed iterations
retained; the restart cost is charged when it next starts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import ConfigurationError
from ..sim.engine import BaseEvent

#: Fidelities a job may request (mirrors :data:`repro.api.spec.FIDELITIES`).
JOB_FIDELITIES = ("full", "hybrid")

#: Workload kinds the shared service schedules (mirrors
#: :data:`repro.api.workload.WORKLOAD_KINDS`, re-declared as data so
#: this module stays import-cycle-free like :mod:`repro.api.spec`).
JOB_WORKLOADS = ("train", "inference")


@dataclass(frozen=True)
class JobSpec:
    """One submitted job, as pure serializable data.

    ``workload`` selects the job body: ``"train"`` runs the executor
    over ``strategy``/``size_billions`` exactly as a
    :class:`~repro.api.RunSpec` would; ``"inference"`` runs the serving
    scheduler (:mod:`repro.inference`) with ``gpus`` as the
    tensor-parallel degree and ``iterations`` as the request count —
    one unit of progress is one completed request, so preemption,
    SJF ordering, and the store's bookkeeping apply uniformly.  The
    ``request_*`` fields shape an inference job's open-loop traffic and
    are ignored for training jobs (they must stay at their defaults so
    train-job cache keys are unaffected).

    ``gpus`` is the allocation size the scheduler must pack (k GPUs on
    one node, or whole nodes).  ``priority`` is the base scheduling
    priority (higher preempts lower); NVMe-offload strategies are
    rejected because per-rank swap volumes are node-exclusive resources
    the shared service does not arbitrate yet.
    """

    name: str
    tenant: str = "default"
    strategy: str = "ddp"
    size_billions: float = 0.7
    gpus: int = 4
    iterations: int = 4
    warmup_iterations: int = 1
    priority: int = 0
    fidelity: str = "full"
    micro_batch_per_gpu: int = 16
    workload: str = "train"
    #: inference traffic shape (requests arrive open-loop after launch)
    request_rate_per_s: float = 2.0
    request_mix: str = "chat"
    request_seed: int = 7
    max_batch_tokens: int = 4096
    max_batch_requests: int = 8

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("job needs a name")
        if not self.tenant:
            raise ConfigurationError("job needs a tenant")
        if self.workload not in JOB_WORKLOADS:
            raise ConfigurationError(
                f"unknown workload {self.workload!r} "
                f"(expected one of {JOB_WORKLOADS})"
            )
        if "nvme" in self.strategy:
            raise ConfigurationError(
                f"job {self.name!r}: NVMe-offload strategies are not "
                f"schedulable on the shared cluster service"
            )
        if self.size_billions <= 0:
            raise ConfigurationError("size_billions must be positive")
        if self.gpus < 1:
            raise ConfigurationError("gpus must be >= 1")
        if self.workload == "inference":
            if self.iterations < 1:
                raise ConfigurationError(
                    "an inference job needs at least one request"
                )
            if self.request_rate_per_s <= 0:
                raise ConfigurationError("request_rate_per_s must be positive")
            if self.max_batch_tokens < 1:
                raise ConfigurationError("max_batch_tokens must be >= 1")
            if self.max_batch_requests < 1:
                raise ConfigurationError("max_batch_requests must be >= 1")
        elif self.iterations <= self.warmup_iterations:
            raise ConfigurationError(
                "need more iterations than warmup iterations"
            )
        if self.fidelity not in JOB_FIDELITIES:
            raise ConfigurationError(
                f"unknown fidelity {self.fidelity!r} "
                f"(expected one of {JOB_FIDELITIES})"
            )

    def to_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "JobSpec":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown JobSpec fields {unknown}; known: {sorted(known)}"
            )
        if "name" not in payload:
            raise ConfigurationError("JobSpec payload needs a name")
        return cls(**dict(payload))  # type: ignore[arg-type]

    @property
    def work_units(self) -> float:
        """The SJF ordering key: a size-weighted iteration count."""
        return self.iterations * self.size_billions * self.gpus


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    PREEMPTED = "preempted"
    COMPLETED = "completed"
    FAILED = "failed"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Legal lifecycle transitions (see the module docstring's machine).
_TRANSITIONS = {
    JobState.PENDING: (JobState.RUNNING,),
    JobState.RUNNING: (JobState.COMPLETED, JobState.FAILED,
                       JobState.PREEMPTED),
    JobState.PREEMPTED: (JobState.RUNNING,),
    JobState.COMPLETED: (),
    JobState.FAILED: (),
}


@dataclass
class JobRecord:
    """The scheduler-owned live state of one submitted job."""

    job_id: str
    spec: JobSpec
    submit_index: int
    submitted_at: float
    state: JobState = JobState.PENDING
    #: when the job last (re-)entered the queue — the aging clock
    queued_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    completed_iterations: int = 0
    preemptions: int = 0
    #: accumulated queue wait over all residencies (first wait + requeues)
    queue_wait_s: float = 0.0
    gpu_seconds: float = 0.0
    checkpoint_overhead_s: float = 0.0
    failure: str = ""
    #: cooperative-preemption flag the job body polls between iterations
    preempt_requested: bool = False
    #: fires when preemption is requested, so a job holding resources in
    #: its analytic fast-path window releases them promptly
    preempt_event: Optional[BaseEvent] = None
    #: memoized per-pool memory demand (filled by the daemon's prober)
    memory_demand: Optional[float] = None
    #: the job's timeline spans mapped to global ranks (cluster trace)
    spans: List[object] = field(default_factory=list)

    def transition(self, new_state: JobState) -> None:
        if new_state not in _TRANSITIONS[self.state]:
            raise ConfigurationError(
                f"job {self.job_id}: illegal transition "
                f"{self.state} -> {new_state}"
            )
        self.state = new_state

    @property
    def remaining_iterations(self) -> int:
        return max(0, self.spec.iterations - self.completed_iterations)

    @property
    def done(self) -> bool:
        return self.state in (JobState.COMPLETED, JobState.FAILED)


@dataclass
class TenantAccount:
    """Aggregated accounting for one tenant."""

    tenant: str
    jobs_submitted: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    preemptions: int = 0
    gpu_seconds: float = 0.0
    checkpoint_overhead_s: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "jobs_submitted": self.jobs_submitted,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "preemptions": self.preemptions,
            "gpu_seconds": round(self.gpu_seconds, 9),
            "checkpoint_overhead_s": round(self.checkpoint_overhead_s, 9),
        }


class JobStore:
    """All jobs the service has seen, with deterministic identity.

    Job ids are dense (``job0``, ``job1``, ...) in submission order;
    submission order is the DES arrival order, which is itself seeded,
    so the whole store enumerates identically across runs.
    """

    def __init__(self) -> None:
        self.records: List[JobRecord] = []
        self.tenants: Dict[str, TenantAccount] = {}
        self._running = 0
        self.max_concurrent = 0
        #: high-water mark of jobs in the system (submitted, not done) —
        #: the heavy-traffic acceptance figure (queue + running)
        self.max_in_system = 0

    def _note_in_system(self) -> None:
        in_system = sum(1 for record in self.records if not record.done)
        self.max_in_system = max(self.max_in_system, in_system)

    def submit(self, spec: JobSpec, now: float) -> JobRecord:
        record = JobRecord(
            job_id=f"job{len(self.records)}",
            spec=spec,
            submit_index=len(self.records),
            submitted_at=now,
            queued_at=now,
        )
        self.records.append(record)
        account = self.tenants.setdefault(spec.tenant,
                                          TenantAccount(spec.tenant))
        account.jobs_submitted += 1
        self._note_in_system()
        return record

    # -- lifecycle hooks (the daemon calls these) ------------------------------
    def mark_started(self, record: JobRecord, now: float) -> None:
        record.transition(JobState.RUNNING)
        record.queue_wait_s += now - record.queued_at
        if record.started_at is None:
            record.started_at = now
        self._running += 1
        self.max_concurrent = max(self.max_concurrent, self._running)

    def mark_completed(self, record: JobRecord, now: float) -> None:
        record.transition(JobState.COMPLETED)
        record.finished_at = now
        self._running -= 1
        self.tenants[record.spec.tenant].jobs_completed += 1

    def mark_failed(self, record: JobRecord, now: float,
                    reason: str) -> None:
        record.transition(JobState.FAILED)
        record.finished_at = now
        record.failure = reason
        self._running -= 1
        self.tenants[record.spec.tenant].jobs_failed += 1

    def mark_preempted(self, record: JobRecord, now: float) -> None:
        record.transition(JobState.PREEMPTED)
        record.queued_at = now
        record.preemptions += 1
        record.preempt_requested = False
        record.preempt_event = None
        self._running -= 1
        self.tenants[record.spec.tenant].preemptions += 1

    def charge_gpu_seconds(self, record: JobRecord, seconds: float) -> None:
        record.gpu_seconds += seconds
        self.tenants[record.spec.tenant].gpu_seconds += seconds

    def charge_checkpoint(self, record: JobRecord, seconds: float) -> None:
        record.checkpoint_overhead_s += seconds
        self.tenants[record.spec.tenant].checkpoint_overhead_s += seconds

    # -- queries ---------------------------------------------------------------
    def waiting(self) -> List[JobRecord]:
        """Schedulable jobs, in submission order."""
        return [r for r in self.records
                if r.state in (JobState.PENDING, JobState.PREEMPTED)]

    def running(self) -> List[JobRecord]:
        return [r for r in self.records if r.state is JobState.RUNNING]

    def all_done(self) -> bool:
        return all(r.done for r in self.records)

    def counts(self) -> Dict[str, int]:
        out = {state.value: 0 for state in JobState}
        for record in self.records:
            out[record.state.value] += 1
        return out
