"""Graceful-degradation reporting: faulted run vs. healthy baseline.

:func:`degradation_report` condenses a (baseline, faulted) pair of
training runs into one JSON-friendly dict: the injected fault list, the
headline metrics of both runs, the resulting slowdown, and the degraded
windows the telemetry ledgers recorded.  All floats are rounded to a
fixed number of significant digits so that repeated runs of the same
seeded plan serialize byte-identically and golden snapshots stay stable
across harmless floating-point reorderings.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional

from ..hardware.link import LinkClass
from ..telemetry.bandwidth import BandwidthMonitor
from .plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.runner import RunMetrics

#: Significant digits kept in report floats; enough to expose any real
#: metric drift, few enough to absorb last-ulp noise.
REPORT_SIG_FIGS = 9

#: Degraded-window gaps shorter than this are idle time between transfers
#: inside one fault window, not a recovery; the report coalesces them.
WINDOW_GAP_TOLERANCE = 1e-3


def round_sig(value: float, digits: int = REPORT_SIG_FIGS) -> float:
    """Round to ``digits`` significant figures (0 and non-finite pass)."""
    if value == 0 or not math.isfinite(value):
        return value
    return round(value, digits - 1 - int(math.floor(math.log10(abs(value)))))


def _coalesce(intervals, gap: float = WINDOW_GAP_TOLERANCE) -> List[tuple]:
    out: List[tuple] = []
    for start, end in intervals:
        if out and start - out[-1][1] <= gap:
            out[-1] = (out[-1][0], max(out[-1][1], end))
        else:
            out.append((start, end))
    return out


def _metrics_summary(metrics: "RunMetrics") -> Dict[str, float]:
    return {
        "iteration_time_s": round_sig(metrics.iteration_time),
        "tflops_per_gpu": round_sig(metrics.tflops),
        "total_time_s": round_sig(metrics.execution.total_time),
    }


def degradation_report(baseline: "RunMetrics", faulted: "RunMetrics",
                       plan: FaultPlan, *,
                       monitor: Optional[BandwidthMonitor] = None) -> dict:
    """One faulted run's graceful-degradation summary.

    ``monitor`` must wrap the cluster the *faulted* run executed on; when
    provided, the report includes per-interconnect-class degraded
    windows from the ledgers' fault annotations.
    """
    slowdown = (
        faulted.iteration_time / baseline.iteration_time
        if baseline.iteration_time > 0 else float("inf")
    )
    report = {
        "strategy": faulted.strategy_name,
        "seed": plan.seed,
        "model_parameters": faulted.model_parameters,
        "num_gpus": faulted.num_gpus,
        "faults": [event.to_dict() for event in plan.events],
        "baseline": _metrics_summary(baseline),
        "faulted": _metrics_summary(faulted),
        "slowdown": round_sig(slowdown),
        "throughput_retained": round_sig(
            faulted.tflops / baseline.tflops if baseline.tflops > 0 else 0.0
        ),
    }
    if monitor is not None:
        windows: Dict[str, List[List[float]]] = {}
        for link_class in LinkClass:
            merged = _coalesce(monitor.degraded_windows(link_class))
            if merged:
                windows[str(link_class)] = [
                    [round_sig(s), round_sig(e)] for s, e in merged
                ]
        report["degraded_windows"] = windows
    return report
