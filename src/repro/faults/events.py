"""Fault-event taxonomy for degraded-fabric simulation.

A :class:`FaultEvent` is one deterministic excursion from healthy
hardware, aimed at a named device or link of the cluster topology:

* ``LINK_DEGRADE`` — the target's links lose ``magnitude`` of their
  capacity for the duration (a throttled NVLink, a renegotiated PCIe
  width, an oversubscribed switch port);
* ``LINK_DOWN`` — the target's links carry nothing for the duration
  (a dark NIC, a pulled cable).  Collectives crossing the outage enter
  the transport retry loop (:class:`repro.collectives.nccl.RetryPolicy`);
  in-flight flows stall and resume on restore;
* ``LINK_FLAP`` — the target oscillates between down and healthy with
  ``period``-long cycles over the window, with seed-reproducible jitter
  on each cycle onset (a flapping transceiver);
* ``GPU_STRAGGLER`` — the target GPU's compute kernels run
  ``1 + magnitude`` times slower (thermal throttling, a sick HBM stack);
* ``NVME_SLOWDOWN`` — the target drive's NAND media throughput drops to
  ``1 / (1 + magnitude)`` of rated (FTL backpressure, thermal limits).

Events are plain data; :class:`repro.faults.plan.FaultPlan` schedules
them and :class:`repro.faults.injector.FaultInjector` applies them to a
live simulation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import FaultPlanError


class FaultKind(enum.Enum):
    """What kind of degradation a fault event injects."""

    LINK_DEGRADE = "degrade"
    LINK_DOWN = "down"
    LINK_FLAP = "flap"
    GPU_STRAGGLER = "straggler"
    NVME_SLOWDOWN = "nvme_slow"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Kinds whose target must resolve to topology links.
LINK_KINDS = frozenset({
    FaultKind.LINK_DEGRADE, FaultKind.LINK_DOWN, FaultKind.LINK_FLAP,
})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: target, kind, window, and severity.

    ``magnitude`` semantics depend on ``kind``:

    * link kinds — fraction of capacity *lost* in ``[0, 1]`` (``LINK_DOWN``
      pins it to 1);
    * ``GPU_STRAGGLER`` / ``NVME_SLOWDOWN`` — extra slowdown ``>= 0``;
      the applied factor is ``1 + magnitude``.

    A zero-magnitude event is, by construction, a no-op: the injector
    skips it entirely so fault-free and zero-magnitude runs are
    bit-identical.
    """

    target: str
    kind: FaultKind
    start: float
    duration: float
    magnitude: float = 1.0
    period: float = 0.0

    def __post_init__(self) -> None:
        if not self.target:
            raise FaultPlanError("fault event needs a target device or link")
        if self.start < 0:
            raise FaultPlanError(
                f"fault start must be non-negative, got {self.start}"
            )
        if self.duration <= 0:
            raise FaultPlanError(
                f"fault duration must be positive, got {self.duration}"
            )
        if self.kind in LINK_KINDS:
            if not 0.0 <= self.magnitude <= 1.0:
                raise FaultPlanError(
                    f"{self.kind} magnitude must be in [0, 1], "
                    f"got {self.magnitude}"
                )
        elif self.magnitude < 0.0:
            raise FaultPlanError(
                f"{self.kind} magnitude must be >= 0, got {self.magnitude}"
            )
        if self.kind is FaultKind.LINK_FLAP:
            if self.period <= 0:
                raise FaultPlanError("a flap fault needs period > 0")
            if self.period > self.duration:
                raise FaultPlanError(
                    f"flap period {self.period} exceeds the fault window "
                    f"{self.duration}"
                )
        elif self.period:
            raise FaultPlanError(
                f"period is only meaningful for flap faults, not {self.kind}"
            )

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def is_noop(self) -> bool:
        """True when applying the event would change nothing."""
        return self.magnitude == 0.0 and self.kind is not FaultKind.LINK_DOWN

    def to_dict(self) -> dict:
        payload = {
            "target": self.target,
            "kind": str(self.kind),
            "start": self.start,
            "duration": self.duration,
            "magnitude": self.magnitude,
        }
        if self.period:
            payload["period"] = self.period
        return payload
