"""Declarative fault schedules and their compact spec-string syntax.

A :class:`FaultPlan` is an ordered set of :class:`FaultEvent`s plus the
seed that makes stochastic expansions (flap jitter) reproducible.  Plans
come from three places:

* programmatic construction (experiments build event lists directly);
* :meth:`FaultPlan.parse` over CLI spec strings::

      node0.nic0:down@t=2ms,dur=1ms
      node0/xgmi:degrade@t=0,dur=1s,mag=0.5
      switch0:flap@t=10ms,dur=200ms,period=40ms
      node1.gpu2:straggler@t=0,dur=5s,mag=0.3
      node0.nvme1:nvme_slow@t=0,dur=2s,mag=4

  (``.`` and ``/`` are interchangeable in targets; times accept ``s``,
  ``ms``, ``us``, ``ns`` suffixes and default to seconds);
* :meth:`FaultPlan.materialize`, which expands flap events into their
  seed-jittered down windows — the form the injector consumes.

``horizon`` optionally bounds the simulated window the plan is meant
for; the ``fault-plan`` analysis pass flags events outside it.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import FaultPlanError
from .events import FaultEvent, FaultKind

#: Spec-string kind aliases (left: accepted; right: canonical kind).
_KIND_ALIASES: Dict[str, FaultKind] = {
    "down": FaultKind.LINK_DOWN,
    "degrade": FaultKind.LINK_DEGRADE,
    "flap": FaultKind.LINK_FLAP,
    "straggler": FaultKind.GPU_STRAGGLER,
    "slow": FaultKind.GPU_STRAGGLER,
    "nvme_slow": FaultKind.NVME_SLOWDOWN,
    "nvme": FaultKind.NVME_SLOWDOWN,
}

_TIME_UNITS = {"s": 1.0, "ms": 1e-3, "us": 1e-6, "ns": 1e-9}

_TIME_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)\s*([a-z]*)\s*$")

#: Flap cycles jitter their onset by up to this fraction of the period.
FLAP_JITTER_FRACTION = 0.2
#: Fraction of each flap cycle spent dark (the rest is recovery).
FLAP_DUTY_FRACTION = 0.5


def parse_time(text: str) -> float:
    """Parse ``2ms`` / ``1.5s`` / ``300us`` / ``0.25`` (seconds)."""
    match = _TIME_RE.match(text)
    if not match:
        raise FaultPlanError(f"cannot parse time {text!r}")
    value, unit = match.groups()
    if unit and unit not in _TIME_UNITS:
        raise FaultPlanError(
            f"unknown time unit {unit!r} in {text!r} "
            f"(expected one of {sorted(_TIME_UNITS)})"
        )
    return float(value) * _TIME_UNITS.get(unit, 1.0)


def canonical_target(target: str) -> str:
    """Normalize a spec target: ``node0.nic0`` -> ``node0/nic0``."""
    return target.strip().replace(".", "/")


def parse_fault_spec(spec: str) -> FaultEvent:
    """Parse one ``target:kind@key=value,...`` spec string."""
    head, sep, tail = spec.partition("@")
    if not sep:
        raise FaultPlanError(
            f"fault spec {spec!r} is missing '@t=...,dur=...'"
        )
    target, sep, kind_text = head.rpartition(":")
    if not sep:
        raise FaultPlanError(
            f"fault spec {spec!r} is missing ':<kind>' "
            f"(one of {sorted(_KIND_ALIASES)})"
        )
    kind = _KIND_ALIASES.get(kind_text.strip().lower())
    if kind is None:
        raise FaultPlanError(
            f"unknown fault kind {kind_text!r} in {spec!r} "
            f"(expected one of {sorted(_KIND_ALIASES)})"
        )
    fields: Dict[str, str] = {}
    for part in tail.split(","):
        key, sep, value = part.partition("=")
        if not sep or not value.strip():
            raise FaultPlanError(
                f"malformed field {part!r} in fault spec {spec!r}"
            )
        fields[key.strip().lower()] = value.strip()
    unknown = set(fields) - {"t", "dur", "mag", "period"}
    if unknown:
        raise FaultPlanError(
            f"unknown fields {sorted(unknown)} in fault spec {spec!r}"
        )
    for required in ("t", "dur"):
        if required not in fields:
            raise FaultPlanError(
                f"fault spec {spec!r} is missing '{required}='"
            )
    try:
        magnitude = float(fields["mag"]) if "mag" in fields else 1.0
    except ValueError:
        raise FaultPlanError(
            f"cannot parse magnitude {fields['mag']!r} in {spec!r}"
        ) from None
    return FaultEvent(
        target=canonical_target(target),
        kind=kind,
        start=parse_time(fields["t"]),
        duration=parse_time(fields["dur"]),
        magnitude=magnitude,
        period=parse_time(fields["period"]) if "period" in fields else 0.0,
    )


@dataclass
class FaultPlan:
    """A deterministic, seed-reproducible schedule of fault events."""

    events: List[FaultEvent] = field(default_factory=list)
    seed: int = 0
    horizon: Optional[float] = None

    def __post_init__(self) -> None:
        if self.horizon is not None and self.horizon <= 0:
            raise FaultPlanError("plan horizon must be positive when set")

    @classmethod
    def parse(cls, specs: Sequence[str], *, seed: int = 0,
              horizon: Optional[float] = None) -> "FaultPlan":
        """Build a plan from CLI-style spec strings."""
        return cls(events=[parse_fault_spec(s) for s in specs], seed=seed,
                   horizon=horizon)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def span(self) -> float:
        """Latest event end time (0 for an empty plan)."""
        return max((event.end for event in self.events), default=0.0)

    def materialize(self) -> List[FaultEvent]:
        """Expand the plan into directly-applicable events.

        Flap events become one degraded window per cycle, each onset
        jittered by up to ``FLAP_JITTER_FRACTION`` of the period using
        an RNG derived from ``seed`` and the event's position — the same
        seed always yields the same expansion.  No-op (zero-magnitude)
        events are dropped so they cannot perturb the simulation even at
        floating-point level.
        """
        expanded: List[FaultEvent] = []
        for index, event in enumerate(self.events):
            if event.is_noop:
                continue
            if event.kind is not FaultKind.LINK_FLAP:
                expanded.append(event)
                continue
            rng = random.Random(self.seed * 1_000_003 + index)
            kind = (FaultKind.LINK_DOWN if event.magnitude >= 1.0
                    else FaultKind.LINK_DEGRADE)
            cycle_start = event.start
            while cycle_start < event.end - 1e-15:
                cycle_end = min(cycle_start + event.period, event.end)
                jitter = rng.uniform(0.0, FLAP_JITTER_FRACTION) * event.period
                onset = min(cycle_start + jitter, cycle_end)
                dark = min(event.period * FLAP_DUTY_FRACTION,
                           cycle_end - onset)
                if dark > 0:
                    expanded.append(FaultEvent(
                        target=event.target, kind=kind, start=onset,
                        duration=dark, magnitude=event.magnitude,
                    ))
                cycle_start += event.period
        expanded.sort(key=lambda e: (e.start, e.end, e.target, e.kind.value))
        return expanded

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "horizon": self.horizon,
            "events": [event.to_dict() for event in self.events],
        }
