"""Deterministic fault injection and degraded-fabric simulation.

Public surface:

* :class:`FaultKind` / :class:`FaultEvent` — the fault taxonomy;
* :class:`FaultPlan` — a declarative, seed-reproducible schedule
  (:meth:`FaultPlan.parse` understands the CLI's compact spec strings);
* :class:`FaultInjector` — applies a plan to a live engine/network pair
  through the engine's run-start hook;
* :func:`resolve_target` / :func:`plan_problems` — target resolution and
  the non-raising validation the analysis lint uses;
* :func:`degradation_report` — faulted-vs-baseline run comparison.
"""

from .events import LINK_KINDS, FaultEvent, FaultKind
from .injector import (
    FaultInjector,
    ResolvedTarget,
    plan_problems,
    resolve_target,
)
from .plan import FaultPlan, parse_fault_spec, parse_time
from .report import degradation_report, round_sig

__all__ = [
    "LINK_KINDS",
    "FaultEvent",
    "FaultKind",
    "FaultInjector",
    "FaultPlan",
    "ResolvedTarget",
    "degradation_report",
    "parse_fault_spec",
    "parse_time",
    "plan_problems",
    "resolve_target",
    "round_sig",
]
