"""Applies a :class:`~repro.faults.plan.FaultPlan` to a live simulation.

The :class:`FaultInjector` arms itself through the engine's run-start
hook: when :meth:`repro.sim.engine.Engine.run` first drains, the injector
schedules one apply and one revert callback per materialized fault
event.  Apply/revert bracket each degraded window:

* the flow network *settles* first, so every in-flight transfer's ledger
  interval is accounted at the rates (and degradation stamps) that
  actually applied;
* the capacity change lands (``Link.set_capacity_fraction``,
  ``NvmeDrive.set_slowdown``, or the per-rank straggler stack);
* the network *rebalances*, re-deriving every active flow's fair share
  from the new capacities.

Overlapping faults on the same target stack multiplicatively: two
independent 50 % capacity losses leave 25 % of the link; two stragglers
of +0.5 each slow the GPU by 2.25x.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import FaultPlanError
from ..hardware.cluster import Cluster
from ..hardware.link import Link
from ..hardware.nvme import NvmeDrive
from ..sim.engine import Engine
from ..sim.flows import FlowNetwork
from .events import LINK_KINDS, FaultEvent, FaultKind
from .plan import FaultPlan


@dataclass
class ResolvedTarget:
    """What a fault event's target name maps to on a concrete cluster."""

    links: List[Link] = field(default_factory=list)
    rank: Optional[int] = None
    drive: Optional[NvmeDrive] = None


def _link_by_name(cluster: Cluster, name: str) -> Optional[Link]:
    for link in cluster.topology.links:
        if link.name == name:
            return link
    return None


def _drive_by_name(cluster: Cluster, name: str) -> Optional[NvmeDrive]:
    for node in cluster.nodes:
        for drive in node.nvme_drives:
            if drive.name == name:
                return drive
    return None


def _rank_of_target(cluster: Cluster, name: str) -> Optional[int]:
    if name.startswith("rank") and name[4:].isdigit():
        rank = int(name[4:])
        return rank if rank < cluster.num_gpus else None
    for rank in range(cluster.num_gpus):
        if cluster.gpu(rank).name == name:
            return rank
    return None


def resolve_target(cluster: Cluster, event: FaultEvent) -> ResolvedTarget:
    """Map an event's target name to cluster hardware, or raise.

    * link kinds accept a link name (``node0/xgmi``) or any device name
      — the blast radius of a device outage is every link attached to it
      (``node0/nic0`` takes its PCIe and RoCE attachments down;
      ``switch0`` darkens the whole inter-node fabric);
    * ``GPU_STRAGGLER`` accepts a GPU device name (``node0/gpu2``) or a
      global rank (``rank5``);
    * ``NVME_SLOWDOWN`` accepts an NVMe drive name (``node0/nvme1``).

    Raises :class:`~repro.errors.FaultPlanError` when the target does
    not exist or its type does not suit the fault kind — also the check
    the ``fault-plan`` analysis lint runs before the DES starts.
    """
    name = event.target
    if event.kind in LINK_KINDS:
        link = _link_by_name(cluster, name)
        if link is not None:
            return ResolvedTarget(links=[link])
        if cluster.topology.has_device(name):
            links = cluster.topology.links_of_device(name)
            if not links:
                raise FaultPlanError(
                    f"fault target {name!r} is a device with no links"
                )
            return ResolvedTarget(links=links)
        raise FaultPlanError(
            f"{event.kind} fault target {name!r} matches no link or "
            f"device in the cluster topology"
        )
    if event.kind is FaultKind.GPU_STRAGGLER:
        rank = _rank_of_target(cluster, name)
        if rank is None:
            raise FaultPlanError(
                f"straggler fault target {name!r} is not a GPU device or "
                f"'rankN' (cluster has ranks 0..{cluster.num_gpus - 1})"
            )
        return ResolvedTarget(rank=rank)
    if event.kind is FaultKind.NVME_SLOWDOWN:
        drive = _drive_by_name(cluster, name)
        if drive is None:
            raise FaultPlanError(
                f"NVMe fault target {name!r} matches no drive in the cluster"
            )
        return ResolvedTarget(drive=drive)
    raise FaultPlanError(f"unhandled fault kind {event.kind}")


def plan_problems(cluster: Cluster, plan: FaultPlan) -> List[str]:
    """Every problem that would make the plan unusable on this cluster.

    Non-raising variant of :func:`resolve_target` over the whole plan,
    plus the horizon check — what the analysis lint reports.
    """
    problems: List[str] = []
    for event in plan.events:
        try:
            resolve_target(cluster, event)
        except FaultPlanError as exc:
            problems.append(str(exc))
        if plan.horizon is not None and event.end > plan.horizon:
            problems.append(
                f"{event.kind} fault on {event.target!r} ends at "
                f"{event.end:.6g} s, past the plan horizon "
                f"{plan.horizon:.6g} s"
            )
    return problems


class FaultInjector:
    """Schedules and applies one plan's faults onto a live engine run."""

    def __init__(self, plan: FaultPlan, cluster: Cluster, engine: Engine,
                 network: FlowNetwork) -> None:
        self.plan = plan
        self.cluster = cluster
        self.engine = engine
        self.network = network
        self.applied_events: List[FaultEvent] = plan.materialize()
        # Resolve every target eagerly: a bad plan fails before the run.
        self._resolved = [
            resolve_target(cluster, event) for event in self.applied_events
        ]
        #: active capacity-loss fractions per link name
        self._link_losses: Dict[str, List[float]] = {}
        #: active straggler slowdown factors per rank
        self._rank_factors: Dict[int, List[float]] = {}
        #: active NVMe slowdown factors per drive name
        self._drive_factors: Dict[str, List[float]] = {}
        if self.applied_events:
            engine.add_start_hook(self._arm)

    # -- scheduling -----------------------------------------------------------
    def _arm(self, engine: Engine) -> None:
        for event, resolved in zip(self.applied_events, self._resolved):
            engine.schedule_at(event.start, self._apply, event, resolved)
            engine.schedule_at(event.end, self._revert, event, resolved)

    # -- state transitions ----------------------------------------------------
    @staticmethod
    def _surviving_fraction(losses: List[float]) -> float:
        fraction = 1.0
        for loss in losses:
            fraction *= 1.0 - loss
        return max(0.0, fraction)

    def _loss_of(self, event: FaultEvent) -> float:
        return 1.0 if event.kind is FaultKind.LINK_DOWN else event.magnitude

    def _apply(self, event: FaultEvent, resolved: ResolvedTarget) -> None:
        self.engine.note_touch(f"injector:{event.target}")
        if resolved.links:
            self.network.settle()
            for link in resolved.links:
                losses = self._link_losses.setdefault(link.name, [])
                losses.append(self._loss_of(event))
                link.set_capacity_fraction(
                    self._surviving_fraction(losses), at_time=self.engine.now
                )
            self.network.rebalance()
        elif resolved.rank is not None:
            self._rank_factors.setdefault(resolved.rank, []).append(
                1.0 + event.magnitude
            )
        elif resolved.drive is not None:
            factors = self._drive_factors.setdefault(resolved.drive.name, [])
            factors.append(1.0 + event.magnitude)
            resolved.drive.set_slowdown(self._product(factors))

    def _revert(self, event: FaultEvent, resolved: ResolvedTarget) -> None:
        self.engine.note_touch(f"injector:{event.target}")
        if resolved.links:
            self.network.settle()
            for link in resolved.links:
                losses = self._link_losses[link.name]
                losses.remove(self._loss_of(event))
                link.set_capacity_fraction(
                    self._surviving_fraction(losses), at_time=self.engine.now
                )
            self.network.rebalance()
        elif resolved.rank is not None:
            self._rank_factors[resolved.rank].remove(1.0 + event.magnitude)
        elif resolved.drive is not None:
            factors = self._drive_factors[resolved.drive.name]
            factors.remove(1.0 + event.magnitude)
            resolved.drive.set_slowdown(self._product(factors))

    @staticmethod
    def _product(factors: List[float]) -> float:
        out = 1.0
        for factor in factors:
            out *= factor
        return out

    # -- queries used by the executor -----------------------------------------
    def compute_multiplier(self, rank: int) -> float:
        """Current straggler slowdown (>= 1) for one rank's kernels."""
        return self._product(self._rank_factors.get(rank, []))

    @property
    def has_faults(self) -> bool:
        return bool(self.applied_events)
