"""Core API: calibration, training runner, and model-size search."""

from .. import calibration
from .results import (
    compare_runs,
    headline_from_payload,
    load_metrics_dict,
    load_run_spec,
    metrics_to_dict,
    save_metrics,
)
from .runner import RunMetrics, apply_memory_plan, plan_only, run_training
from .validate import ValidationReport, validate_run
from .search import (
    PAPER_SIZE_GRID,
    SearchResult,
    fits,
    max_model_size,
    max_model_size_on_grid,
    model_for_billions,
    snap_to_grid,
)

__all__ = [
    "PAPER_SIZE_GRID",
    "RunMetrics",
    "SearchResult",
    "ValidationReport",
    "apply_memory_plan",
    "compare_runs",
    "calibration",
    "fits",
    "headline_from_payload",
    "max_model_size",
    "max_model_size_on_grid",
    "model_for_billions",
    "plan_only",
    "load_metrics_dict",
    "load_run_spec",
    "metrics_to_dict",
    "run_training",
    "save_metrics",
    "validate_run",
    "snap_to_grid",
]
