"""Maximum-achievable-model-size search (paper Figs. 6 and 13).

The paper scales the GPT-2-like model by adding layers until training no
longer fits ("we vary the number of layers ... until it reaches the
maximum size that particular hardware/software configuration can
handle").  :func:`max_model_size` replays that procedure against the
strategy's memory plan: exponential growth to bracket the ceiling, then
binary search on the layer count.

:data:`PAPER_SIZE_GRID` is the model-size grid of paper Table V; the
paper reports achieved sizes on this grid, so :func:`max_model_size_on_grid`
snaps the search result the same way for comparable numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import OutOfMemoryError
from ..hardware.cluster import Cluster
from ..hardware.nvme import Raid0Volume
from ..model.config import ModelConfig, TrainingConfig, paper_model
from ..model.params import layers_for_target_params, total_parameters
from ..parallel.placement import PlacementConfig
from ..parallel.strategy import TrainingStrategy
from ..units import billion, to_billion
from .runner import plan_only

#: Paper Table V's model-size grid, billions of parameters.
PAPER_SIZE_GRID: Tuple[float, ...] = (
    0.7, 1.4, 2.9, 4.4, 5.2, 5.5, 6.0, 6.6, 7.8, 8.9,
    11.6, 14.2, 20.6, 26.9, 33.3,
)


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one max-size search."""

    max_layers: int
    max_parameters: int
    grid_parameters: Optional[float]  # snapped to PAPER_SIZE_GRID, billions

    @property
    def billions(self) -> float:
        return to_billion(self.max_parameters)


def fits(cluster: Cluster, strategy: TrainingStrategy, model: ModelConfig, *,
         training: Optional[TrainingConfig] = None,
         placement: Optional[PlacementConfig] = None,
         swap_volumes: Optional[Dict[int, Raid0Volume]] = None) -> bool:
    """Whether the strategy's memory plan fits the cluster."""
    try:
        plan_only(cluster, strategy, model, training=training,
                  placement=placement, swap_volumes=swap_volumes)
        return True
    except OutOfMemoryError:
        return False


def max_model_size(cluster: Cluster, strategy: TrainingStrategy, *,
                   training: Optional[TrainingConfig] = None,
                   placement: Optional[PlacementConfig] = None,
                   swap_volumes: Optional[Dict[int, Raid0Volume]] = None,
                   max_layers: int = 4096) -> SearchResult:
    """Largest layer count (and parameter count) the configuration fits."""
    base = paper_model(1)

    def check(layers: int) -> bool:
        return fits(cluster, strategy, base.with_layers(layers),
                    training=training, placement=placement,
                    swap_volumes=swap_volumes)

    if not check(1):
        raise OutOfMemoryError(
            f"{strategy.name}: even a one-layer model does not fit"
        )
    # Bracket by doubling, then binary search the boundary.
    low = 1
    high = 2
    while high <= max_layers and check(high):
        low = high
        high *= 2
    high = min(high, max_layers + 1)
    while high - low > 1:
        mid = (low + high) // 2
        if check(mid):
            low = mid
        else:
            high = mid
    params = total_parameters(base.with_layers(low))
    return SearchResult(
        max_layers=low,
        max_parameters=params,
        grid_parameters=snap_to_grid(params),
    )


def snap_to_grid(params: int) -> Optional[float]:
    """Largest PAPER_SIZE_GRID entry at or below ``params``."""
    billions = to_billion(params)
    candidates = [g for g in PAPER_SIZE_GRID if g <= billions + 0.05]
    return max(candidates) if candidates else None


def max_model_size_on_grid(cluster: Cluster, strategy: TrainingStrategy, *,
                           training: Optional[TrainingConfig] = None,
                           placement: Optional[PlacementConfig] = None,
                           swap_volumes: Optional[Dict[int, Raid0Volume]] = None
                           ) -> Optional[float]:
    """Achieved model size on the paper's grid, billions of parameters."""
    result = max_model_size(cluster, strategy, training=training,
                            placement=placement, swap_volumes=swap_volumes)
    return result.grid_parameters


def model_for_billions(billions: float) -> ModelConfig:
    """The paper's model at a target size in billions of parameters."""
    layers = layers_for_target_params(paper_model(1), billion(billions))
    return paper_model(layers)
