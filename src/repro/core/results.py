"""Result serialization: RunMetrics <-> plain dicts / JSON files.

Lets the CLI, the benchmark harness, and downstream analysis scripts
persist simulated measurements without pickling live simulator objects.
Only the measurement payload is serialized (not timelines/ledgers, which
can be regenerated deterministically from the same configuration).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from ..errors import ConfigurationError
from .runner import RunMetrics

SCHEMA_VERSION = 1


def metrics_to_dict(metrics: RunMetrics) -> Dict[str, object]:
    """A JSON-safe summary of one run."""
    return {
        "schema_version": SCHEMA_VERSION,
        "strategy": metrics.strategy_name,
        "model_parameters": int(metrics.model_parameters),
        "nodes": metrics.num_nodes,
        "gpus": metrics.num_gpus,
        "tflops": metrics.tflops,
        "iteration_seconds": metrics.iteration_time,
        "iteration_times": list(metrics.throughput.iteration_times),
        "flops_per_iteration": metrics.throughput.flops_per_iteration,
        "measurement_window": list(metrics.measurement_window),
        "memory_bytes": {
            "gpu": metrics.memory.gpu_used,
            "cpu": metrics.memory.cpu_used,
            "nvme": metrics.memory.nvme_used,
        },
        "memory_by_label": {
            "gpu": dict(metrics.memory.gpu_by_label),
            "cpu": dict(metrics.memory.cpu_by_label),
            "nvme": dict(metrics.memory.nvme_by_label),
        },
        "bandwidth_gbps": {
            str(cls): {
                "avg": stats.average_gbps,
                "p90": stats.p90_gbps,
                "peak": stats.peak_gbps,
            }
            for cls, stats in metrics.bandwidth.items()
        },
    }


def save_metrics(metrics: RunMetrics, path: Union[str, Path]) -> Path:
    """Write one run's summary as JSON; returns the path written."""
    target = Path(path)
    target.write_text(json.dumps(metrics_to_dict(metrics), indent=2))
    return target


def load_metrics_dict(path: Union[str, Path]) -> Dict[str, object]:
    """Read a summary back; validates the schema version."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported results schema version {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    return payload


def compare_runs(runs: List[Dict[str, object]],
                 metric: str = "tflops") -> List[Dict[str, object]]:
    """Rank saved runs by a top-level metric, best first."""
    missing = [r for r in runs if metric not in r]
    if missing:
        raise ConfigurationError(f"runs missing metric {metric!r}")
    return sorted(runs, key=lambda r: r[metric], reverse=True)
