"""Result serialization: RunMetrics <-> plain dicts / JSON files.

Lets the CLI, the benchmark harness, the campaign result cache, and
downstream analysis scripts persist simulated measurements without
pickling live simulator objects.  Only the measurement payload is
serialized (not timelines/ledgers, which can be regenerated
deterministically from the same configuration).

Schema v2 embeds the canonical :class:`~repro.api.RunSpec` the run was
materialized from (``payload["spec"]``, ``None`` for object-level
``run_training`` calls), making a saved result fully round-trippable:
:func:`load_run_spec` recovers the exact configuration, and re-running
it reproduces the payload field for field.

Schema v3 adds ``payload["fastpath"]`` — the
:class:`~repro.sim.fastpath.FastpathReport` describing what the hybrid
fast path did (``None`` for plain full-fidelity runs).  The field is
*provenance*, not measurement: :func:`headline_from_payload` skips it so
hybrid and full results of the same steady workload flatten to the same
headline, which is exactly what the differential tests assert.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..errors import ConfigurationError
from .runner import RunMetrics

#: v3: adds the ``fastpath`` provenance block (hybrid-fidelity runs).
#: The version is mixed into every cache salt (:func:`repro.api.spec.
#: default_salt`), so bumping it wholesale-invalidates cached results.
SCHEMA_VERSION = 3


def metrics_to_dict(metrics: RunMetrics) -> Dict[str, object]:
    """A JSON-safe summary of one run."""
    return {
        "schema_version": SCHEMA_VERSION,
        "strategy": metrics.strategy_name,
        "spec": metrics.spec.to_dict() if metrics.spec is not None else None,
        "fastpath": (metrics.fastpath.to_dict()
                     if metrics.fastpath is not None else None),
        # Additive (leak-checked runs only), so v3 payloads round-trip.
        "leaks": (metrics.leaks.to_dict()
                  if metrics.leaks is not None else None),
        "model_parameters": int(metrics.model_parameters),
        "nodes": metrics.num_nodes,
        "gpus": metrics.num_gpus,
        "tflops": metrics.tflops,
        "iteration_seconds": metrics.iteration_time,
        "iteration_times": list(metrics.throughput.iteration_times),
        "flops_per_iteration": metrics.throughput.flops_per_iteration,
        "measurement_window": list(metrics.measurement_window),
        "memory_bytes": {
            "gpu": metrics.memory.gpu_used,
            "cpu": metrics.memory.cpu_used,
            "nvme": metrics.memory.nvme_used,
        },
        "memory_by_label": {
            "gpu": dict(metrics.memory.gpu_by_label),
            "cpu": dict(metrics.memory.cpu_by_label),
            "nvme": dict(metrics.memory.nvme_by_label),
        },
        "bandwidth_gbps": {
            str(cls): {
                "avg": stats.average_gbps,
                "p90": stats.p90_gbps,
                "peak": stats.peak_gbps,
            }
            for cls, stats in metrics.bandwidth.items()
        },
    }


def save_metrics(metrics: RunMetrics, path: Union[str, Path]) -> Path:
    """Write one run's summary as JSON; returns the path written."""
    target = Path(path)
    target.write_text(json.dumps(metrics_to_dict(metrics), indent=2))
    return target


def load_metrics_dict(path: Union[str, Path]) -> Dict[str, object]:
    """Read a summary back; validates the schema version."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported results schema version {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    return payload


def load_run_spec(payload: Dict[str, object]):
    """The :class:`~repro.api.RunSpec` a saved payload was produced from.

    Returns ``None`` for results of object-level ``run_training`` calls
    (schema v2 payloads with ``spec: null``).  Re-running the returned
    spec through :func:`repro.api.run_spec` regenerates the payload
    deterministically — the round trip the campaign cache relies on.
    """
    from ..api.spec import RunSpec

    spec_payload = payload.get("spec")
    if spec_payload is None:
        return None
    if not isinstance(spec_payload, dict):
        raise ConfigurationError(
            f"results payload has a malformed spec: {type(spec_payload)}"
        )
    return RunSpec.from_dict(spec_payload)


def compare_runs(runs: List[Dict[str, object]],
                 metric: str = "tflops") -> List[Dict[str, object]]:
    """Rank saved runs by a top-level metric, best first."""
    missing = [r for r in runs if metric not in r]
    if missing:
        raise ConfigurationError(f"runs missing metric {metric!r}")
    return sorted(runs, key=lambda r: r[metric], reverse=True)


def headline_from_payload(payload: Dict[str, object],
                          prefix: str = "") -> Dict[str, object]:
    """Flatten a results payload into scalar ``{field: value}`` pairs.

    The campaign runner's field-identity check (serial vs. parallel
    execution) compares these flats with the perturbation differ's
    significant-figure rounding; nested dicts flatten with dotted keys.
    """
    flat: Dict[str, object] = {}
    # "fastpath" is provenance (how the result was obtained), not a
    # measurement: skipping it keeps hybrid and full headlines comparable.
    skip = {"schema_version", "spec", "fastpath"}
    for key, value in payload.items():
        if key in skip:
            continue
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(headline_from_payload(value, prefix=f"{name}."))
        elif isinstance(value, list):
            for index, item in enumerate(value):
                flat[f"{name}[{index}]"] = item
        else:
            flat[name] = value
    return flat
