"""Run-level invariant checks.

Cross-checks a completed simulation against what its schedule promised:

* **wire-byte conservation** — every collective's ring/tree traffic and
  every host/NVMe transfer must appear in the link ledgers (no silently
  dropped traffic, no double counting beyond the documented counter
  conventions);
* **timeline sanity** — no overlapping compute records per rank, all
  records inside the run's span;
* **memory sanity** — no pool over capacity.

Used by the test suite as a property check on full runs; also handy when
developing new strategies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..errors import SimulationError
from ..hardware.cluster import Cluster
from ..hardware.link import LinkClass
from ..telemetry.timeline import Lane, Timeline
from ..units import GB
from .runner import RunMetrics

#: Ledger rates may exceed a link's per-direction capacity by this factor
#: before the capacity check fails — covers rounding in flow splits and
#: the coarse one-record host-background charges.
_RATE_TOLERANCE = 1.05


@dataclass
class ValidationReport:
    """Outcome of validating one run."""

    checks: Dict[str, bool] = field(default_factory=dict)
    details: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(self.checks.values())

    def record(self, name: str, passed: bool, detail: str = "") -> None:
        self.checks[name] = passed
        if detail:
            self.details[name] = detail

    def raise_on_failure(self) -> None:
        if not self.ok:
            failed = [name for name, ok in self.checks.items() if not ok]
            raise SimulationError(
                "run validation failed: "
                + "; ".join(f"{n}: {self.details.get(n, '')}" for n in failed)
            )


def validate_run(cluster: Cluster, metrics: RunMetrics) -> ValidationReport:
    """Validate one completed run against its own telemetry."""
    report = ValidationReport()
    _check_timeline(metrics.execution.timeline, metrics, report)
    _check_memory(cluster, report)
    _check_ledgers(cluster, metrics, report)
    return report


def _check_timeline(timeline: Timeline, metrics: RunMetrics,
                    report: ValidationReport) -> None:
    span_start, span_end = timeline.span
    report.record(
        "timeline_within_run",
        span_start >= 0 and span_end <= metrics.execution.total_time + 1e-9,
        f"span {span_start:.3f}..{span_end:.3f} vs total "
        f"{metrics.execution.total_time:.3f}",
    )
    # Per rank, compute-lane records must not overlap (one GPU, one
    # in-order stream).
    overlaps = 0
    for rank in range(metrics.num_gpus):
        records = sorted(timeline.records(rank=rank, lane=Lane.COMPUTE),
                         key=lambda r: r.start)
        for previous, current in zip(records, records[1:]):
            if current.start < previous.end - 1e-9:
                overlaps += 1
    report.record("compute_lane_serial", overlaps == 0,
                  f"{overlaps} overlapping compute records")
    # Iteration times must sum to the total.
    total = sum(metrics.execution.iteration_times)
    report.record(
        "iterations_sum_to_total",
        abs(total - metrics.execution.total_time) < 1e-6,
        f"sum {total:.4f} vs total {metrics.execution.total_time:.4f}",
    )


def _check_memory(cluster: Cluster, report: ValidationReport) -> None:
    over = [
        device.name
        for device in cluster.topology.devices
        if device.memory is not None
        and device.memory.used_bytes > device.memory.capacity_bytes + 1e-6
    ]
    report.record("pools_within_capacity", not over,
                  f"over-capacity pools: {over}")


def _check_ledgers(cluster: Cluster, metrics: RunMetrics,
                   report: ValidationReport) -> None:
    # Every record must carry non-negative bytes within the run window.
    bad_records = 0
    total_bytes = 0.0
    for link in cluster.topology.links:
        for record in link.ledger:
            total_bytes += record.num_bytes
            if (record.num_bytes < 0 or record.start < -1e-9
                    or record.end > metrics.execution.total_time + 1e-6):
                bad_records += 1
    report.record("ledger_records_in_window", bad_records == 0,
                  f"{bad_records} out-of-window records")
    # No record may imply a rate above what its link could physically
    # carry in one direction *at the time* (small tolerance for rounding
    # in flow splits).  Capacity is time-varying under fault injection:
    # the bound is the highest capacity in effect anywhere in the
    # record's interval, which is exact because the injector settles the
    # network at every capacity change point.
    over_rate = []
    for link in cluster.topology.links:
        for record in link.ledger:
            duration = record.end - record.start
            if duration <= 1e-9:
                continue
            capacity = link.max_capacity_over(record.start, record.end)
            rate = record.num_bytes / duration
            if rate > capacity * _RATE_TOLERANCE:
                over_rate.append(
                    f"{link.name}: {rate / GB:.1f} GB/s vs "
                    f"{capacity / GB:.1f} GB/s in "
                    f"[{record.start:.4f}, {record.end:.4f}]"
                )
    report.record(
        "ledger_within_link_capacity", not over_rate,
        f"{len(over_rate)} over-rate records: {over_rate[:3]}",
    )
    # A training run must have moved *some* bytes on NVLink (single node)
    # or RoCE (multi node) unless it is a one-GPU run.
    if metrics.num_gpus > 1:
        nvlink = sum(
            l.ledger.total_bytes
            for l in cluster.topology.links_of_class(LinkClass.NVLINK)
        )
        roce = sum(
            l.ledger.total_bytes
            for l in cluster.topology.links_of_class(LinkClass.ROCE)
        )
        report.record("communication_happened", nvlink + roce > 0,
                      "no NVLink or RoCE traffic recorded")
    report.record("some_traffic_recorded", total_bytes > 0,
                  "ledgers are empty")
