"""High-level training-run driver: plan memory, execute, measure.

:func:`run_training` is the package's main entry point: given a cluster,
a strategy, and a model, it applies the strategy's memory plan to the
cluster's pools (raising :class:`~repro.errors.OutOfMemoryError` when the
model does not fit — the signal the size search uses), compiles and runs
the iteration schedule on the DES, and returns a :class:`RunMetrics`
bundle holding everything the paper's tables and figures need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from .. import calibration
from ..analysis.api import analyze_run_config
from ..collectives.nccl import RetryPolicy
from ..errors import ConfigurationError, OutOfMemoryError
from ..faults.plan import FaultPlan
from ..hardware.cluster import Cluster
from ..hardware.link import LinkClass
from ..hardware.nvme import Raid0Volume
from ..model.config import ModelConfig, TrainingConfig
from ..model.params import total_parameters
from ..parallel.placement import DEFAULT_PLACEMENT, PlacementConfig
from ..parallel.strategy import MemoryPlan, StrategyContext, TrainingStrategy
from ..runtime.executor import ExecutionResult, Executor
from ..sim.engine import TieOrder
from ..sim.fastpath import (
    FastpathReport,
    ambient_fidelity,
    extrapolate_execution,
    hybrid_simulated_iterations,
    is_steady,
    validate_fidelity,
)
from ..sim.leaksan import LeakReport, LeakSanitizer
from ..sim.sanitizer import SanitizerReport
from ..telemetry.bandwidth import BandwidthMonitor, BandwidthStats
from ..telemetry.flops_profiler import FlopsProfiler, ThroughputReport
from ..telemetry.memory import MemoryReport, snapshot
from ..trace.model import Trace
from ..trace.recorder import TraceRecorder, build_trace
from ..units import GB

if TYPE_CHECKING:  # import cycle: repro.api.build materializes via us
    from ..api.spec import RunSpec


@dataclass
class RunMetrics:
    """Everything measured for one training configuration."""

    strategy_name: str
    model_parameters: int
    num_nodes: int
    num_gpus: int
    throughput: ThroughputReport
    memory: MemoryReport
    bandwidth: Dict[LinkClass, BandwidthStats]
    execution: ExecutionResult
    measurement_window: Tuple[float, float]
    #: populated only for traced runs (``run_training(..., trace=True)``)
    trace: Optional[Trace] = None
    #: the canonical spec this run was materialized from, when it came
    #: through :func:`repro.api.run_spec` — what result caching keys on
    spec: Optional["RunSpec"] = None
    #: what the hybrid fast path did, for runs requested at
    #: ``fidelity="hybrid"`` (``None`` for plain full-fidelity runs)
    fastpath: Optional[FastpathReport] = None

    @property
    def tflops(self) -> float:
        return self.throughput.tflops

    @property
    def iteration_time(self) -> float:
        return self.throughput.mean_iteration_time

    @property
    def billions_of_parameters(self) -> float:
        return self.model_parameters / GB

    @property
    def sanitizer(self) -> Optional[SanitizerReport]:
        """The schedule-sanitizer report, for sanitized runs only."""
        return self.execution.sanitizer

    @property
    def leaks(self) -> Optional[LeakReport]:
        """The leak-sanitizer report, for leak-checked runs only."""
        return self.execution.leaks


def apply_memory_plan(cluster: Cluster, plan: MemoryPlan,
                      swap_volumes: Optional[Dict[int, Raid0Volume]] = None
                      ) -> None:
    """Charge the plan's per-rank bytes to the cluster's memory pools.

    Raises :class:`~repro.errors.OutOfMemoryError` on the first pool that
    cannot satisfy an allocation — the CUDA-OOM analog.
    """
    pinned_per_pool: Dict[str, float] = {}
    for rank in range(cluster.num_gpus):
        gpu = cluster.gpu(rank)
        for label, num_bytes in plan.gpu.items():
            gpu.memory.allocate(label, num_bytes)
        dram = cluster.dram_for_rank(rank)
        for label, num_bytes in plan.cpu.items():
            dram.memory.allocate(label, num_bytes)
            if label in calibration.PINNED_LABELS:
                pinned = pinned_per_pool.get(dram.name, 0.0) + num_bytes
                pinned_per_pool[dram.name] = pinned
                ceiling = (dram.memory.capacity_bytes
                           * calibration.PINNED_MEMORY_FRACTION)
                if pinned > ceiling:
                    raise OutOfMemoryError(
                        f"{dram.name}: pinned allocations "
                        f"({pinned / GB:.0f} GB) exceed the page-locked "
                        f"ceiling ({ceiling / GB:.0f} GB)",
                        device=dram.name,
                        required_bytes=pinned,
                        available_bytes=ceiling,
                    )
        if plan.nvme:
            if not swap_volumes or rank not in swap_volumes:
                raise ConfigurationError(
                    f"rank {rank} plans NVMe residency but has no swap volume"
                )
            volume = swap_volumes[rank]
            for label, num_bytes in plan.nvme.items():
                per_drive = num_bytes / len(volume.drives)
                for drive in volume.drives:
                    drive.memory.allocate(label, per_drive)


def release_memory_plan(cluster: Cluster, plan: MemoryPlan,
                        swap_volumes: Optional[Dict[int, Raid0Volume]] = None
                        ) -> None:
    """Return every byte :func:`apply_memory_plan` charged.

    The inverse walks distinct *pools* rather than ranks: several ranks
    can share one DRAM (or NVMe) pool, where their same-label charges
    accumulated, and ``free`` releases a label's whole balance at once.
    Labels are freed with ``missing_ok=True`` because a plan's label set
    spans pool kinds (GPU labels are absent from DRAM pools and vice
    versa) — the documented idempotent-teardown contract of
    :meth:`~repro.hardware.devices.MemoryPool.free`.
    """
    pools: Dict[int, object] = {}
    for rank in range(cluster.num_gpus):
        gpu_pool = cluster.gpu(rank).memory
        dram_pool = cluster.dram_for_rank(rank).memory
        pools.setdefault(id(gpu_pool), gpu_pool)
        pools.setdefault(id(dram_pool), dram_pool)
    if swap_volumes:
        for volume in swap_volumes.values():
            for drive in volume.drives:
                pools.setdefault(id(drive.memory), drive.memory)
    labels = (*plan.gpu, *plan.cpu, *plan.nvme)
    for pool in pools.values():
        for label in labels:
            pool.free(label, missing_ok=True)


def run_training(cluster: Cluster, strategy: TrainingStrategy,
                 model: ModelConfig, *,
                 training: Optional[TrainingConfig] = None,
                 iterations: int = 3,
                 warmup_iterations: int = 1,
                 placement: Optional[PlacementConfig] = None,
                 swap_volumes: Optional[Dict[int, Raid0Volume]] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 tie_order: Optional[TieOrder] = None,
                 sanitize: bool = False,
                 trace: bool = False,
                 leak_check: bool = False,
                 preflight: bool = True,
                 fidelity: Optional[str] = None,
                 spec: Optional["RunSpec"] = None) -> RunMetrics:
    """Simulate ``iterations`` optimizer steps and measure everything.

    The first ``warmup_iterations`` are excluded from throughput and
    bandwidth statistics, mirroring the paper's methodology of collecting
    from the fifth of ten iterations onward (Section III-B1).

    ``fault_plan`` injects deterministic hardware faults into the run
    (see :mod:`repro.faults`); ``retry_policy`` tunes how collectives
    ride out transient link outages.

    ``tie_order`` perturbs how the engine orders same-timestamp events (a
    legal schedule permutation; see :class:`~repro.sim.engine.TieOrder`)
    and ``sanitize=True`` attaches the schedule sanitizer, whose report
    lands in ``metrics.sanitizer`` — both are the determinism subsystem's
    hooks (:mod:`repro.analysis.determinism`).

    ``trace=True`` attaches a :class:`~repro.trace.TraceRecorder` and
    assembles a full :class:`~repro.trace.model.Trace` (kernel/collective/
    flow/fault spans, per-link accounts, counter tracks) into
    ``metrics.trace``.  Tracing is schedule-invariant: every headline
    metric and ledger value is identical with it on or off.

    ``leak_check=True`` attaches the runtime
    :class:`~repro.sim.leaksan.LeakSanitizer`: every pool allocation is
    observed, every flow is shadowed with per-link ledger reservations,
    and after teardown returns the memory plan's bytes the sanitizer
    audits pools/ledgers/flows/spans for outstanding balance.  The
    report lands in ``metrics.leaks``; a conserving run reports
    ``clean``.  Like tracing, the instrumentation is schedule-invariant.

    Unless ``preflight=False``, the cheap static-analysis passes run
    first and any error-severity finding aborts the run before the DES
    starts (see :mod:`repro.analysis`).  The static memory-capacity
    prediction is not part of the hook: fitting stays the runtime
    :class:`~repro.errors.OutOfMemoryError` signal the size search
    binary-searches on.

    ``fidelity`` selects the simulation fidelity (``None`` defers to the
    ambient :func:`~repro.sim.fastpath.fidelity_override`, then
    ``"full"``).  ``"hybrid"`` simulates ``warmup + 2`` iterations on
    the DES and, once the measured iterations are confirmed periodic,
    extrapolates the remaining ones analytically — ledgers, timeline,
    trace spans, and iteration times all extended consistently (see
    :mod:`repro.sim.fastpath`).  A hybrid request that cannot be
    honoured (fault plan present, too few iterations, steady state not
    detected) silently falls back to full fidelity;
    ``metrics.fastpath`` records what actually happened.

    ``spec`` is the canonical :class:`~repro.api.RunSpec` this call was
    materialized from, when the caller came through
    :func:`repro.api.run_spec`; it is stamped into ``metrics.spec`` so
    serialized results stay traceable (and cacheable) by configuration.
    New code should prefer constructing a ``RunSpec`` — this function
    remains the object-level entry point for callers that already hold
    live cluster/strategy/model instances.
    """
    if training is None:
        training = TrainingConfig()
    if iterations <= warmup_iterations:
        raise ConfigurationError(
            "need more iterations than warmup iterations"
        )
    resolved_fidelity = validate_fidelity(
        fidelity if fidelity is not None else (ambient_fidelity() or "full")
    )
    fastpath_report: Optional[FastpathReport] = None
    sim_iterations = iterations
    if resolved_fidelity == "hybrid":
        measured = hybrid_simulated_iterations(iterations, warmup_iterations)
        if fault_plan is not None:
            # Faults perturb specific iterations; the steady window the
            # extrapolator would replicate is not representative.
            fastpath_report = FastpathReport(
                "hybrid", False, iterations, 0, "fault plan present")
        elif measured >= iterations:
            fastpath_report = FastpathReport(
                "hybrid", False, iterations, 0, "too few iterations")
        else:
            sim_iterations = measured
    if preflight:
        analyze_run_config(
            cluster, strategy, model, training=training,
            placement=placement, fault_plan=fault_plan, cheap_only=True,
        ).raise_on_error("pre-run static analysis failed")
    cluster.reset()
    ctx = StrategyContext(cluster, model, training)
    plan = strategy.memory_plan(ctx)
    needs_nvme = bool(plan.nvme)
    if needs_nvme and swap_volumes is None:
        chosen = placement if placement is not None else DEFAULT_PLACEMENT
        swap_volumes = chosen.build_volumes(cluster)
    # The sanitizer must observe the pools before the plan charges them.
    leaksan = LeakSanitizer() if leak_check else None
    if leaksan is not None:
        leaksan.attach(cluster)
    apply_memory_plan(cluster, plan, swap_volumes)

    schedule = strategy.build_schedule(ctx)
    recorder = TraceRecorder() if trace else None
    executor = Executor(
        cluster, schedule,
        traffic_profile=strategy.traffic_profile,
        swap_volumes=swap_volumes,
        internode_rate_efficiency=strategy.calibration.internode_efficiency,
        fault_plan=fault_plan,
        retry_policy=retry_policy,
        tie_order=tie_order,
        sanitize=sanitize,
        trace_recorder=recorder,
        leak_sanitizer=leaksan,
    )
    result = executor.run(sim_iterations)

    if sim_iterations < iterations:
        # Hybrid: extend the measured run analytically — must happen
        # before any accounting that scales with total time/iterations
        # (profiler, host background, bandwidth window, trace build).
        if is_steady(result.iteration_times, warmup_iterations):
            extrapolate_execution(cluster, result, recorder, iterations)
            fastpath_report = FastpathReport(
                "hybrid", True, sim_iterations, iterations - sim_iterations)
        else:
            metrics = run_training(
                cluster, strategy, model, training=training,
                iterations=iterations, warmup_iterations=warmup_iterations,
                placement=placement, swap_volumes=swap_volumes,
                fault_plan=fault_plan, retry_policy=retry_policy,
                tie_order=tie_order, sanitize=sanitize, trace=trace,
                leak_check=leak_check,
                preflight=False, fidelity="full", spec=spec,
            )
            metrics.fastpath = FastpathReport(
                "hybrid", False, iterations, 0, "steady state not detected")
            return metrics

    profiler = FlopsProfiler(model, training, cluster.num_gpus,
                             warmup_iterations=warmup_iterations)
    for seconds in result.iteration_times:
        profiler.record_iteration(seconds)

    _record_host_background(cluster, result)

    window_start = sum(result.iteration_times[:warmup_iterations])
    window = (window_start, result.total_time)
    monitor = BandwidthMonitor(cluster)
    bandwidth = monitor.table(*window)

    # Built after _record_host_background so the trace's link accounts
    # cover every ledger charge and reconcile exactly (see repro.trace).
    built_trace = (
        build_trace(cluster, result, recorder, meta={
            "strategy": strategy.name,
            "num_nodes": cluster.num_nodes,
            "num_gpus": cluster.num_gpus,
            "model_parameters": total_parameters(model),
        })
        if trace else None
    )

    # Snapshot memory while the plan's labels are still charged; the
    # leak-check teardown below returns them to the pools.
    memory_report = snapshot(cluster)
    if leaksan is not None:
        release_memory_plan(cluster, plan, swap_volumes)
        result.leaks = leaksan.finalize(
            cluster, network=executor.network, recorder=recorder)

    return RunMetrics(
        strategy_name=strategy.name,
        model_parameters=total_parameters(model),
        num_nodes=cluster.num_nodes,
        num_gpus=cluster.num_gpus,
        throughput=profiler.report(),
        memory=memory_report,
        bandwidth=bandwidth,
        execution=result,
        measurement_window=window,
        trace=built_trace,
        spec=spec,
        fastpath=fastpath_report,
    )


def plan_only(cluster: Cluster, strategy: TrainingStrategy,
              model: ModelConfig, *,
              training: Optional[TrainingConfig] = None,
              placement: Optional[PlacementConfig] = None,
              swap_volumes: Optional[Dict[int, Raid0Volume]] = None
              ) -> MemoryReport:
    """Apply just the memory plan (no simulation) and snapshot usage.

    This is what the max-model-size search uses: fitting is purely a
    memory question, so skipping the DES keeps the search fast.
    """
    if training is None:
        training = TrainingConfig()
    cluster.reset()
    ctx = StrategyContext(cluster, model, training)
    plan = strategy.memory_plan(ctx)
    if plan.nvme and swap_volumes is None:
        chosen = placement if placement is not None else DEFAULT_PLACEMENT
        swap_volumes = chosen.build_volumes(cluster)
    apply_memory_plan(cluster, plan, swap_volumes)
    return snapshot(cluster)


def _record_host_background(cluster: Cluster, result: ExecutionResult) -> None:
    """Charge the ambient host traffic real counters see during training.

    Covers what the schedules do not model explicitly: data-loader
    workers streaming batches through DRAM, per-iteration input staging
    over the PCIe roots, and light inter-socket chatter — the source of
    the small but non-zero DRAM/xGMI/PCIe averages the paper's Table IV
    reports for GPU-resident configurations.
    """
    duration = result.total_time
    if duration <= 0:
        return
    iterations = max(1, len(result.iteration_times))
    topology = cluster.topology
    for node in cluster.nodes:
        for socket in range(2):
            dram_link = topology.link_between(node.cpus[socket].name,
                                              node.drams[socket].name)
            dram_link.ledger.record(
                0.0, duration,
                calibration.HOST_BACKGROUND_DRAM_BYTES_PER_S * duration,
            )
        xgmi_link = topology.link_between(node.cpus[0].name,
                                          node.cpus[1].name)
        xgmi_link.ledger.record(
            0.0, duration,
            calibration.HOST_BACKGROUND_XGMI_BYTES_PER_S * duration,
        )
    staging = calibration.INPUT_STAGING_BYTES_PER_ITERATION * iterations
    for rank in range(cluster.num_gpus):
        gpu = cluster.gpu(rank)
        node = cluster.node_of_rank(rank)
        pcie_link = topology.link_between(
            gpu.name, node.cpus[gpu.socket_index or 0].name)
        pcie_link.ledger.record(0.0, duration, staging)
